#!/usr/bin/env python3
"""One provenance, many semirings (Section 3.2 and the [16] framework).

The CDSS records *how* every tuple was derived — a single structure
(expressions / the provenance graph) that specializes to many classical
provenance models by evaluating it in different semirings:

* boolean      -> trust / derivability,
* counting     -> number of distinct derivations (bag semantics),
* why          -> witness sets (why-provenance),
* lineage      -> contributing base tuples,
* tropical     -> cheapest derivation (ranked trust).

The example also shows cyclic provenance: mutually-derivable tuples whose
equations only admit the "formal power series" reading, solved by fixpoint.

Run:  python examples/provenance_semirings.py
"""

from repro import (
    BooleanSemiring,
    CDSS,
    CountingSemiring,
    LineageSemiring,
    TropicalSemiring,
    WhySemiring,
)


def acyclic_demo() -> None:
    print("=== The paper's example, five semirings ===")
    cdss = CDSS("semirings")
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
    with cdss.batch() as tx:
        tx.insert("G", (3, 5, 2))
        tx.insert("B", (3, 5))
        tx.insert("U", (2, 5))
    cdss.update_exchange()

    target = ("B", (3, 2))
    print(f"Pv(B(3,2)) = {cdss.relation('B').provenance((3, 2))}\n")

    graph = cdss.provenance_graph()

    print("boolean (all tokens trusted):",
          graph.evaluate(BooleanSemiring())[target])
    print("counting (#derivations):    ",
          graph.evaluate(CountingSemiring())[target])
    print("why-provenance (witnesses): ",
          sorted(
              sorted(w) for w in graph.evaluate(
                  WhySemiring(),
                  token_value=lambda tok: frozenset({frozenset({tok})}),
              )[target]
          ))
    print("lineage (contributing base):",
          sorted(graph.evaluate(
              LineageSemiring(),
              token_value=lambda tok: frozenset({tok}),
          )[target]))
    costs = {("G", (3, 5, 2)): 4.0, ("B", (3, 5)): 1.0, ("U", (2, 5)): 1.0}
    print("tropical (cheapest path):   ",
          graph.evaluate(
              TropicalSemiring(), token_value=lambda tok: costs[tok]
          )[target])


def cyclic_demo() -> None:
    print("\n=== Cyclic provenance: equations, not trees ===")
    cdss = CDSS("cycles")
    cdss.add_peer("P1", {"R": ("a", "b")})
    cdss.add_peer("P2", {"S": ("a", "b")})
    cdss.add_mapping("m_rs", "R(x, y) -> S(x, y)")
    cdss.add_mapping("m_sr", "S(x, y) -> R(x, y)")
    cdss.peer("P1").insert("R", (1, 2))
    cdss.update_exchange()

    graph = cdss.provenance_graph()
    system = graph.equation_system()
    print("the system of provenance equations (Section 3.2):")
    for node, expr in sorted(system.equations.items(), key=repr):
        print(f"  Pv[{node[0]}{node[1]!r}] = {expr}")

    # In the boolean semiring the least fixpoint says both tuples are
    # derivable from the single base insertion.
    verdicts = graph.evaluate(BooleanSemiring())
    print("boolean solution:", {k: v for k, v in sorted(verdicts.items(), key=repr)})

    # The counting semiring diverges on cycles (infinitely many derivation
    # trees); the omega-continuous completion saturates instead.
    counts = graph.evaluate(CountingSemiring(saturation=1000))
    print("counting solution (saturated at 1000):",
          {k: v for k, v in sorted(counts.items(), key=repr)})

    # Depth-bounded expansion enumerates derivation trees up to a depth.
    for depth in (1, 3, 5):
        expr = graph.expression_for("S", (1, 2), max_depth=depth)
        print(f"unfolded to depth {depth}: {expr}")


if __name__ == "__main__":
    acyclic_demo()
    cyclic_demo()
