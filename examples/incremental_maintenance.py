#!/usr/bin/env python3
"""Incremental update exchange at workload scale (Sections 4.2 and 6).

Builds a synthetic bioinformatics confederation with the paper's workload
generator (SWISS-PROT-shaped universal relation, partitioned per peer,
joined by shared-key mappings), then runs a day-in-the-life of a CDSS:

* initial bulk load ("time to join the system", Figure 5) — staged through
  the transactional batch API's bulk commit path;
* small incremental insertion batches (Figures 7/8's common case);
* curation deletions propagated as negative Z-set deltas through the
  unified weighted maintenance core, cross-checked against full
  recomputation (Figure 4's rival);
* a peek at the deletion machinery's instrumentation (provenance rows
  touched, goal-directed derivability checks).

Run:  python examples/incremental_maintenance.py
"""

import time

from repro.core import STRATEGY_RECOMPUTE, STRATEGY_UNIFIED
from repro.workload import CDSSWorkloadGenerator, WorkloadConfig


def lifecycle(strategy: str) -> dict[str, float]:
    """Run the same scenario under one maintenance strategy."""
    generator = CDSSWorkloadGenerator(
        WorkloadConfig(peers=5, dataset="integer", seed=42)
    )
    cdss = generator.build_cdss(strategy=strategy)

    timings: dict[str, float] = {}

    start = time.perf_counter()
    generator.record_insertions(cdss, generator.insertions(per_peer=120))
    cdss.update_exchange()
    timings["bulk load"] = time.perf_counter() - start

    start = time.perf_counter()
    generator.record_insertions(cdss, generator.insertions(per_peer=3))
    cdss.update_exchange()
    timings["small insert (2.5%)"] = time.perf_counter() - start

    start = time.perf_counter()
    generator.record_deletions(cdss, generator.deletions(per_peer=12))
    report = cdss.update_exchange()
    timings["deletion (10%)"] = time.perf_counter() - start

    timings["_tuples"] = cdss.system().total_tuples()
    timings["_consistent"] = float(cdss.system().is_consistent())
    if strategy == STRATEGY_UNIFIED:
        deletion = report.details["deletion"]
        print(
            f"  [instrumentation] weighted deletion pass: "
            f"{deletion.iterations} iterations, "
            f"{deletion.provenance_rows_deleted} provenance rows deleted, "
            f"{deletion.derivability_checks} derivability checks"
        )
    return timings


def main() -> None:
    print("strategy comparison on an identical 5-peer workload\n")
    results = {}
    for strategy in (
        STRATEGY_UNIFIED,
        STRATEGY_RECOMPUTE,
    ):
        print(f"--- {strategy} ---")
        results[strategy] = lifecycle(strategy)
        for phase, seconds in results[strategy].items():
            if not phase.startswith("_"):
                print(f"  {phase:<22} {seconds * 1000:8.1f} ms")
        print(
            f"  final tuples: {int(results[strategy]['_tuples'])}, "
            f"consistent: {bool(results[strategy]['_consistent'])}"
        )
        print()

    # All strategies must land on the same instance sizes.
    sizes = {int(r["_tuples"]) for r in results.values()}
    assert len(sizes) == 1, f"strategies diverged: {sizes}"
    print(f"all strategies converged to the same state ({sizes.pop()} tuples)")

    inc = results[STRATEGY_UNIFIED]["deletion (10%)"]
    rec = results[STRATEGY_RECOMPUTE]["deletion (10%)"]
    print(
        f"incremental deletion was {rec / inc:.1f}x faster than "
        f"recomputation on this workload (the Figure 4 effect)"
    )


if __name__ == "__main__":
    main()
