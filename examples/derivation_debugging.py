#!/usr/bin/env python3
"""Debugging derivations: trees, inverse rules, EXPLAIN, checkpoints.

A curator asking "why is this tuple here, and would it survive if I deleted
that source?" needs more than instances.  This example tours the
introspection toolkit:

* **derivation trees** — every summand of a provenance expression as an
  explicit proof tree (Section 3.2);
* **goal-directed derivability** — the Section 4.1.3 test, both the direct
  implementation and the literal inverse-rule datalog program;
* **EXPLAIN** — the bind-join plans the engine actually runs (the paper's
  Section 5.1 tuning pains, made visible), including a prepared query's
  pipeline with its parameter slots pre-bound;
* **checkpoint/restore** — ORCHESTRA's auxiliary-storage persistence:
  freeze the whole exchanged state (including provenance tables and labeled
  nulls) and resume incrementally later.

Run:  python examples/derivation_debugging.py
"""

from repro import CDSS
from repro.core.derivation import DerivationTest
from repro.core.inverse_rules import derivable_by_inverse_rules
from repro.datalog.explain import explain_program
from repro.storage import checkpoint, restore


def build() -> CDSS:
    cdss = CDSS("debug")
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
    with cdss.batch() as tx:
        tx.insert("G", (3, 5, 2))
        tx.insert("B", (3, 5))
        tx.insert("U", (2, 5))
    cdss.update_exchange()
    return cdss


def derivation_trees(cdss: CDSS) -> None:
    print("=== Why is B(3,2) in my instance? ===")
    print(f"Pv(B(3,2)) = {cdss.relation('B').provenance((3, 2))}\n")
    trees = cdss.provenance_graph().derivation_trees("B", (3, 2))
    for number, tree in enumerate(trees, start=1):
        print(f"derivation {number} (size {tree.size()}, depth {tree.depth()}):")
        print(f"  {tree!r}")
        print(f"  leaves: {', '.join(f'{r}{v!r}' for r, v in tree.leaves())}")
    print()


def what_if_analysis(cdss: CDSS) -> None:
    print("=== Would B(3,2) survive deleting G(3,5,2)? ===")
    system = cdss.system()
    # Simulate: remove the local contribution (without repairing) and ask
    # the goal-directed derivability test of Section 4.1.3.
    system.db["G__l"].delete((3, 5, 2))
    tester = DerivationTest(system.db, system.encoding, system.head_filters)
    direct = tester.is_derivable("B", (3, 2))
    via_program = derivable_by_inverse_rules(
        system.db, system.encoding, [("B", (3, 2))], system.head_filters
    )[("B", (3, 2))]
    print(f"direct implementation : {direct}")
    print(f"inverse-rule program  : {via_program}")
    print(
        "(True — the m4 derivation from B(3,5) and U(2,5) still grounds it;"
    )
    print(" the m1 and m2 paths through G are gone)")
    system.db["G__l"].insert((3, 5, 2))  # undo the simulation
    print(
        f"goal-directed work: visited {tester.slice_tuples_visited} tuples, "
        f"{tester.support_rows_visited} provenance rows\n"
    )


def explain_plans(cdss: CDSS) -> None:
    print("=== EXPLAIN: what does the engine actually run? ===")
    system = cdss.system()
    text = explain_program(system.program, system.db, system.engine.planner)
    # The full program is long; show the m4 mapping's pipeline.
    lines = text.splitlines()
    shown = [
        line
        for line in lines
        if "__prov_m4" in line or line.startswith("program")
    ]
    print("\n".join(shown[:8]))
    print("...\n")

    # Prepared queries expose their pipeline the same way.  The parameter c
    # occupies a pre-bound slot, so U is probed on its second column — and
    # re-executing with a new binding replans nothing (engine plan cache).
    prepared = cdss.prepare("ans(i, n) :- B(i, n), U(n, c)", params=("c",))
    print(prepared.explain())
    print(f"answers for c=5: {sorted(prepared.execute(c=5), key=repr)}")
    print(f"answers for c=2: {sorted(prepared.execute(c=2), key=repr)}\n")


def pushdown_views(cdss: CDSS) -> None:
    print("=== Structured view predicates (indexed pushdown) ===")
    from repro import col

    B = cdss.relation("B")
    keyed = B.where(col("id") == 3)
    print(f"B where id=3: {sorted(keyed, key=repr)}")
    # The same selection as an annotated query: every answer row carries
    # its provenance-semiring expression (computed via provenance.annotated).
    annotated = (
        cdss.prepare(B.select(col("id") == 3)).execute().annotated()
    )
    for row, expression in annotated.items():
        print(f"  Pv{row!r} = {expression!r}")
    print()


def checkpoint_resume(cdss: CDSS) -> None:
    print("=== Checkpoint / resume (auxiliary storage) ===")
    system = cdss.system()
    store = checkpoint(system.db)
    buckets = len(store.bucket_names())
    print(f"checkpointed {system.total_tuples()} tuples into {buckets} buckets")

    fresh = build()  # a brand-new, independently configured CDSS
    restore(store, into=fresh.system().db)
    print(f"restored; consistent: {fresh.system().is_consistent()}")
    fresh.peer("PGUS").insert("G", (7, 8, 9))
    fresh.update_exchange()
    print(
        "resumed incrementally after restore; B now:",
        sorted(fresh.relation("B")),
    )


if __name__ == "__main__":
    cdss = build()
    derivation_trees(cdss)
    what_if_analysis(cdss)
    explain_plans(cdss)
    pushdown_views(cdss)
    checkpoint_resume(cdss)
