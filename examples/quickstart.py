#!/usr/bin/env python3
"""Quickstart: the paper's running bioinformatics example (Examples 1-7).

Three peers — PGUS (the Genomics Unified Schema), PBioSQL (BioPerl's
BioSQL), and PuBio (taxon synonyms) — share taxon data through four schema
mappings.  This script walks the full lifecycle: configure, edit offline,
run update exchange, query with certain-answer semantics, inspect
provenance, and curate with a deletion.

Run:  python examples/quickstart.py
"""

from repro import CDSS


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Configure the CDSS: peers, schemas, and tgd mappings (Example 2).
    # ------------------------------------------------------------------
    cdss = CDSS("bioinformatics")
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})

    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
    print(cdss)
    for mapping in cdss.mappings():
        print(" ", mapping)

    # ------------------------------------------------------------------
    # 2. Peers edit offline (Example 3's edit logs).
    # ------------------------------------------------------------------
    cdss.insert("G", (1, 2, 3))
    cdss.insert("G", (3, 5, 2))
    cdss.insert("B", (3, 5))
    cdss.insert("U", (2, 5))
    print(f"\npending edits: {cdss.pending_edits()}")

    # ------------------------------------------------------------------
    # 3. Update exchange: publish logs, translate updates along mappings.
    # ------------------------------------------------------------------
    report = cdss.update_exchange()
    print(
        f"update exchange ({report.strategy}): "
        f"{report.inserted} tuples derived in {report.seconds:.4f}s"
    )
    for relation in ("G", "B", "U"):
        print(f"  {relation}: {sorted(cdss.instance(relation), key=repr)}")

    # ------------------------------------------------------------------
    # 4. Queries with certain-answer semantics (Example 3's queries).
    #    Labeled nulls join on equality but are dropped from answers.
    # ------------------------------------------------------------------
    q1 = cdss.query("ans(x, y) :- U(x, z), U(y, z)")
    q2 = cdss.query("ans(x, y) :- U(x, y)")
    print(f"\nans(x, y) :- U(x, z), U(y, z)  ->  {sorted(q1)}")
    print(f"ans(x, y) :- U(x, y)           ->  {sorted(q2)}")

    # ------------------------------------------------------------------
    # 5. Provenance (Examples 5 and 6): how was B(3, 2) derived?
    # ------------------------------------------------------------------
    print(f"\nPv(B(3,2)) = {cdss.provenance_of('B', (3, 2))}")
    from repro import CountingSemiring

    counts = cdss.evaluate_provenance(CountingSemiring())
    print(f"number of derivations of B(3,2): {counts[('B', (3, 2))]}")

    # ------------------------------------------------------------------
    # 6. Curation: delete the imported tuple B(3,2) (end of Example 3).
    #    The rejection persists and its consequences are garbage collected.
    # ------------------------------------------------------------------
    cdss.delete("B", (3, 2))
    cdss.update_exchange()
    print(f"\nafter curating away B(3,2): B = {sorted(cdss.instance('B'))}")
    print(f"U = {sorted(cdss.instance('U'), key=repr)}")
    print(f"rejections at B: {sorted(cdss.system().rejections('B'))}")


if __name__ == "__main__":
    main()
