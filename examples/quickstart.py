#!/usr/bin/env python3
"""Quickstart: the paper's running bioinformatics example (Examples 1-7).

Three peers — PGUS (the Genomics Unified Schema), PBioSQL (BioPerl's
BioSQL), and PuBio (taxon synonyms) — share taxon data through four schema
mappings.  This script walks the full lifecycle on the v2 peer-centric API:
configure (peer handles), edit offline (transactional batches), run update
exchange, query with certain-answer semantics, inspect provenance through
relation views, curate with a deletion, and round-trip the whole system
through a declarative JSON spec.

Run:  python examples/quickstart.py
"""

import json

from repro import CDSS


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Configure the CDSS: peers, schemas, and tgd mappings (Example 2).
    #    add_peer returns a PeerHandle scoped to that peer.
    # ------------------------------------------------------------------
    cdss = CDSS("bioinformatics")
    pgus = cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    pbio = cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    pubio = cdss.add_peer("PuBio", {"U": ("nam", "can")})

    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
    print(cdss)
    for mapping in cdss.mappings():
        print(" ", mapping)

    # ------------------------------------------------------------------
    # 2. Peers edit offline (Example 3's edit logs).  A batch stages the
    #    edits and applies them to the edit log atomically on exit.
    # ------------------------------------------------------------------
    with pgus.batch() as tx:
        tx.insert("G", (1, 2, 3))
        tx.insert("G", (3, 5, 2))
    pbio.insert("B", (3, 5))
    pubio.insert("U", (2, 5))
    print(f"\npending edits: {cdss.pending_edits()}")

    # ------------------------------------------------------------------
    # 3. Update exchange: publish logs, translate updates along mappings.
    # ------------------------------------------------------------------
    report = cdss.update_exchange()
    print(
        f"update exchange ({report.strategy}): "
        f"{report.inserted} tuples derived in {report.seconds:.4f}s"
    )
    for peer in (pgus, pbio, pubio):
        for name in peer.relations():
            print(f"  {name}: {sorted(peer.relation(name), key=repr)}")

    # ------------------------------------------------------------------
    # 4. Queries with certain-answer semantics (Example 3's queries).
    #    Labeled nulls join on equality but are dropped from answers.
    #    One-shot text queries, a prepared + parameterized query (planned
    #    and compiled once, re-executed with new bindings), and the fluent
    #    builder with structured predicates all share one subsystem.
    # ------------------------------------------------------------------
    q1 = cdss.query("ans(x, y) :- U(x, z), U(y, z)")
    q2 = cdss.query("ans(x, y) :- U(x, y)")
    print(f"\nans(x, y) :- U(x, z), U(y, z)  ->  {sorted(q1)}")
    print(f"ans(x, y) :- U(x, y)           ->  {sorted(q2)}")

    from repro import col, param

    by_name = cdss.prepare("ans(i) :- B(i, n)", params=("n",))
    print(f"B ids with nam=2: {sorted(by_name.execute(n=2))}")
    print(f"B ids with nam=5: {sorted(by_name.execute(n=5))}")

    synonyms = cdss.prepare(
        pubio.relation("U")
        .join("U", on="can", alias="U2")
        .select(col("U.nam") == param("n"))
        .project("U2.nam")
    )
    print(f"synonyms of 2: {sorted(synonyms.execute(n=2).to_rows())}")

    # ------------------------------------------------------------------
    # 5. Provenance (Examples 5 and 6) through the relation view: how was
    #    B(3, 2) derived?  Views are lazy — B reads the live instance.
    # ------------------------------------------------------------------
    B = pbio.relation("B")
    print(f"\nPv(B(3,2)) = {B.provenance((3, 2))}")
    from repro import CountingSemiring

    counts = cdss.evaluate_provenance(CountingSemiring())
    print(f"number of derivations of B(3,2): {counts[('B', (3, 2))]}")

    # ------------------------------------------------------------------
    # 6. Curation: delete the imported tuple B(3,2) (end of Example 3).
    #    The rejection persists and its consequences are garbage collected.
    #    The view B reflects the new state without being rebuilt.
    # ------------------------------------------------------------------
    pbio.delete("B", (3, 2))
    cdss.update_exchange()
    print(f"\nafter curating away B(3,2): B = {sorted(B)}")
    print(f"B where id=3 (indexed pushdown): {sorted(B.where(col('id') == 3))}")
    print(f"U = {sorted(pubio.relation('U'), key=repr)}")
    print(f"rejections at B: {sorted(cdss.system().rejections('B'))}")

    # ------------------------------------------------------------------
    # 7. The whole system as a declarative spec: JSON out, JSON in.
    # ------------------------------------------------------------------
    spec = cdss.to_spec()
    document = json.loads(spec.to_json())
    print(
        f"\nspec round-trip: {len(document['peers'])} peers, "
        f"{len(document['mappings'])} mappings, "
        f"{len(document['edits'])} edits"
    )
    clone = CDSS.from_spec(document)
    clone.update_exchange()
    assert clone.relation("B").to_rows() == B.to_rows()
    print(f"rebuilt from spec: B = {sorted(clone.relation('B'))}")


if __name__ == "__main__":
    main()
