#!/usr/bin/env python3
"""A full synthetic bioinformatics confederation (Section 6.1's generator).

Demonstrates the workload machinery end to end at a readable scale:

* Zipfian relation counts per peer, attribute partitioning with shared keys;
* join-style mappings between peers, including ones with existential
  variables (labeled nulls in the computed instances);
* the string vs. integer dataset variants and their size gap (Figure 6's
  contrast);
* querying across the confederation with certain-answer semantics.

Run:  python examples/synthetic_confederation.py
"""

from repro.datalog.ast import tuple_has_labeled_null
from repro.workload import CDSSWorkloadGenerator, WorkloadConfig


def describe(generator: CDSSWorkloadGenerator) -> None:
    print("peers and their relation layouts:")
    for layout in generator.layouts:
        print(f"  {layout.name}: {len(layout.partitions)} relation(s)")
        for schema in layout.relation_schemas():
            attrs = ", ".join(schema.attributes)
            print(f"    {schema.name}({attrs})")
    print("mappings:")
    for mapping in generator.mappings:
        existentials = (
            f" [existentials: {sorted(v.name for v in mapping.existential_vars)}]"
            if mapping.existential_vars
            else ""
        )
        print(f"  {mapping.name}{existentials}")


def main() -> None:
    config = WorkloadConfig(
        peers=4,
        max_relations_per_peer=3,
        attributes_per_peer=7,
        dataset="string",
        uniform_attributes=False,  # heterogenous schemas -> labeled nulls
        seed=7,
    )
    generator = CDSSWorkloadGenerator(config)
    describe(generator)

    cdss = generator.build_cdss()
    generator.populate(cdss, base_per_peer=30)
    system = cdss.system()
    print(
        f"\nafter initial exchange: {system.total_tuples()} tuples, "
        f"{system.estimated_bytes() / 1024:.0f} KiB (string dataset)"
    )

    integer_gen = CDSSWorkloadGenerator(
        WorkloadConfig(
            peers=4,
            max_relations_per_peer=3,
            attributes_per_peer=7,
            dataset="integer",
            uniform_attributes=False,
            seed=7,
        )
    )
    integer_cdss = integer_gen.build_cdss()
    integer_gen.populate(integer_cdss, base_per_peer=30)
    print(
        f"integer variant: {integer_cdss.system().total_tuples()} tuples, "
        f"{integer_cdss.system().estimated_bytes() / 1024:.0f} KiB "
        "(Figure 6's string/integer gap)"
    )

    # Labeled nulls appear where mappings had existential variables.
    null_count = 0
    example = None
    for layout in generator.layouts:
        for schema in layout.relation_schemas():
            for row in cdss.relation(schema.name):
                if tuple_has_labeled_null(row):
                    null_count += 1
                    example = example or (schema.name, row)
    print(f"\nrows with labeled nulls: {null_count}")
    if example is not None:
        name, row = example
        shown = tuple(
            v if not tuple_has_labeled_null((v,)) else v for v in row
        )
        print(f"  e.g. {name}{shown!r}")

    # Query the last peer in the chain: everything upstream flowed here.
    last = generator.layouts[-1]
    relation = last.relation_name(0)
    arity = len(last.relation_schemas()[0].attributes)
    variables = ", ".join(f"x{i}" for i in range(arity))
    answers = cdss.query(f"ans(x0) :- {relation}({variables})")
    print(
        f"\ncertain keys visible at {last.name}.{relation}: {len(answers)} "
        f"(of {system.total_tuples()} total tuples in the system)"
    )


if __name__ == "__main__":
    main()
