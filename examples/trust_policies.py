#!/usr/bin/env python3
"""Trust policies and provenance-based filtering (Examples 4 and 7).

Curators rarely trust everything their neighbours publish.  This example
shows the two complementary trust mechanisms of the paper, driven through
each peer's :meth:`~repro.PeerHandle.trust` scope:

1. **Exchange-time filtering** — trust conditions attached to mappings are
   enforced as tuples are derived, so untrusted data never enters a peer's
   trusted/output tables and never propagates downstream (Example 4).
2. **Offline evaluation over stored provenance** — any policy (including
   token-level distrust of specific base tuples or whole peers) can be
   evaluated after the fact against the provenance graph in the boolean
   trust semiring (Example 7), and *ranked* trust is a one-line semiring
   swap (the Section 8 extension).

Run:  python examples/trust_policies.py
"""

from repro import CDSS
from repro.provenance import trust_ranks


def build() -> CDSS:
    cdss = CDSS("trust-demo")
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
    return cdss


def populate(cdss: CDSS) -> None:
    with cdss.batch() as tx:
        tx.insert("G", (1, 2, 3))
        tx.insert("G", (3, 5, 2))
        tx.insert("B", (3, 5))
        tx.insert("U", (2, 5))
    cdss.update_exchange()


def exchange_time_filtering() -> None:
    print("=== Exchange-time trust conditions (Example 4) ===")
    cdss = build()
    pbio = cdss.peer("PBioSQL")
    # "PBioSQL distrusts any tuple B(i, n) if the data came from PGUS and
    # n >= 3" — mapping m1 carries GUS data into B.  "PBioSQL distrusts
    # any tuple B(i, n) that came from mapping (m4) if n != 2."
    pbio.trust().condition(
        "m1", lambda row: row[1] < 3,
        description="distrust GUS-derived B tuples with n >= 3",
    ).condition(
        "m4", lambda row: row[1] == 2,
        description="distrust m4-derived B tuples with n != 2",
    )
    populate(cdss)

    print(f"B            = {sorted(pbio.relation('B'))}")
    print("  B(1,3) rejected by the first condition;")
    print("  B(3,3) rejected by the second; B(3,2) survives via m1.")
    system = cdss.system()
    print(f"B input      = {sorted(system.input_instance('B'))}  (unfiltered)")
    print(f"B trusted    = {sorted(system.trusted_instance('B'))}")
    print(
        "U has no (3, c3) row:",
        sorted(cdss.peer("PuBio").relation("U"), key=repr),
    )


def offline_evaluation() -> None:
    print("\n=== Offline trust over stored provenance (Example 7) ===")
    cdss = build()
    populate(cdss)
    pbio = cdss.peer("PBioSQL")
    print(f"Pv(B(3,2)) = {pbio.relation('B').provenance((3, 2))}")

    # PBioSQL trusts p1 (its own B(3,5)) and p3 (GUS's G(3,5,2)) but
    # distrusts PuBio's p2 = U(2,5).  T.T + T.T.D = T.
    trust = pbio.trust().distrust_row("U", (2, 5))
    print(f"PBioSQL trusts B(3,2) with p2 distrusted?  {trust.of('B', (3, 2))}")

    # Distrusting the whole PuBio peer changes nothing for B(3,2) either —
    # the m1 derivation from GUS suffices.
    trust.distrust_peer("PuBio")
    print(
        "  ... even distrusting all of PuBio:",
        trust.of("B", (3, 2)),
    )


def ranked_trust() -> None:
    print("\n=== Ranked trust via the tropical semiring (Section 8) ===")
    cdss = build()
    with cdss.batch() as tx:
        tx.insert("G", (3, 5, 2))
        tx.insert("B", (3, 5))
        tx.insert("U", (2, 5))
    cdss.update_exchange()
    # Cost 0 for locally curated data; each mapping hop adds distrust.
    ranks = trust_ranks(
        cdss.provenance_graph(),
        mapping_costs={"m1": 1.0, "m2": 1.0, "m3": 2.0, "m4": 1.0},
    )
    for (relation, row), cost in sorted(ranks.items(), key=lambda kv: repr(kv)):
        print(f"  rank[{relation}{row!r}] = {cost}")
    print("  (lower = more authoritative; B(3,2)'s best path costs 1.0)")


if __name__ == "__main__":
    exchange_time_filtering()
    offline_evaluation()
    ranked_trust()
