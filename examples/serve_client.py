#!/usr/bin/env python3
"""Serving tier walkthrough: snapshot-isolated reads over HTTP.

Boots the paper's bioinformatics confederation behind an in-process
``repro.serve`` node, then talks to it the way an application would —
over HTTP with :class:`repro.serve.ServeClient`:

1. prepare a parameterized query once (server-side statement registry,
   zero replanning on re-execution);
2. execute it with bindings, answer modes, and ORDER BY/LIMIT paging;
3. stage edits through ``POST /edit`` and run a publish — the running
   readers keep seeing the *old* snapshot until the new fixpoint is
   pinned, then atomically flip to the new one;
4. read the admission/snapshot counters from ``GET /stats``.

Against a standalone node the client half is identical — start one with::

    python -m repro serve spec.json --port 8080

and replace the ServerThread below with ``ServeClient(port=8080)``.

Run:  PYTHONPATH=src python examples/serve_client.py
"""

import asyncio
import threading

from repro import CDSS
from repro.serve import ReproServer, ServeClient


def build_cdss() -> CDSS:
    """The running example: three peers sharing taxon data."""
    cdss = CDSS("bioinformatics")
    pgus = cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    with pgus.batch() as batch:
        batch.insert_many(
            "G", [(1, "f", "frog"), (2, "t", "toad"), (3, "n", "newt")]
        )
    cdss.update_exchange()
    return cdss


class ServerThread:
    """One ReproServer on a background asyncio loop (see the benchmark)."""

    def __init__(self, cdss: CDSS) -> None:
        self._cdss = cdss
        self._ready = threading.Event()
        self.server: ReproServer | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.server = ReproServer(self._cdss, port=0)
        await self.server.start()
        self._ready.set()
        await self.server.serve_until_shutdown()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        return self

    def __exit__(self, *_exc: object) -> None:
        with ServeClient(port=self.server.port) as client:
            client.shutdown()
        self._thread.join(timeout=30)


def main() -> None:
    cdss = build_cdss()
    with ServerThread(cdss) as node, ServeClient(port=node.server.port) as client:
        health = client.health()
        print(f"node up: snapshot version {health['snapshot_version']}")

        # 1. Prepare once; the statement id is stable for the connection's
        #    lifetime and re-preparing the same text returns the same id.
        stmt = client.prepare(
            "ans(i, n) :- B(i, n)", params=(), kind="query"
        )
        print(f"prepared {stmt['statement']} columns={stmt['columns']}")

        # 2. Execute with paging: certain answers, newest id first.
        page = client.execute(stmt["statement"], order=["-i"], limit=2)
        print(f"top-2 by id (pinned v{page['pinned_version']}):", page["rows"])

        # Parameterized lookup: bindings travel as JSON scalars.
        lookup = client.query(
            "ans(n) :- B(i, n)", params=["i"], bindings={"i": 2}
        )
        print("lookup i=2:", lookup["rows"])

        # Annotated answers carry provenance and read the *live* tables,
        # so they are serialized behind the exchange lock server-side.
        annotated = client.execute(stmt["statement"], mode="annotated", limit=1)
        print("annotated:", annotated["rows"][0])

        # 3. Stage edits and publish.  Readers on the old snapshot are
        #    never blocked; the snapshot flips only once the new fixpoint
        #    is complete (copy-on-publish).
        client.insert("G", (4, "s", "salamander"))
        report = client.publish()
        print(
            f"publish: +{report['inserted']} rows in {report['seconds']:.3f}s,"
            f" snapshot now v{report['snapshot_version']}"
        )
        after = client.execute(stmt["statement"], order=["i"])
        print(f"after publish (v{after['pinned_version']}):", after["rows"])

        # 4. Operational counters.
        stats = client.stats()
        admission = stats["admission"]
        print(
            f"stats: {stats['requests']} requests, "
            f"{admission['admitted']} admitted, "
            f"{admission['rejected']} rejected, "
            f"{stats['snapshot']['refreshes']} snapshot refresh(es)"
        )


if __name__ == "__main__":
    main()
