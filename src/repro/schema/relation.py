"""Relation schemas and peer schemas.

A :class:`RelationSchema` names a relation and its attributes; a
:class:`PeerSchema` groups the relations of one peer.  Peers' schemas are
assumed disjoint (Section 2: "Without loss of generality, we assume that each
peer has a schema disjoint from the others"), which :class:`PeerSchema`
enforces at construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SchemaError(Exception):
    """Raised for malformed schemas or schema/mapping mismatches."""


@dataclass(frozen=True)
class RelationSchema:
    """A named relation with named attributes."""

    name: str
    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", tuple(self.attributes))
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"duplicate attribute names in relation {self.name!r}: "
                f"{self.attributes!r}"
            )

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def position_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def __repr__(self) -> str:
        inner = ", ".join(self.attributes)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class PeerSchema:
    """The schema of one peer: a set of relations with distinct names."""

    peer: str
    relations: tuple[RelationSchema, ...]
    _by_name: dict[str, RelationSchema] = field(
        default=None, compare=False, repr=False
    )  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "relations", tuple(self.relations))
        by_name: dict[str, RelationSchema] = {}
        for relation in self.relations:
            if relation.name in by_name:
                raise SchemaError(
                    f"peer {self.peer!r} declares relation "
                    f"{relation.name!r} twice"
                )
            by_name[relation.name] = relation
        object.__setattr__(self, "_by_name", by_name)

    def relation(self, name: str) -> RelationSchema:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"peer {self.peer!r} has no relation {name!r}"
            ) from None

    def relation_names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.relations)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        inner = "; ".join(repr(r) for r in self.relations)
        return f"<PeerSchema {self.peer}: {inner}>"
