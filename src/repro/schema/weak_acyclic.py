"""Weak acyclicity of a set of tgds.

Query answering is undecidable for arbitrary cyclic mappings, so the CDSS
restricts the topology of schema mappings to be *at most weakly acyclic*
(Section 3.1, citing Fagin et al.).  Weak acyclicity also guarantees the
datalog program of Section 4.1.1 terminates.

The standard test: build the *dependency graph* over positions (relation,
column).  For every tgd, every universally quantified variable ``x`` that is
exported to the RHS, every LHS position ``p`` where ``x`` occurs, and every
RHS atom:

* a **regular edge** ``p -> q`` for every RHS position ``q`` where ``x``
  occurs, and
* a **special edge** ``p -*-> q`` for every RHS position ``q`` holding an
  existential variable.

The set is weakly acyclic iff no cycle goes through a special edge — i.e. no
special edge connects two positions in the same strongly connected component
of the full graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..datalog.ast import Variable
from .tgd import SchemaMapping

Position = tuple[str, int]


@dataclass(frozen=True)
class DependencyGraph:
    """Positions and (regular, special) edges, plus the acyclicity verdict."""

    positions: frozenset[Position]
    regular_edges: frozenset[tuple[Position, Position]]
    special_edges: frozenset[tuple[Position, Position]]

    def all_edges(self) -> frozenset[tuple[Position, Position]]:
        return self.regular_edges | self.special_edges


def build_dependency_graph(
    mappings: Iterable[SchemaMapping],
) -> DependencyGraph:
    positions: set[Position] = set()
    regular: set[tuple[Position, Position]] = set()
    special: set[tuple[Position, Position]] = set()
    for mapping in mappings:
        lhs_positions: dict[Variable, list[Position]] = {}
        for atom in mapping.lhs:
            if atom.negated:
                # Negated atoms do not generate values, so they contribute
                # no outgoing edges (their variables are bound positively
                # elsewhere by safety).
                continue
            for column, term in enumerate(atom.terms):
                positions.add((atom.predicate, column))
                if isinstance(term, Variable):
                    lhs_positions.setdefault(term, []).append(
                        (atom.predicate, column)
                    )
        rhs_value_positions: dict[Variable, list[Position]] = {}
        rhs_existential_positions: list[Position] = []
        for atom in mapping.rhs:
            for column, term in enumerate(atom.terms):
                positions.add((atom.predicate, column))
                if not isinstance(term, Variable):
                    continue
                if term in mapping.existential_vars:
                    rhs_existential_positions.append((atom.predicate, column))
                else:
                    rhs_value_positions.setdefault(term, []).append(
                        (atom.predicate, column)
                    )
        for var, sources in lhs_positions.items():
            targets = rhs_value_positions.get(var, [])
            if not targets and var not in mapping.rhs_variables():
                continue
            for source in sources:
                for target in targets:
                    regular.add((source, target))
                for target in rhs_existential_positions:
                    special.add((source, target))
    return DependencyGraph(
        frozenset(positions), frozenset(regular), frozenset(special)
    )


def _sccs(
    nodes: Sequence[Position],
    edges: Iterable[tuple[Position, Position]],
) -> dict[Position, int]:
    """Map each node to an SCC id (iterative Tarjan)."""
    successors: dict[Position, list[Position]] = {n: [] for n in nodes}
    for src, dst in edges:
        successors[src].append(dst)
    index_of: dict[Position, int] = {}
    lowlink: dict[Position, int] = {}
    on_stack: set[Position] = set()
    stack: list[Position] = []
    component: dict[Position, int] = {}
    counter = 0
    comp_count = 0
    for start in nodes:
        if start in index_of:
            continue
        work: list[tuple[Position, int]] = [(start, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = successors[node]
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index_of:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp_count
                    if member == node:
                        break
                comp_count += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return component


def is_weakly_acyclic(mappings: Iterable[SchemaMapping]) -> bool:
    """True iff the mapping set is weakly acyclic."""
    return not weak_acyclicity_violations(mappings)


def weak_acyclicity_violations(
    mappings: Iterable[SchemaMapping],
) -> tuple[tuple[Position, Position], ...]:
    """Special edges lying inside a cycle (empty iff weakly acyclic)."""
    graph = build_dependency_graph(mappings)
    if not graph.special_edges:
        return ()
    component = _sccs(sorted(graph.positions), graph.all_edges())
    return tuple(
        sorted(
            (src, dst)
            for src, dst in graph.special_edges
            if component[src] == component[dst]
        )
    )


def require_weakly_acyclic(mappings: Sequence[SchemaMapping]) -> None:
    """Raise :class:`~repro.schema.relation.SchemaError` if not weakly acyclic."""
    from .relation import SchemaError

    violations = weak_acyclicity_violations(mappings)
    if violations:
        details = "; ".join(
            f"{src[0]}.{src[1]} -*-> {dst[0]}.{dst[1]}"
            for src, dst in violations
        )
        raise SchemaError(
            "mapping set is not weakly acyclic — special edges in cycles: "
            + details
        )
