"""Schemas, peers, tgd mappings, weak acyclicity, internal expansion.

The schema layer of DESIGN.md's stack (paper Sections 2 and 3.1).
"""

from .internal import (
    InternalSchema,
    LOCAL_RULE_PREFIX,
    TRUST_RULE_PREFIX,
    build_internal_schema,
    input_name,
    local_name,
    output_name,
    rejection_name,
    trusted_name,
)
from .relation import PeerSchema, RelationSchema, SchemaError
from .tgd import SchemaMapping, skolem_function_name
from .weak_acyclic import (
    DependencyGraph,
    build_dependency_graph,
    is_weakly_acyclic,
    require_weakly_acyclic,
    weak_acyclicity_violations,
)

__all__ = [
    "DependencyGraph",
    "InternalSchema",
    "LOCAL_RULE_PREFIX",
    "PeerSchema",
    "RelationSchema",
    "SchemaError",
    "SchemaMapping",
    "TRUST_RULE_PREFIX",
    "build_dependency_graph",
    "build_internal_schema",
    "input_name",
    "is_weakly_acyclic",
    "local_name",
    "output_name",
    "rejection_name",
    "require_weakly_acyclic",
    "skolem_function_name",
    "trusted_name",
    "weak_acyclicity_violations",
]
