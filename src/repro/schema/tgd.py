"""Schema mappings as tgds, and their compilation to Skolemized datalog.

A :class:`SchemaMapping` is a named tuple-generating dependency

    ``forall x,y ( phi(x, y) -> exists z  psi(x, z) )``

relating relations of (possibly several) peers — Section 2.  Compilation to
datalog follows Section 4.1.1 exactly:

* the tgd is split into one rule per RHS atom (``If psi contains multiple
  atoms in its RHS, we will get multiple datalog rules``);
* each existential variable ``z`` is replaced by a Skolem term over the
  variables *in common between LHS and RHS* (the exported variables), using
  *a separate Skolem function for each existentially quantified variable in
  each tgd*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping as TMapping

from ..datalog.ast import (
    Atom,
    Rule,
    SkolemFunction,
    SkolemTerm,
    Term,
    Variable,
)
from ..datalog.parser import parse_tgd
from .relation import RelationSchema, SchemaError


def skolem_function_name(mapping_name: str, variable: Variable) -> str:
    """The canonical Skolem function name for an existential variable."""
    return f"f_{mapping_name}_{variable.name}"


@dataclass(frozen=True)
class SchemaMapping:
    """A named tgd between peer schemas."""

    name: str
    lhs: tuple[Atom, ...]
    rhs: tuple[Atom, ...]
    existential_vars: frozenset[Variable]

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", tuple(self.lhs))
        object.__setattr__(self, "rhs", tuple(self.rhs))
        object.__setattr__(
            self, "existential_vars", frozenset(self.existential_vars)
        )
        if not self.rhs:
            raise SchemaError(f"mapping {self.name!r} has an empty RHS")
        for atom in self.rhs:
            if atom.negated:
                raise SchemaError(
                    f"mapping {self.name!r} has a negated RHS atom: {atom!r}"
                )

    @classmethod
    def parse(cls, name: str, text: str) -> "SchemaMapping":
        parsed = parse_tgd(text)
        return cls(name, parsed.lhs, parsed.rhs, parsed.existential_vars)

    # -- variable classification ------------------------------------------

    def lhs_variables(self) -> frozenset[Variable]:
        out: set[Variable] = set()
        for atom in self.lhs:
            out |= atom.variable_set()
        return frozenset(out)

    def rhs_variables(self) -> frozenset[Variable]:
        out: set[Variable] = set()
        for atom in self.rhs:
            out |= atom.variable_set()
        return frozenset(out)

    def exported_variables(self) -> tuple[Variable, ...]:
        """Variables in common between LHS and RHS, in first-RHS-use order.

        These parameterize the Skolem functions (Section 4.1.1 — "produces
        universal solutions ... while guaranteeing termination for weakly
        acyclic mappings").
        """
        lhs_vars = self.lhs_variables()
        seen: list[Variable] = []
        for atom in self.rhs:
            for var in atom.variables():
                if var in lhs_vars and var not in seen:
                    seen.append(var)
        return tuple(seen)

    # -- relation usage ------------------------------------------------------

    def source_relations(self) -> frozenset[str]:
        return frozenset(a.predicate for a in self.lhs)

    def target_relations(self) -> frozenset[str]:
        return frozenset(a.predicate for a in self.rhs)

    def relations(self) -> frozenset[str]:
        return self.source_relations() | self.target_relations()

    # -- validation ------------------------------------------------------------

    def validate(self, catalog: TMapping[str, RelationSchema]) -> None:
        """Check every atom against the relation catalog (name + arity)."""
        for atom in (*self.lhs, *self.rhs):
            schema = catalog.get(atom.predicate)
            if schema is None:
                raise SchemaError(
                    f"mapping {self.name!r} references unknown relation "
                    f"{atom.predicate!r}"
                )
            if schema.arity != atom.arity:
                raise SchemaError(
                    f"mapping {self.name!r} uses {atom.predicate!r} with "
                    f"arity {atom.arity}, schema says {schema.arity}"
                )
        for var in self.existential_vars:
            if var in self.lhs_variables():
                raise SchemaError(
                    f"mapping {self.name!r}: existential variable {var!r} "
                    "also occurs on the LHS"
                )

    # -- compilation -------------------------------------------------------------

    def skolem_terms(self) -> dict[Variable, SkolemTerm]:
        """The Skolem term substituted for each existential variable."""
        exported = tuple(self.exported_variables())
        return {
            var: SkolemTerm(
                SkolemFunction(skolem_function_name(self.name, var)),
                exported,
            )
            for var in sorted(self.existential_vars, key=lambda v: v.name)
        }

    def to_rules(
        self, rename: Callable[[str, str], str] | None = None
    ) -> tuple[Rule, ...]:
        """Compile to datalog: one rule per RHS atom, Skolemized.

        ``rename(relation, side)`` maps user relation names to internal
        names, with ``side`` one of ``"source"`` / ``"target"`` — this is how
        the internal schema substitutes ``R_o`` on the LHS and ``R_i`` on the
        RHS (Section 3.1).  Identity by default.
        """
        if rename is None:
            rename = lambda relation, _side: relation  # noqa: E731
        skolems = self.skolem_terms()

        def substitute(term: Term) -> Term:
            if isinstance(term, Variable) and term in skolems:
                return skolems[term]
            return term

        body = tuple(
            Atom(
                rename(atom.predicate, "source"),
                atom.terms,
                negated=atom.negated,
            )
            for atom in self.lhs
        )
        rules = []
        for atom in self.rhs:
            head = Atom(
                rename(atom.predicate, "target"),
                tuple(substitute(t) for t in atom.terms),
            )
            rules.append(Rule(head, body, label=self.name))
        return tuple(rules)

    # -- serialization -----------------------------------------------------------

    def to_tgd_text(self) -> str:
        """Render the tgd as text that :meth:`parse` accepts.

        This is the serialization used by the declarative spec layer
        (:mod:`repro.api.spec`): ``SchemaMapping.parse(name, m.to_tgd_text())``
        reconstructs an equal mapping.
        """
        lhs = ", ".join(repr(a) for a in self.lhs)
        rhs = ", ".join(repr(a) for a in self.rhs)
        if self.existential_vars:
            names = ", ".join(
                sorted(v.name for v in self.existential_vars)
            )
            rhs = f"exists {names} . {rhs}"
        return f"{lhs} -> {rhs}"

    def __repr__(self) -> str:
        return f"({self.name}) {self.to_tgd_text()}"
