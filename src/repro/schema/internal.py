"""Internal schema expansion: R^l, R^r, R^i, R^t, R^o (Figure 2).

Section 3.1 expands each user relation ``R`` into four internal relations
(plus the trusted table ``R^t`` of Section 3.3):

* ``R__l`` — local contributions (edit-log inserts not later deleted),
* ``R__r`` — rejections (curation deletions of non-local data),
* ``R__i`` — input: tuples produced by update translation via mappings,
* ``R__t`` — the trusted subset of the input (Section 3.3),
* ``R__o`` — the curated output table: what users query and what outgoing
  mappings read.

and rewrites the mappings over the internal schema:

* each tgd's LHS relations become ``R__o`` and RHS relations ``R__i``,
* (iR): ``R__t = trusted(R__i)`` — realized as per-mapping rules so trust
  conditions can be attached per mapping (see
  :mod:`repro.provenance.relations`),
* (tR): ``R__t(x) and not R__r(x) -> R__o(x)``,
* (lR): ``R__l(x) -> R__o(x)``.

Internal names use a double-underscore suffix to avoid colliding with user
relation names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..datalog.ast import Atom, Program, Rule, Variable
from ..storage.database import Database
from .relation import PeerSchema, RelationSchema, SchemaError
from .tgd import SchemaMapping
from .weak_acyclic import require_weakly_acyclic

LOCAL_SUFFIX = "__l"
REJECTION_SUFFIX = "__r"
INPUT_SUFFIX = "__i"
TRUSTED_SUFFIX = "__t"
OUTPUT_SUFFIX = "__o"

LOCAL_RULE_PREFIX = "lR:"
TRUST_RULE_PREFIX = "tR:"


def local_name(relation: str) -> str:
    return relation + LOCAL_SUFFIX


def rejection_name(relation: str) -> str:
    return relation + REJECTION_SUFFIX


def input_name(relation: str) -> str:
    return relation + INPUT_SUFFIX


def trusted_name(relation: str) -> str:
    return relation + TRUSTED_SUFFIX


def output_name(relation: str) -> str:
    return relation + OUTPUT_SUFFIX


@dataclass(frozen=True)
class InternalSchema:
    """The expanded internal schema and mapping rules for a CDSS.

    Construction validates the mappings against the union schema and checks
    weak acyclicity (Section 3.1's restriction).
    """

    peer_schemas: tuple[PeerSchema, ...]
    mappings: tuple[SchemaMapping, ...]
    catalog: dict[str, RelationSchema] = field(
        default=None, compare=False, repr=False
    )  # type: ignore[assignment]
    owner_of: dict[str, str] = field(
        default=None, compare=False, repr=False
    )  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "peer_schemas", tuple(self.peer_schemas))
        object.__setattr__(self, "mappings", tuple(self.mappings))
        catalog: dict[str, RelationSchema] = {}
        owner_of: dict[str, str] = {}
        for peer_schema in self.peer_schemas:
            for relation in peer_schema.relations:
                if relation.name in catalog:
                    raise SchemaError(
                        f"relation {relation.name!r} declared by two peers "
                        f"({owner_of[relation.name]!r} and "
                        f"{peer_schema.peer!r}); peer schemas must be disjoint"
                    )
                catalog[relation.name] = relation
                owner_of[relation.name] = peer_schema.peer
        object.__setattr__(self, "catalog", catalog)
        object.__setattr__(self, "owner_of", owner_of)
        names = [m.name for m in self.mappings]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate mapping names: {names!r}")
        for mapping in self.mappings:
            mapping.validate(catalog)
        require_weakly_acyclic(self.mappings)

    # -- lookups ---------------------------------------------------------

    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.catalog))

    def arity_of(self, relation: str) -> int:
        return self.catalog[relation].arity

    def peer_of_relation(self, relation: str) -> str:
        return self.owner_of[relation]

    def mapping_by_name(self, name: str) -> SchemaMapping:
        for mapping in self.mappings:
            if mapping.name == name:
                return mapping
        raise SchemaError(f"no mapping named {name!r}")

    def target_peers(self, mapping: SchemaMapping) -> frozenset[str]:
        """The peers owning the mapping's RHS relations."""
        return frozenset(
            self.owner_of[rel] for rel in mapping.target_relations()
        )

    def source_peers(self, mapping: SchemaMapping) -> frozenset[str]:
        return frozenset(
            self.owner_of[rel] for rel in mapping.source_relations()
        )

    # -- internal rules -----------------------------------------------------

    def mapping_rules(self) -> tuple[Rule, ...]:
        """Skolemized tgd rules over the internal schema: ``LHS^o -> RHS^i``."""
        rules: list[Rule] = []
        for mapping in self.mappings:
            rules.extend(
                mapping.to_rules(
                    rename=lambda rel, side: (
                        output_name(rel) if side == "source" else input_name(rel)
                    )
                )
            )
        return tuple(rules)

    def bookkeeping_rules(self) -> tuple[Rule, ...]:
        """The (tR) and (lR) rules for every relation (Sections 3.1, 3.3).

        The (iR) trust-selection rules are *not* generated here: the
        provenance encoding (:mod:`repro.provenance.relations`) emits them
        per mapping, so per-mapping trust conditions can be attached.
        """
        rules: list[Rule] = []
        for name in self.relation_names():
            schema = self.catalog[name]
            variables = tuple(
                Variable(f"x{i}") for i in range(schema.arity)
            )
            rules.append(
                Rule(
                    Atom(output_name(name), variables),
                    (
                        Atom(trusted_name(name), variables),
                        Atom(rejection_name(name), variables, negated=True),
                    ),
                    label=TRUST_RULE_PREFIX + name,
                )
            )
            rules.append(
                Rule(
                    Atom(output_name(name), variables),
                    (Atom(local_name(name), variables),),
                    label=LOCAL_RULE_PREFIX + name,
                )
            )
        return tuple(rules)

    def logical_program(self) -> Program:
        """Mapping rules + bookkeeping rules (without provenance encoding).

        Note: this program derives ``R__i`` but nothing links ``R__i`` to
        ``R__t`` — the provenance encoding adds those per-mapping rules.  For
        a provenance-free system, use :meth:`plain_program`.
        """
        return Program(
            self.mapping_rules() + self.bookkeeping_rules(),
            name="internal-mappings",
        )

    def plain_program(self) -> Program:
        """A provenance-free executable program (used by baselines/tests).

        Adds the trivial (iR) rules ``R__t(x) :- R__i(x)`` so the program is
        closed; trust conditions cannot be attached per mapping in this form.
        """
        rules = list(self.mapping_rules()) + list(self.bookkeeping_rules())
        for name in self.relation_names():
            schema = self.catalog[name]
            variables = tuple(
                Variable(f"x{i}") for i in range(schema.arity)
            )
            rules.append(
                Rule(
                    Atom(trusted_name(name), variables),
                    (Atom(input_name(name), variables),),
                    label=f"iR:{name}",
                )
            )
        return Program(tuple(rules), name="internal-mappings-plain")

    # -- database setup ------------------------------------------------------

    def edb_names(self) -> tuple[str, ...]:
        out: list[str] = []
        for name in self.relation_names():
            out.append(local_name(name))
            out.append(rejection_name(name))
        return tuple(out)

    def idb_names(self) -> tuple[str, ...]:
        out: list[str] = []
        for name in self.relation_names():
            out.extend(
                (input_name(name), trusted_name(name), output_name(name))
            )
        return tuple(out)

    def setup_database(self, db: Database) -> None:
        """Create every internal relation in ``db`` (idempotent)."""
        for name in self.relation_names():
            arity = self.arity_of(name)
            for internal in (
                local_name(name),
                rejection_name(name),
                input_name(name),
                trusted_name(name),
                output_name(name),
            ):
                db.ensure(internal, arity)

    def relations_of_peer(self, peer: str) -> tuple[str, ...]:
        return tuple(
            name
            for name in self.relation_names()
            if self.owner_of[name] == peer
        )


def build_internal_schema(
    peer_schemas: Iterable[PeerSchema], mappings: Iterable[SchemaMapping]
) -> InternalSchema:
    """Convenience constructor with validation."""
    return InternalSchema(tuple(peer_schemas), tuple(mappings))
