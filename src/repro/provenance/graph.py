"""The provenance graph (Definition 3.2) and its evaluation.

Two kinds of nodes: *tuple nodes* — one per user-level tuple in the system —
and *mapping nodes* — one per instantiation of a mapping's tgd (i.e. one per
provenance-table row).  Arcs run from source tuple nodes into the mapping
node (conjunction) and from the mapping node to the tuples it derives.
Tuples inserted locally additionally carry a provenance token (the tuple
itself, Section 4.1.2).

The graph is reconstructed from the relational encoding
(:mod:`repro.provenance.relations`): each row of each provenance table *is*
a mapping node.  From the graph one can

* generate the system of provenance equations (Section 3.2) and solve it in
  any omega-continuous semiring (:meth:`ProvenanceGraph.evaluate`),
* extract the provenance expression of a tuple (Example 6) via bounded
  unfolding of the equations, and
* compute derivability from a set of base tuples — the well-founded
  "grounded" set used to reason about deletion (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..schema.internal import local_name
from ..storage.database import Database
from ..storage.instance import Row
from .expression import (
    EquationSystem,
    ProvenanceExpression,
    ZERO,
    mapping_app,
    product_of,
    ref,
    sum_of,
    token as token_leaf,
)
from .relations import ProvenanceEncoding
from .semiring import Semiring, Token


@dataclass(frozen=True)
class MappingNode:
    """One instantiation of a mapping tgd (one provenance-table row)."""

    mapping: str
    table: str
    row: Row  # the provenance-table row (values of the tgd's LHS variables)
    sources: tuple[Token, ...]
    targets: tuple[Token, ...]

    def __repr__(self) -> str:
        return f"<{self.mapping}:{self.row!r}>"


@dataclass(frozen=True)
class DerivationTree:
    """One derivation tree of a tuple — "every summand in a provenance
    expression corresponds to a derivation tree" (Section 3.2).

    ``mapping`` is None for a base-token leaf; otherwise the tree's root was
    derived by that mapping from the children's roots.
    """

    root: Token
    mapping: str | None = None
    children: tuple["DerivationTree", ...] = ()

    @property
    def is_leaf(self) -> bool:
        return self.mapping is None

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def leaves(self) -> tuple[Token, ...]:
        if self.is_leaf:
            return (self.root,)
        out: list[Token] = []
        for child in self.children:
            out.extend(child.leaves())
        return tuple(out)

    def __repr__(self) -> str:
        name = f"{self.root[0]}{self.root[1]!r}"
        if self.is_leaf:
            return name
        inner = ", ".join(repr(c) for c in self.children)
        return f"{name}<-{self.mapping}({inner})"


@dataclass
class ProvenanceGraph:
    """Tuple nodes, mapping nodes, and local-insertion tokens."""

    tuple_nodes: set[Token] = field(default_factory=set)
    mapping_nodes: list[MappingNode] = field(default_factory=list)
    local_tokens: set[Token] = field(default_factory=set)
    incoming: dict[Token, list[MappingNode]] = field(default_factory=dict)
    outgoing: dict[Token, list[MappingNode]] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    def add_tuple(self, node: Token) -> None:
        if node not in self.tuple_nodes:
            self.tuple_nodes.add(node)
            self.incoming.setdefault(node, [])
            self.outgoing.setdefault(node, [])

    def add_local_token(self, node: Token) -> None:
        self.add_tuple(node)
        self.local_tokens.add(node)

    def add_mapping_node(self, node: MappingNode) -> None:
        self.mapping_nodes.append(node)
        for source in node.sources:
            self.add_tuple(source)
            self.outgoing[source].append(node)
        for target in node.targets:
            self.add_tuple(target)
            self.incoming[target].append(node)

    # -- equations ------------------------------------------------------------

    def equation_for(self, node: Token) -> ProvenanceExpression:
        """``Pv(node)`` as an immediate-consequents expression over tokens and
        ``Pv(.)`` references (the body of the node's equation, Section 3.2)."""
        summands: list[ProvenanceExpression] = []
        if node in self.local_tokens:
            summands.append(token_leaf(node[0], node[1]))
        for mapping_node in self.incoming.get(node, ()):
            factors = [
                ref(source[0], source[1]) for source in mapping_node.sources
            ]
            summands.append(
                mapping_app(mapping_node.mapping, product_of(factors))
            )
        return sum_of(summands)

    def equation_system(self) -> EquationSystem:
        return EquationSystem(
            {node: self.equation_for(node) for node in self.tuple_nodes}
        )

    def expression_for(
        self, relation: str, row: Iterable[object], max_depth: int = 8
    ) -> ProvenanceExpression:
        """The provenance expression of one tuple, with cycles unfolded to
        ``max_depth`` (finite for acyclic provenance of depth <= max_depth)."""
        node = (relation, tuple(row))
        if node not in self.tuple_nodes:
            return ZERO
        return self.equation_system().expand(node, max_depth=max_depth)

    # -- evaluation --------------------------------------------------------------

    def evaluate(
        self,
        semiring: Semiring,
        token_value: Callable[[Token], object] | None = None,
        mapping_value: Callable[[str, object], object] | None = None,
    ) -> dict[Token, object]:
        """Solve the provenance equations in ``semiring`` by Kleene iteration.

        ``token_value`` defaults to ``semiring.one`` for every local token.
        ``mapping_value(mapping_name, inner)`` defaults to
        ``semiring.map_apply``.
        """
        if token_value is None:
            token_value = lambda _tok: semiring.one  # noqa: E731
        return self.equation_system().solve(
            semiring, token_value, mapping_value=mapping_value
        )

    def evaluate_with_conditions(
        self,
        semiring: Semiring,
        token_value: Callable[[Token], object],
        node_value: Callable[[MappingNode, Token, object], object],
    ) -> dict[Token, object]:
        """Like :meth:`evaluate`, but the mapping-function interpretation may
        inspect the concrete mapping node and the target tuple it derives,
        which is what data-dependent trust conditions need (Example 4:
        "distrusts any tuple B(i,n) ... if n >= 3").

        Evaluated directly over the graph rather than the equation system,
        because distinct mapping nodes of the same mapping — and distinct
        targets of one node — may be valued differently.
        """
        values: dict[Token, object] = {
            node: semiring.zero for node in self.tuple_nodes
        }
        for _ in range(len(self.tuple_nodes) + len(self.mapping_nodes) + 1):
            changed = False
            for node in self.tuple_nodes:
                summands = []
                if node in self.local_tokens:
                    summands.append(token_value(node))
                for mapping_node in self.incoming.get(node, ()):
                    inner = semiring.product(
                        values[source] for source in mapping_node.sources
                    )
                    summands.append(node_value(mapping_node, node, inner))
                new = semiring.sum(summands)
                if new != values[node]:
                    values[node] = new
                    changed = True
            if not changed:
                break
        return values

    # -- derivation trees ---------------------------------------------------------

    def derivation_trees(
        self,
        relation: str,
        row: Iterable[object],
        max_depth: int = 6,
        limit: int = 100,
    ) -> list[DerivationTree]:
        """Enumerate derivation trees of a tuple, bounded by depth and count.

        With cyclic mappings a tuple can have "infinitely many derivations,
        as well as ... derivations [that are] arbitrarily large"
        (Section 3.2); the bounds keep the enumeration finite.  Trees are
        returned smallest-first.
        """
        target = (relation, tuple(row))

        def expand(node: Token, depth: int) -> list[DerivationTree]:
            results: list[DerivationTree] = []
            if node in self.local_tokens:
                results.append(DerivationTree(node))
            if depth <= 0:
                return results
            for mapping_node in self.incoming.get(node, ()):
                child_options = [
                    expand(source, depth - 1)
                    for source in mapping_node.sources
                ]
                if any(not options for options in child_options):
                    continue
                combos: list[tuple[DerivationTree, ...]] = [()]
                for options in child_options:
                    combos = [
                        prefix + (option,)
                        for prefix in combos
                        for option in options
                    ]
                    if len(combos) > limit:
                        combos = combos[:limit]
                for combo in combos:
                    results.append(
                        DerivationTree(node, mapping_node.mapping, combo)
                    )
                    if len(results) >= limit:
                        return results
            return results

        trees = expand(target, max_depth)
        # De-duplicate (cycles can re-create identical trees at different
        # depth budgets) and order smallest-first.
        unique = sorted(set(trees), key=lambda t: (t.size(), repr(t)))
        return unique[:limit]

    # -- derivability ------------------------------------------------------------

    def grounded(self, base: Iterable[Token] | None = None) -> set[Token]:
        """Tuples derivable (well-foundedly) from ``base`` tokens.

        ``base`` defaults to all local tokens.  A tuple is grounded iff it is
        a base token or some incoming mapping node has all sources grounded —
        the least fixpoint, so cyclic mutual support does *not* ground
        anything (the "garbage" Section 4.2's deletion algorithm collects).
        """
        grounded: set[Token] = set(
            self.local_tokens if base is None else base
        ) & self.tuple_nodes
        frontier = set(grounded)
        while frontier:
            candidates: set[MappingNode] = set()
            for node in frontier:
                candidates.update(self.outgoing.get(node, ()))
            frontier = set()
            for mapping_node in candidates:
                if all(s in grounded for s in mapping_node.sources):
                    for target in mapping_node.targets:
                        if target not in grounded:
                            grounded.add(target)
                            frontier.add(target)
        return grounded

    def __repr__(self) -> str:
        return (
            f"<ProvenanceGraph: {len(self.tuple_nodes)} tuples, "
            f"{len(self.mapping_nodes)} mapping nodes, "
            f"{len(self.local_tokens)} local tokens>"
        )


def build_provenance_graph(
    db: Database, encoding: ProvenanceEncoding
) -> ProvenanceGraph:
    """Reconstruct the provenance graph from the relational encoding.

    Tuple nodes are user-level (relation, row) pairs; rows of each provenance
    table become mapping nodes; membership in ``R__l`` marks local tokens.
    """
    graph = ProvenanceGraph()
    for relation in encoding.internal.relation_names():
        local = db.get(local_name(relation))
        if local is not None:
            for row in local:
                graph.add_local_token((relation, row))
    for table in encoding.tables:
        instance = db.get(table.relation)
        if instance is None:
            continue
        for row in instance:
            sources = table.source_tuples(row)
            targets = tuple(
                (head.user_relation, table.head_row(head, row))
                for head in table.heads
            )
            graph.add_mapping_node(
                MappingNode(
                    mapping=table.mapping,
                    table=table.relation,
                    row=row,
                    sources=sources,
                    targets=targets,
                )
            )
    return graph
