"""Relational encoding of provenance (Sections 4.1.2 and 5).

Each mapping rule ``(mi) R(x, f(x)) :- phi(x, y)`` is rewritten into

* ``(m'i)  PRi(x, y) :- phi(x, y)``     — the provenance table: one row per
  rule-body instantiation (a mapping node of the provenance graph), and
* ``(m''i) R(x, f(x)) :- PRi(x, y)``    — deriving the data instance from
  the provenance encoding,

plus, for trust (Section 3.3's (iR) rule realized per mapping so trust
conditions can attach to individual mappings),

* ``(ti)  R__t(x, f(x)) :- PRi(x, y)``  — with the mapping's trust condition
  applied as a head filter during evaluation.

Two encodings are provided, matching the implementation alternatives the
paper compared (Section 5 "Provenance storage"):

* ``per-rule`` — one provenance table per (mapping, RHS atom), the direct
  encoding of Section 4.1.2;
* ``composite`` — one provenance table per tgd even when the tgd has
  multiple RHS atoms (the "composite mapping table" optimization the paper
  found faster in practice; the default here).

Provenance-table columns are the distinct LHS variables of the tgd ("it
suffices to just store the value of each unique variable in a rule
instantiation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Iterator

from ..datalog.ast import (
    Atom,
    Constant,
    Program,
    Rule,
    SkolemTerm,
    Variable,
    instantiate_atom,
)
from ..schema.internal import InternalSchema, input_name, output_name, trusted_name
from ..schema.tgd import SchemaMapping
from ..storage.database import Database
from ..storage.instance import Row
from .expression import ProvenanceError
from .semiring import Token

ENCODING_COMPOSITE = "composite"
ENCODING_PER_RULE = "per-rule"
ENCODING_STYLES = (ENCODING_COMPOSITE, ENCODING_PER_RULE)

PROV_RULE_PREFIX = "prov:"
PROJ_RULE_PREFIX = "proj:"
TRUST_RULE_PREFIX = "trust:"

OUTPUT_SUFFIX_LEN = len("__o")


def _user_relation_of_internal(internal_rel: str) -> str:
    """Strip the ``__o`` / ``__i`` suffix from an internal relation name."""
    return internal_rel[:-OUTPUT_SUFFIX_LEN]


def trust_label(mapping_name: str, head_index: int) -> str:
    return f"{TRUST_RULE_PREFIX}{mapping_name}:{head_index}"


@dataclass(frozen=True)
class HeadTarget:
    """One RHS atom of a mapping, in its internal (``R__i``) Skolemized form."""

    mapping: str
    index: int
    atom: Atom  # head over R__i, Skolemized
    user_relation: str

    @property
    def proj_label(self) -> str:
        return f"{PROJ_RULE_PREFIX}{self.mapping}:{self.index}"

    @property
    def trust_label(self) -> str:
        return trust_label(self.mapping, self.index)


@dataclass(frozen=True)
class ProvenanceTable:
    """One provenance relation: its schema, defining body, and head targets."""

    mapping: str
    relation: str
    variables: tuple[Variable, ...]
    body: tuple[Atom, ...]  # over R__o internal names; may include negation
    heads: tuple[HeadTarget, ...]
    _var_index: dict[Variable, int] = field(
        default=None, compare=False, repr=False
    )  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_var_index",
            {var: i for i, var in enumerate(self.variables)},
        )

    @property
    def arity(self) -> int:
        return len(self.variables)

    @property
    def prov_label(self) -> str:
        return f"{PROV_RULE_PREFIX}{self.mapping}:{self.relation}"

    # -- row interpretation -------------------------------------------------

    def substitution(self, row: Row) -> dict[Variable, object]:
        return dict(zip(self.variables, row, strict=True))

    def head_row(self, head: HeadTarget, row: Row) -> Row:
        return instantiate_atom(head.atom, self.substitution(row))

    def source_tuples(self, row: Row) -> tuple[Token, ...]:
        """The user-level (relation, tuple) pairs joined by this instantiation
        (positive body atoms only — these are the provenance-graph arcs *into*
        the mapping node)."""
        subst = self.substitution(row)
        out: list[Token] = []
        for atom in self.body:
            if atom.negated:
                continue
            out.append(
                (
                    _user_relation_of_internal(atom.predicate),
                    instantiate_atom(atom, subst),
                )
            )
        return tuple(out)

    def support_probe(
        self, head: HeadTarget, target_row: Row
    ) -> tuple[tuple[int, ...], tuple[object, ...]] | None:
        """Columns/values probing this table for rows deriving ``target_row``.

        This is the *inverse rule* of Section 4.1.3: it "uses the existing
        provenance table to fill in the possible values ... that were
        projected away during the mapping".  Returns None if ``target_row``
        cannot possibly be derived through ``head`` (constant or Skolem
        mismatch).
        """
        bindings: dict[Variable, object] = {}

        def bind(var: Variable, value: object) -> bool:
            known = bindings.get(var, _UNSET)
            if known is _UNSET:
                bindings[var] = value
                return True
            return known == value

        for term, value in zip(head.atom.terms, target_row, strict=True):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
            elif isinstance(term, Variable):
                if not bind(term, value):
                    return None
            elif isinstance(term, SkolemTerm):
                from ..datalog.ast import SkolemValue

                if not isinstance(value, SkolemValue):
                    return None
                if value.function_name != term.function.name:
                    return None
                if len(value.args) != len(term.args):
                    return None
                for arg_term, arg_value in zip(term.args, value.args):
                    if isinstance(arg_term, Variable):
                        if not bind(arg_term, arg_value):
                            return None
                    elif isinstance(arg_term, Constant):
                        if arg_term.value != arg_value:
                            return None
                    else:  # pragma: no cover - parser forbids nesting
                        raise ProvenanceError(
                            f"nested Skolem term {arg_term!r} unsupported"
                        )
        columns: list[int] = []
        values: list[object] = []
        for var, value in bindings.items():
            index = self._var_index.get(var)
            if index is None:  # pragma: no cover - heads use LHS vars only
                raise ProvenanceError(
                    f"head variable {var!r} missing from provenance table "
                    f"{self.relation!r}"
                )
            columns.append(index)
            values.append(value)
        return tuple(columns), tuple(values)

    def body_probe(
        self, atom_index: int, source_row: Row
    ) -> tuple[tuple[int, ...], tuple[object, ...]] | None:
        """Columns/values probing this table for instantiations that joined
        ``source_row`` at positive body atom ``atom_index``.

        This is the deletion delta rule of Section 4.2: when a source tuple
        is deleted, the matching provenance rows are exactly the
        instantiations that used it.  Returns None on constant mismatch
        (the row cannot have matched this atom).
        """
        atom = self.body[atom_index]
        if atom.negated:
            raise ProvenanceError(
                f"body_probe on negated atom {atom!r} of {self.relation!r}"
            )
        bindings: dict[Variable, object] = {}
        for term, value in zip(atom.terms, source_row, strict=True):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
            elif isinstance(term, Variable):
                known = bindings.get(term, _UNSET)
                if known is _UNSET:
                    bindings[term] = value
                elif known != value:
                    return None
            else:  # pragma: no cover - bodies cannot hold Skolem terms
                raise ProvenanceError(f"unexpected body term {term!r}")
        columns = tuple(self._var_index[var] for var in bindings)
        values = tuple(bindings[var] for var in bindings)
        return columns, values

    def positive_body_atoms(self) -> tuple[tuple[int, Atom], ...]:
        """(index, atom) pairs for the positive body atoms."""
        return tuple(
            (index, atom)
            for index, atom in enumerate(self.body)
            if not atom.negated
        )

    def supporting_rows(
        self, db: Database, head: HeadTarget, target_row: Row
    ) -> AbstractSet[Row]:
        """All rows of this provenance table deriving ``target_row`` via
        ``head`` in the current database state.

        Returns a read-only view of the live index bucket (see
        :meth:`repro.storage.instance.Instance.lookup`); materialize before
        mutating the provenance table while iterating.
        """
        probe = self.support_probe(head, target_row)
        if probe is None:
            return frozenset()
        columns, values = probe
        return db[self.relation].lookup(columns, values)

    # -- rule generation ------------------------------------------------------

    def prov_rule(self) -> Rule:
        """``(m') PRi(vars) :- body``."""
        return Rule(
            Atom(self.relation, self.variables),
            self.body,
            label=self.prov_label,
        )

    def proj_rules(self) -> tuple[Rule, ...]:
        """``(m'') R__i(head) :- PRi(vars)`` for each head target."""
        prov_atom = Atom(self.relation, self.variables)
        return tuple(
            Rule(head.atom, (prov_atom,), label=head.proj_label)
            for head in self.heads
        )

    def trust_rules(self) -> tuple[Rule, ...]:
        """``(ti) R__t(head) :- PRi(vars)`` for each head target."""
        prov_atom = Atom(self.relation, self.variables)
        return tuple(
            Rule(
                head.atom.with_predicate(
                    trusted_name(head.user_relation)
                ),
                (prov_atom,),
                label=head.trust_label,
            )
            for head in self.heads
        )


class _Unset:
    __slots__ = ()


_UNSET = _Unset()


def _mapping_tables(
    mapping: SchemaMapping, style: str
) -> tuple[ProvenanceTable, ...]:
    skolems = mapping.skolem_terms()
    lhs_vars: list[Variable] = []
    for atom in mapping.lhs:
        for var in atom.variables():
            if var not in lhs_vars:
                lhs_vars.append(var)
    body = tuple(
        Atom(output_name(atom.predicate), atom.terms, negated=atom.negated)
        for atom in mapping.lhs
    )

    def head_target(index: int, atom: Atom) -> HeadTarget:
        terms = tuple(
            skolems.get(t, t) if isinstance(t, Variable) else t
            for t in atom.terms
        )
        return HeadTarget(
            mapping=mapping.name,
            index=index,
            atom=Atom(input_name(atom.predicate), terms),
            user_relation=atom.predicate,
        )

    heads = tuple(
        head_target(index, atom) for index, atom in enumerate(mapping.rhs)
    )
    if style == ENCODING_COMPOSITE:
        return (
            ProvenanceTable(
                mapping=mapping.name,
                relation=f"__prov_{mapping.name}",
                variables=tuple(lhs_vars),
                body=body,
                heads=heads,
            ),
        )
    if style == ENCODING_PER_RULE:
        return tuple(
            ProvenanceTable(
                mapping=mapping.name,
                relation=f"__prov_{mapping.name}_{head.index}",
                variables=tuple(lhs_vars),
                body=body,
                heads=(head,),
            )
            for head in heads
        )
    raise ProvenanceError(f"unknown provenance encoding style {style!r}")


@dataclass(frozen=True)
class ProvenanceEncoding:
    """The full relational provenance encoding for an internal schema."""

    internal: InternalSchema
    style: str = ENCODING_COMPOSITE
    tables: tuple[ProvenanceTable, ...] = field(default=None, compare=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        tables: list[ProvenanceTable] = []
        for mapping in self.internal.mappings:
            tables.extend(_mapping_tables(mapping, self.style))
        object.__setattr__(self, "tables", tuple(tables))

    # -- lookups ----------------------------------------------------------

    def table_named(self, relation: str) -> ProvenanceTable:
        for table in self.tables:
            if table.relation == relation:
                return table
        raise ProvenanceError(f"no provenance table named {relation!r}")

    def tables_for_mapping(self, mapping: str) -> tuple[ProvenanceTable, ...]:
        return tuple(t for t in self.tables if t.mapping == mapping)

    def targets_for_relation(
        self, user_relation: str
    ) -> tuple[tuple[ProvenanceTable, HeadTarget], ...]:
        """Every (table, head) pair that can derive tuples of a relation."""
        out: list[tuple[ProvenanceTable, HeadTarget]] = []
        for table in self.tables:
            for head in table.heads:
                if head.user_relation == user_relation:
                    out.append((table, head))
        return tuple(out)

    def iter_heads(self) -> Iterator[tuple[ProvenanceTable, HeadTarget]]:
        for table in self.tables:
            for head in table.heads:
                yield table, head

    # -- program assembly ----------------------------------------------------

    def mapping_program(self) -> Program:
        """(m') + (m'') + trust rules for all mappings."""
        rules: list[Rule] = []
        for table in self.tables:
            rules.append(table.prov_rule())
            rules.extend(table.proj_rules())
            rules.extend(table.trust_rules())
        return Program(tuple(rules), name=f"provenance-{self.style}")

    def full_program(self) -> Program:
        """The complete update-exchange program: mapping rules with
        provenance encoding plus the (tR)/(lR) bookkeeping rules."""
        return self.mapping_program().extend(
            self.internal.bookkeeping_rules()
        )

    def setup_database(self, db: Database) -> None:
        self.internal.setup_database(db)
        for table in self.tables:
            db.ensure(table.relation, table.arity)

    def provenance_relation_names(self) -> tuple[str, ...]:
        return tuple(t.relation for t in self.tables)
