"""Commutative semirings for provenance evaluation.

Section 3.2 represents the provenance of a derived tuple as an expression
over a semiring with two operations (+ for alternative derivations, . for
joint use in a join) and one unary function per mapping.  This module
provides the semiring abstraction and the concrete instances used by the
system and its extensions:

* :class:`BooleanSemiring` — trust evaluation (Section 3.3: map T to true
  and D to false, evaluate with . as conjunction and + as disjunction);
* :class:`CountingSemiring` — duplicate/bag semantics, which the paper notes
  its model generalizes (Section 7, citing [30]);
* :class:`LineageSemiring` — which base tuples contributed (Cui-style
  lineage [8], recovered as a special semiring);
* :class:`WhySemiring` — witness sets (why-provenance [4]);
* :class:`TropicalSemiring` — (min, +): derivation cost; the basis for the
  *ranked trust* extension the paper lists as future work (Section 8);
* the free expression "semiring" lives in
  :mod:`repro.provenance.expression`.

All instances are commutative and (except for saturation in the counting
semiring, documented below) satisfy the semiring laws, which the test suite
verifies with hypothesis.
"""

from __future__ import annotations

from typing import Generic, Iterable, TypeVar

T = TypeVar("T")


class Semiring(Generic[T]):
    """A commutative semiring (K, plus, times, zero, one).

    Subclasses must provide ``zero``, ``one``, :meth:`plus` and
    :meth:`times`.  :meth:`map_apply` interprets the unary mapping functions
    of provenance expressions; the default interpretation is the identity,
    which collapses mapping applications (correct for lineage, why, counting
    — trust overrides it to AND in the mapping's trust condition).
    """

    name: str = "semiring"

    @property
    def zero(self) -> T:
        raise NotImplementedError

    @property
    def one(self) -> T:
        raise NotImplementedError

    def plus(self, a: T, b: T) -> T:
        raise NotImplementedError

    def times(self, a: T, b: T) -> T:
        raise NotImplementedError

    def map_apply(self, mapping_name: str, value: T) -> T:
        """Interpret the unary function of ``mapping_name`` applied to
        ``value``.  Identity unless overridden."""
        return value

    # -- conveniences -------------------------------------------------------

    def sum(self, values: Iterable[T]) -> T:
        result = self.zero
        for value in values:
            result = self.plus(result, value)
        return result

    def product(self, values: Iterable[T]) -> T:
        result = self.one
        for value in values:
            result = self.times(result, value)
        return result

    def is_zero(self, value: T) -> bool:
        return value == self.zero

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class BooleanSemiring(Semiring[bool]):
    """({true, false}, or, and): trust/derivability evaluation."""

    name = "boolean"

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def plus(self, a: bool, b: bool) -> bool:
        return a or b

    def times(self, a: bool, b: bool) -> bool:
        return a and b


#: Counting values saturate here so that cyclic provenance (infinitely many
#: derivations, Section 3.2) converges instead of diverging.  The paper's
#: formal treatment uses formal power series; saturation is the standard
#: omega-continuous completion N_infinity, with every value >= the cap
#: identified with infinity.
COUNT_SATURATION = 2**20


class CountingSemiring(Semiring[int]):
    """(N_infinity, +, *): number of distinct derivations (bag semantics)."""

    name = "counting"

    def __init__(self, saturation: int = COUNT_SATURATION) -> None:
        self._saturation = saturation

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def _clamp(self, value: int) -> int:
        return min(value, self._saturation)

    def plus(self, a: int, b: int) -> int:
        return self._clamp(a + b)

    def times(self, a: int, b: int) -> int:
        return self._clamp(a * b)


Token = tuple[str, tuple[object, ...]]
"""A provenance token: (relation name, tuple values) — Section 4.1.2 uses
the tuple itself as its own id."""


class LineageSemiring(Semiring[frozenset | None]):
    """Cui-style lineage: the set of base tuples a tuple depends on.

    ``None`` is the zero (no derivation); the empty set is the one.  Both
    operations union the contributing token sets, which is exactly why
    lineage cannot distinguish alternative derivations — the coarseness the
    paper's model improves upon (Section 2.2).
    """

    name = "lineage"

    @property
    def zero(self) -> frozenset | None:
        return None

    @property
    def one(self) -> frozenset:
        return frozenset()

    def plus(self, a: frozenset | None, b: frozenset | None) -> frozenset | None:
        if a is None:
            return b
        if b is None:
            return a
        return a | b

    def times(self, a: frozenset | None, b: frozenset | None) -> frozenset | None:
        if a is None or b is None:
            return None
        return a | b


class WhySemiring(Semiring[frozenset]):
    """Why-provenance: sets of witness sets of base tokens.

    plus is union of witness sets; times combines witnesses pairwise.
    zero = {} (no witnesses), one = {{}} (the empty witness).
    """

    name = "why"

    @property
    def zero(self) -> frozenset:
        return frozenset()

    @property
    def one(self) -> frozenset:
        return frozenset({frozenset()})

    def plus(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def times(self, a: frozenset, b: frozenset) -> frozenset:
        return frozenset(wa | wb for wa in a for wb in b)


class TropicalSemiring(Semiring[float]):
    """(R_>=0 with infinity, min, +): cheapest-derivation cost.

    Token values are per-source costs (e.g. 0 for fully trusted peers,
    higher for less authoritative ones); :meth:`map_apply` can be combined
    with per-mapping costs via :class:`WeightedTropicalSemiring`.  This
    realizes the ranked trust model sketched in Section 8.
    """

    name = "tropical"

    @property
    def zero(self) -> float:
        return float("inf")

    @property
    def one(self) -> float:
        return 0.0

    def plus(self, a: float, b: float) -> float:
        return min(a, b)

    def times(self, a: float, b: float) -> float:
        return a + b


class WeightedTropicalSemiring(TropicalSemiring):
    """Tropical semiring whose mapping functions add per-mapping costs."""

    name = "weighted-tropical"

    def __init__(self, mapping_costs: dict[str, float] | None = None) -> None:
        self._costs = dict(mapping_costs or {})

    def map_apply(self, mapping_name: str, value: float) -> float:
        return value + self._costs.get(mapping_name, 0.0)


def check_semiring_laws(
    semiring: Semiring[T], a: T, b: T, c: T
) -> list[str]:
    """Return descriptions of any violated semiring laws on (a, b, c).

    Used by the property-based tests; an empty list means all laws hold for
    this triple.
    """
    failures: list[str] = []
    s = semiring

    def eq(x: T, y: T, law: str) -> None:
        if x != y:
            failures.append(f"{law}: {x!r} != {y!r}")

    eq(s.plus(a, b), s.plus(b, a), "plus commutativity")
    eq(s.plus(s.plus(a, b), c), s.plus(a, s.plus(b, c)), "plus associativity")
    eq(s.plus(a, s.zero), a, "plus identity")
    eq(s.times(a, b), s.times(b, a), "times commutativity")
    eq(
        s.times(s.times(a, b), c),
        s.times(a, s.times(b, c)),
        "times associativity",
    )
    eq(s.times(a, s.one), a, "times identity")
    eq(s.times(a, s.zero), s.zero, "times annihilation")
    eq(
        s.times(a, s.plus(b, c)),
        s.plus(s.times(a, b), s.times(a, c)),
        "distributivity",
    )
    return failures
