"""Provenance expressions: the free structure of Section 3.2.

The provenance of a base tuple is its own token; the provenance of a derived
tuple is an expression built from tokens with ``+`` (alternative
derivations), ``.`` (conjunction in a join), and one unary function per
mapping (``m1(p3) + m4(p1 p2)`` in Example 6).  When mappings form cycles a
tuple may have infinitely many derivations; following the paper, cyclic
provenance is represented *finitely* as a system of equations whose
variables are :class:`TupleRef` nodes (Section 3.2: "the provenances are
finitely representable through a system of equations").

Expressions are immutable, hashable, and normalized on construction
(flattened, zero/one-simplified, sums and products sorted) so structural
equality is meaningful in tests.

Evaluation into any :class:`~repro.provenance.semiring.Semiring` is the
homomorphism of [16]: tokens are valued by a caller-supplied function,
``+``/``.`` map to the semiring operations, and mapping applications map to
``Semiring.map_apply`` (optionally specialized per mapping node by the trust
machinery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from .semiring import Semiring, Token


class ProvenanceError(Exception):
    """Raised for malformed provenance structures."""


@dataclass(frozen=True)
class ProvenanceExpression:
    """Base class for provenance expression nodes."""

    def __add__(self, other: "ProvenanceExpression") -> "ProvenanceExpression":
        return sum_of((self, other))

    def __mul__(self, other: "ProvenanceExpression") -> "ProvenanceExpression":
        return product_of((self, other))

    # Subclasses override:
    def evaluate(
        self,
        semiring: Semiring,
        token_value: Callable[[Token], object],
        ref_value: Callable[[Token], object] | None = None,
        mapping_value: Callable[[str, object], object] | None = None,
    ) -> object:
        raise NotImplementedError

    def tokens(self) -> frozenset[Token]:
        """All base tokens mentioned."""
        return frozenset()

    def refs(self) -> frozenset[Token]:
        """All tuple references (equation variables) mentioned."""
        return frozenset()

    def mapping_names(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class Zero(ProvenanceExpression):
    """No derivation."""

    def evaluate(self, semiring, token_value, ref_value=None, mapping_value=None):
        return semiring.zero

    def __repr__(self) -> str:
        return "0"


@dataclass(frozen=True)
class One(ProvenanceExpression):
    """The empty derivation (multiplicative identity)."""

    def evaluate(self, semiring, token_value, ref_value=None, mapping_value=None):
        return semiring.one

    def __repr__(self) -> str:
        return "1"


ZERO = Zero()
ONE = One()


@dataclass(frozen=True)
class TokenLeaf(ProvenanceExpression):
    """A base-tuple provenance token (the tuple is its own id, §4.1.2)."""

    relation: str
    row: tuple[object, ...]

    @property
    def token(self) -> Token:
        return (self.relation, self.row)

    def evaluate(self, semiring, token_value, ref_value=None, mapping_value=None):
        return token_value(self.token)

    def tokens(self) -> frozenset[Token]:
        return frozenset({self.token})

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.row)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class TupleRef(ProvenanceExpression):
    """A reference to another tuple's provenance: the variable ``Pv(t)``
    appearing in the equation system for cyclic provenance."""

    relation: str
    row: tuple[object, ...]

    @property
    def token(self) -> Token:
        return (self.relation, self.row)

    def evaluate(self, semiring, token_value, ref_value=None, mapping_value=None):
        if ref_value is None:
            raise ProvenanceError(
                f"cannot evaluate {self!r}: no ref_value supplied "
                "(expression is part of an equation system)"
            )
        return ref_value(self.token)

    def refs(self) -> frozenset[Token]:
        return frozenset({self.token})

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.row)
        return f"Pv[{self.relation}({inner})]"


@dataclass(frozen=True)
class Sum(ProvenanceExpression):
    """Alternative derivations: ``a + b``."""

    args: tuple[ProvenanceExpression, ...]

    def evaluate(self, semiring, token_value, ref_value=None, mapping_value=None):
        return semiring.sum(
            arg.evaluate(semiring, token_value, ref_value, mapping_value)
            for arg in self.args
        )

    def tokens(self) -> frozenset[Token]:
        return frozenset().union(*(a.tokens() for a in self.args))

    def refs(self) -> frozenset[Token]:
        return frozenset().union(*(a.refs() for a in self.args))

    def mapping_names(self) -> frozenset[str]:
        return frozenset().union(*(a.mapping_names() for a in self.args))

    def __repr__(self) -> str:
        return " + ".join(repr(a) for a in self.args)


@dataclass(frozen=True)
class Product(ProvenanceExpression):
    """Joint derivation through a join: ``a . b``."""

    args: tuple[ProvenanceExpression, ...]

    def evaluate(self, semiring, token_value, ref_value=None, mapping_value=None):
        return semiring.product(
            arg.evaluate(semiring, token_value, ref_value, mapping_value)
            for arg in self.args
        )

    def tokens(self) -> frozenset[Token]:
        return frozenset().union(*(a.tokens() for a in self.args))

    def refs(self) -> frozenset[Token]:
        return frozenset().union(*(a.refs() for a in self.args))

    def mapping_names(self) -> frozenset[str]:
        return frozenset().union(*(a.mapping_names() for a in self.args))

    def __repr__(self) -> str:
        parts = []
        for arg in self.args:
            text = repr(arg)
            if isinstance(arg, Sum):
                text = f"({text})"
            parts.append(text)
        return " * ".join(parts)


@dataclass(frozen=True)
class MappingApp(ProvenanceExpression):
    """Application of a mapping's unary function: ``m1(p3)``."""

    mapping: str
    arg: ProvenanceExpression

    def evaluate(self, semiring, token_value, ref_value=None, mapping_value=None):
        inner = self.arg.evaluate(semiring, token_value, ref_value, mapping_value)
        if mapping_value is not None:
            return mapping_value(self.mapping, inner)
        return semiring.map_apply(self.mapping, inner)

    def tokens(self) -> frozenset[Token]:
        return self.arg.tokens()

    def refs(self) -> frozenset[Token]:
        return self.arg.refs()

    def mapping_names(self) -> frozenset[str]:
        return self.arg.mapping_names() | {self.mapping}

    def __repr__(self) -> str:
        return f"{self.mapping}({self.arg!r})"


# ---------------------------------------------------------------------------
# Normalizing constructors
# ---------------------------------------------------------------------------


def _expr_sort_key(expr: ProvenanceExpression) -> str:
    return repr(expr)


def sum_of(args: Iterable[ProvenanceExpression]) -> ProvenanceExpression:
    """Build a normalized sum: flattened, zeros dropped, args deduplicated
    and sorted.  (Deduplication is sound for the idempotent semirings used
    for trust; the counting semiring consumers build expressions without
    duplicate summands by construction.)"""
    flat: list[ProvenanceExpression] = []
    for arg in args:
        if isinstance(arg, Sum):
            flat.extend(arg.args)
        elif isinstance(arg, Zero):
            continue
        else:
            flat.append(arg)
    unique = sorted(set(flat), key=_expr_sort_key)
    if not unique:
        return ZERO
    if len(unique) == 1:
        return unique[0]
    return Sum(tuple(unique))


def product_of(args: Iterable[ProvenanceExpression]) -> ProvenanceExpression:
    """Build a normalized product: flattened, ones dropped, zero-annihilated,
    args sorted (commutativity)."""
    flat: list[ProvenanceExpression] = []
    for arg in args:
        if isinstance(arg, Product):
            flat.extend(arg.args)
        elif isinstance(arg, One):
            continue
        elif isinstance(arg, Zero):
            return ZERO
        else:
            flat.append(arg)
    if not flat:
        return ONE
    if len(flat) == 1:
        return flat[0]
    return Product(tuple(sorted(flat, key=_expr_sort_key)))


def token(relation: str, row: Sequence[object]) -> TokenLeaf:
    return TokenLeaf(relation, tuple(row))


def ref(relation: str, row: Sequence[object]) -> TupleRef:
    return TupleRef(relation, tuple(row))


def mapping_app(mapping: str, arg: ProvenanceExpression) -> ProvenanceExpression:
    if isinstance(arg, Zero):
        return ZERO
    return MappingApp(mapping, arg)


# ---------------------------------------------------------------------------
# Equation systems
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EquationSystem:
    """``Pv(t) = expression`` for every tuple ``t`` in the system.

    The solution in an omega-continuous semiring is the least fixpoint of
    jointly iterating the equations from zero — computed by :meth:`solve`.
    """

    equations: Mapping[Token, ProvenanceExpression]

    def solve(
        self,
        semiring: Semiring,
        token_value: Callable[[Token], object],
        mapping_value: Callable[[str, object], object] | None = None,
        max_rounds: int = 10_000,
    ) -> dict[Token, object]:
        """Least-fixpoint solution by Kleene iteration.

        Raises :class:`ProvenanceError` if no fixpoint is reached within
        ``max_rounds`` (possible only for non-omega-continuous semirings).
        """
        values: dict[Token, object] = {
            key: semiring.zero for key in self.equations
        }
        for _ in range(max_rounds):
            changed = False
            for key, expr in self.equations.items():
                new = expr.evaluate(
                    semiring,
                    token_value,
                    ref_value=lambda tok: values.get(tok, semiring.zero),
                    mapping_value=mapping_value,
                )
                if new != values[key]:
                    values[key] = new
                    changed = True
            if not changed:
                return values
        raise ProvenanceError(
            f"equation system did not converge within {max_rounds} rounds "
            f"in {semiring!r}"
        )

    def expand(self, start: Token, max_depth: int = 8) -> ProvenanceExpression:
        """Unfold the equations from ``start`` into a (depth-bounded)
        expression over tokens only.

        References still present at the depth bound evaluate as zero when the
        result is evaluated — i.e. the expansion enumerates all derivation
        trees of depth <= ``max_depth``, a finite approximation of the
        paper's formal power series.
        """

        def unfold(expr: ProvenanceExpression, depth: int) -> ProvenanceExpression:
            if isinstance(expr, TupleRef):
                if depth <= 0:
                    return ZERO
                target = self.equations.get(expr.token)
                if target is None:
                    return ZERO
                return unfold(target, depth - 1)
            if isinstance(expr, Sum):
                return sum_of(unfold(a, depth) for a in expr.args)
            if isinstance(expr, Product):
                return product_of(unfold(a, depth) for a in expr.args)
            if isinstance(expr, MappingApp):
                return mapping_app(expr.mapping, unfold(expr.arg, depth))
            return expr

        root = self.equations.get(start)
        if root is None:
            return ZERO
        return unfold(root, max_depth)
