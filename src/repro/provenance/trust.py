"""Trust conditions and policies (Sections 2.2 and 3.3).

Each peer annotates

* every schema mapping ``mi`` with a *trust condition* ``Theta_i`` — a
  predicate over the values of the tuple the mapping derives, and
* base data with token-level judgments (``T`` / ``D``): distrust of specific
  tuples or of everything a peer contributes.

A derived tuple is trusted iff *some* derivation uses only trusted base
tuples and satisfies the trust conditions along every mapping — exactly the
boolean-semiring evaluation of its provenance expression (Section 3.3), with
``.`` as AND, ``+`` as OR and each mapping application ANDing in its
condition.

Trust is enforced in two complementary ways, matching the paper:

* **during update exchange** — conditions become head filters on the
  per-mapping (iR) trust rules, so untrusted tuples never reach ``R__t``
  and therefore never propagate downstream ("we simply apply the associated
  trust conditions to ensure that we only derive new trusted tuples",
  Section 4.2); and
* **offline over stored provenance** — :func:`evaluate_trust` replays any
  policy against the provenance graph (Example 7's calculation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..schema.internal import InternalSchema
from ..schema.relation import RelationSchema
from ..storage.instance import Row
from .graph import MappingNode, ProvenanceGraph
from .relations import ProvenanceEncoding
from .semiring import BooleanSemiring, Token


@dataclass(frozen=True)
class TrustCondition:
    """A predicate over the values of a derived tuple."""

    description: str
    predicate: Callable[[Row], bool] = field(compare=False)

    def __call__(self, row: Row) -> bool:
        return bool(self.predicate(row))

    @classmethod
    def always(cls) -> "TrustCondition":
        return TRUST_ALL

    @classmethod
    def never(cls) -> "TrustCondition":
        return DISTRUST_ALL

    @classmethod
    def from_attributes(
        cls,
        schema: RelationSchema,
        predicate: Callable[[dict[str, object]], bool],
        description: str | None = None,
    ) -> "TrustCondition":
        """Build a condition whose predicate sees an attribute-name dict."""

        def over_row(row: Row) -> bool:
            return bool(predicate(dict(zip(schema.attributes, row))))

        return cls(
            description or f"condition over {schema.name}", over_row
        )

    def conjoin(self, other: "TrustCondition") -> "TrustCondition":
        if self is TRUST_ALL:
            return other
        if other is TRUST_ALL:
            return self
        return TrustCondition(
            f"({self.description}) and ({other.description})",
            lambda row: self(row) and other(row),
        )

    def __repr__(self) -> str:
        return f"<TrustCondition: {self.description}>"


TRUST_ALL = TrustCondition("trust everything", lambda _row: True)
DISTRUST_ALL = TrustCondition("distrust everything", lambda _row: False)


@dataclass
class TrustPolicy:
    """One peer's trust policy.

    ``mapping_conditions`` maps a mapping name to the condition this peer
    imposes on tuples derived through that mapping (missing = trivially
    trusted).  ``distrusted_tokens`` and ``distrusted_peers`` assign ``D`` to
    base data; everything else is ``T`` by default, matching Section 3.3's
    per-tuple T/D annotation.
    """

    peer: str
    mapping_conditions: dict[str, TrustCondition] = field(default_factory=dict)
    distrusted_tokens: set[Token] = field(default_factory=set)
    distrusted_peers: set[str] = field(default_factory=set)

    # -- construction helpers ------------------------------------------------

    def set_mapping_condition(
        self, mapping: str, condition: TrustCondition
    ) -> "TrustPolicy":
        existing = self.mapping_conditions.get(mapping)
        self.mapping_conditions[mapping] = (
            condition if existing is None else existing.conjoin(condition)
        )
        return self

    def distrust_token(self, relation: str, row: Iterable[object]) -> "TrustPolicy":
        self.distrusted_tokens.add((relation, tuple(row)))
        return self

    def distrust_peer(self, peer: str) -> "TrustPolicy":
        self.distrusted_peers.add(peer)
        return self

    # -- evaluation -------------------------------------------------------------

    def condition_for(self, mapping: str) -> TrustCondition:
        return self.mapping_conditions.get(mapping, TRUST_ALL)

    def trusts_token(
        self, token: Token, owner_of: Mapping[str, str] | None = None
    ) -> bool:
        if token in self.distrusted_tokens:
            return False
        if owner_of is not None and self.distrusted_peers:
            owner = owner_of.get(token[0])
            if owner is not None and owner in self.distrusted_peers:
                return False
        return True

    def is_trivial(self) -> bool:
        return (
            not self.mapping_conditions
            and not self.distrusted_tokens
            and not self.distrusted_peers
        )


def compose_conditions(
    policies: Iterable[TrustPolicy], mapping: str
) -> TrustCondition:
    """AND together the conditions several peers place on one mapping.

    Section 3.3: "the trust conditions specified by a given peer are
    combined (ANDed) with the additional trust conditions specified by
    anyone mapping data from that peer".
    """
    combined = TRUST_ALL
    for policy in policies:
        combined = combined.conjoin(policy.condition_for(mapping))
    return combined


def exchange_head_filters(
    internal: InternalSchema,
    encoding: ProvenanceEncoding,
    policies: Mapping[str, TrustPolicy],
    perspective: str | None = None,
) -> dict[str, Callable[[Row], bool]]:
    """Head filters (keyed by rule label) enforcing trust during exchange.

    For each mapping head deriving relation ``R`` of peer ``P``, the filter
    on the (iR) trust rule is ``P``'s condition for that mapping — ANDed
    with the perspective peer's condition when a perspective is given
    (computing *that peer's copy* of the instances, Section 4).  With a
    perspective, token-level distrust filters the (lR) local-contribution
    rules as well.
    """
    filters: dict[str, Callable[[Row], bool]] = {}
    perspective_policy = (
        policies.get(perspective) if perspective is not None else None
    )
    for table, head in encoding.iter_heads():
        target_peer = internal.peer_of_relation(head.user_relation)
        condition = TRUST_ALL
        target_policy = policies.get(target_peer)
        if target_policy is not None:
            condition = condition.conjoin(
                target_policy.condition_for(table.mapping)
            )
        if perspective_policy is not None and perspective_policy is not target_policy:
            condition = condition.conjoin(
                perspective_policy.condition_for(table.mapping)
            )
        if condition is not TRUST_ALL:
            filters[head.trust_label] = condition
    if perspective_policy is not None and (
        perspective_policy.distrusted_tokens
        or perspective_policy.distrusted_peers
    ):
        from ..schema.internal import LOCAL_RULE_PREFIX

        for relation in internal.relation_names():
            owner_of = internal.owner_of

            def token_filter(
                row: Row, _relation: str = relation
            ) -> bool:
                return perspective_policy.trusts_token(
                    (_relation, row), owner_of
                )

            filters[LOCAL_RULE_PREFIX + relation] = token_filter
    return filters


def evaluate_trust(
    graph: ProvenanceGraph,
    policy: TrustPolicy,
    internal: InternalSchema | None = None,
    extra_policies: Mapping[str, TrustPolicy] | None = None,
) -> dict[Token, bool]:
    """Evaluate a policy against stored provenance (Example 7).

    Returns the T/D verdict for every tuple node of the graph under
    ``policy``: boolean-semiring evaluation where base tokens get the
    policy's T/D assignment and each mapping application ANDs in the
    applicable conditions (the evaluating peer's own, plus — when
    ``extra_policies`` is given — the condition of the mapping target's
    owner, realizing the delegation/composition rule of Section 3.3).
    """
    semiring = BooleanSemiring()
    owner_of = internal.owner_of if internal is not None else None

    def token_value(token: Token) -> bool:
        return policy.trusts_token(token, owner_of)

    def node_value(node: MappingNode, target: Token, inner: object) -> bool:
        if not inner:
            return False
        target_row = target[1]
        if not policy.condition_for(node.mapping)(target_row):
            return False
        if extra_policies is not None and internal is not None:
            owner = internal.peer_of_relation(target[0])
            owner_policy = extra_policies.get(owner)
            if owner_policy is not None and owner_policy is not policy:
                if not owner_policy.condition_for(node.mapping)(target_row):
                    return False
        return True

    return graph.evaluate_with_conditions(semiring, token_value, node_value)


def trust_ranks(
    graph: ProvenanceGraph,
    token_costs: Callable[[Token], float] | None = None,
    mapping_costs: Mapping[str, float] | None = None,
) -> dict[Token, float]:
    """Ranked trust (the Section 8 extension): cheapest-derivation cost of
    every tuple in the weighted tropical semiring.

    ``token_costs`` assigns a cost to each base token (default 0.0 —
    fully trusted); ``mapping_costs`` adds a cost per mapping traversal.
    Lower is more trusted; unreachable tuples get ``inf``.
    """
    from .semiring import WeightedTropicalSemiring

    semiring = WeightedTropicalSemiring(dict(mapping_costs or {}))
    if token_costs is None:
        token_costs = lambda _tok: 0.0  # noqa: E731
    return graph.evaluate(
        semiring,
        token_value=token_costs,
    )
