"""Direct semiring-annotated datalog evaluation (the [16] framework).

The relational provenance encoding of Section 4.1.2 stores derivations in
ordinary tables and reconstructs annotations afterwards.  The theoretical
foundation — Green, Karvounarakis, Tannen, *Provenance Semirings*
(PODS 2007), the paper's [16] — instead evaluates datalog **directly over
K-relations**: every tuple carries an annotation from a semiring K, joins
multiply annotations, unions/projections add them, and the program's
semantics is the least fixpoint of the annotation equations.

This module implements that evaluation for the Skolemized mapping rules, so
the reproduction contains both routes to the same semantics; the test suite
checks they agree (annotated evaluation == relational encoding + graph
evaluation) on the paper's example and on random workloads.

For omega-continuous semirings the fixpoint exists; for cyclic programs in
non-idempotent semirings convergence relies on the semiring's own
saturation (see :class:`~repro.provenance.semiring.CountingSemiring`) and a
round bound guards against genuinely divergent choices.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from ..datalog.ast import Atom, Rule, instantiate_atom, match_atom
from ..storage.instance import Row
from .expression import (
    ONE,
    ZERO,
    ProvenanceError,
    ProvenanceExpression,
    mapping_app,
    product_of,
    sum_of,
)
from .semiring import Semiring

Annotations = dict[str, dict[Row, object]]
"""relation name -> row -> annotation (zero-annotated rows are absent)."""


class ExpressionSemiring(Semiring):
    """The free semiring of provenance expressions (Section 3.2).

    Values are normalized :class:`ProvenanceExpression` trees; ``plus``
    collects alternative derivations, ``times`` joins, and mapping
    applications stay symbolic.  Because expressions normalize on
    construction (flattening, 0/1-simplification, sorted arguments),
    fixpoint detection by equality works — this is what the query
    subsystem's ``annotated`` answer mode evaluates in by default.
    """

    name = "expression"

    @property
    def zero(self) -> ProvenanceExpression:
        return ZERO

    @property
    def one(self) -> ProvenanceExpression:
        return ONE

    def plus(
        self, a: ProvenanceExpression, b: ProvenanceExpression
    ) -> ProvenanceExpression:
        return sum_of((a, b))

    def times(
        self, a: ProvenanceExpression, b: ProvenanceExpression
    ) -> ProvenanceExpression:
        return product_of((a, b))

    def map_apply(
        self, mapping_name: str, value: ProvenanceExpression
    ) -> ProvenanceExpression:
        return mapping_app(mapping_name, value)


class AnnotatedDatabase:
    """A set of K-relations: rows annotated with semiring values."""

    def __init__(self, semiring: Semiring) -> None:
        self.semiring = semiring
        self._relations: Annotations = {}

    def annotate(self, relation: str, row: Iterable[object], value: object) -> None:
        """Add ``value`` (semiring-plus) to a row's annotation."""
        row = tuple(row)
        table = self._relations.setdefault(relation, {})
        current = table.get(row, self.semiring.zero)
        table[row] = self.semiring.plus(current, value)

    def set_annotation(
        self, relation: str, row: Iterable[object], value: object
    ) -> None:
        self._relations.setdefault(relation, {})[tuple(row)] = value

    def annotation(self, relation: str, row: Iterable[object]) -> object:
        return self._relations.get(relation, {}).get(
            tuple(row), self.semiring.zero
        )

    def rows(self, relation: str) -> dict[Row, object]:
        return dict(self._relations.get(relation, {}))

    def support(self, relation: str) -> tuple[Row, ...]:
        """Rows with a non-zero annotation."""
        zero = self.semiring.zero
        return tuple(
            row
            for row, value in self._relations.get(relation, {}).items()
            if value != zero
        )

    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def copy_annotations(self) -> Annotations:
        return {
            name: dict(rows) for name, rows in self._relations.items()
        }

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}({len(rows)})"
            for name, rows in sorted(self._relations.items())
        )
        return f"<AnnotatedDatabase[{self.semiring.name}]: {inner}>"


def _rule_contributions(
    rule: Rule, db: AnnotatedDatabase
) -> Iterable[tuple[Row, object]]:
    """All (head row, annotation contribution) pairs for one rule, under
    the *current* annotations (one product per body instantiation)."""
    if any(atom.negated for atom in rule.body):
        raise ProvenanceError(
            "annotated evaluation is defined for positive programs only "
            f"(negated atom in {rule!r})"
        )
    semiring = db.semiring
    partials: list[tuple[dict, object]] = [({}, semiring.one)]
    for atom in rule.body:
        extended: list[tuple[dict, object]] = []
        for subst, value in partials:
            for row in db.support(atom.predicate):
                matched = match_atom(atom, row, subst)
                if matched is not None:
                    extended.append(
                        (
                            matched,
                            semiring.times(
                                value, db.annotation(atom.predicate, row)
                            ),
                        )
                    )
        partials = extended
        if not partials:
            return
    for subst, value in partials:
        yield instantiate_atom(rule.head, subst), value


def annotated_fixpoint(
    rules: Iterable[Rule],
    base: Mapping[str, Mapping[Row, object]],
    semiring: Semiring,
    mapping_value: Callable[[str, object], object] | None = None,
    max_rounds: int = 10_000,
) -> AnnotatedDatabase:
    """Least-fixpoint annotated evaluation of a positive program.

    ``base`` gives the edb annotations; each rule's contribution is wrapped
    with the rule label's mapping function (``mapping_value`` defaults to
    ``semiring.map_apply``), matching the provenance-expression semantics
    of Section 3.2.  IDB annotations are recomputed from scratch each round
    (Kleene iteration), so non-idempotent semirings are handled correctly.
    """
    rules = tuple(rules)
    if mapping_value is None:
        mapping_value = semiring.map_apply

    def build_round(previous: AnnotatedDatabase) -> AnnotatedDatabase:
        current = AnnotatedDatabase(semiring)
        for relation, contents in base.items():
            for row, value in contents.items():
                current.annotate(relation, row, value)
        for rule in rules:
            for head_row, value in _rule_contributions(rule, previous):
                if rule.label is not None:
                    value = mapping_value(rule.label, value)
                current.annotate(rule.head.predicate, head_row, value)
        return current

    state = AnnotatedDatabase(semiring)
    for relation, contents in base.items():
        for row, value in contents.items():
            state.annotate(relation, row, value)
    for _ in range(max_rounds):
        next_state = build_round(state)
        if next_state.copy_annotations() == state.copy_annotations():
            return next_state
        state = next_state
    raise ProvenanceError(
        f"annotated evaluation did not converge within {max_rounds} rounds "
        f"in {semiring!r}"
    )


def annotate_mappings(
    mappings: Iterable,
    base: Mapping[str, Mapping[Row, object]],
    semiring: Semiring,
    mapping_value: Callable[[str, object], object] | None = None,
) -> AnnotatedDatabase:
    """Annotated evaluation of a set of schema mappings over user relations.

    ``mappings`` are :class:`~repro.schema.tgd.SchemaMapping` objects; their
    Skolemized rules run over the user-level relation names directly (no
    internal schema, no rejections — this is the pure data-exchange reading
    used for cross-checking the relational encoding).
    """
    rules: list[Rule] = []
    for mapping in mappings:
        rules.extend(mapping.to_rules())
    return annotated_fixpoint(rules, base, semiring, mapping_value)
