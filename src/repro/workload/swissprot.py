"""Synthetic SWISS-PROT-like universal relation (Section 6.1).

The paper's workload generator "takes as input a single universal relation
based on the SWISS-PROT protein database, which has 25 attributes"; tuples
carry "many large strings".  SWISS-PROT itself is a licensed download, so we
synthesize a faithful stand-in: a deterministic generator of 25-attribute
entries whose string fields have SWISS-PROT-like shapes and sizes
(accessions, organism names, keyword lists, long sequence fragments), plus
the paper's "integer" variant where every string is replaced by a stable
integer hash ("we also experimented with the impact of smaller tuples").

Determinism: all data derives from a seeded :class:`random.Random`, so every
experiment is reproducible run-to-run.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Iterator

#: The 25 attributes of the universal relation.  Column 0 is the entry key
#: ("a shared key attribute to preserve losslessness" is added separately by
#: the config generator when partitioning).
SWISSPROT_ATTRIBUTES: tuple[str, ...] = (
    "accession",
    "entry_name",
    "protein_name",
    "gene_name",
    "organism",
    "taxonomy_id",
    "lineage",
    "sequence_length",
    "sequence_mass",
    "sequence_fragment",
    "keywords",
    "feature_table",
    "ec_number",
    "subcellular_location",
    "tissue_specificity",
    "function_comment",
    "catalytic_activity",
    "pathway",
    "interaction",
    "disease",
    "ptm",
    "similarity",
    "created_date",
    "modified_date",
    "evidence_level",
)

ARITY = len(SWISSPROT_ATTRIBUTES)

_AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"
_ORGANISMS = (
    "Homo sapiens",
    "Mus musculus",
    "Saccharomyces cerevisiae",
    "Escherichia coli",
    "Drosophila melanogaster",
    "Arabidopsis thaliana",
    "Caenorhabditis elegans",
    "Rattus norvegicus",
    "Danio rerio",
    "Plasmodium falciparum",
)
_KEYWORDS = (
    "ATP-binding",
    "Cytoplasm",
    "Glycoprotein",
    "Hydrolase",
    "Kinase",
    "Membrane",
    "Metal-binding",
    "Nucleus",
    "Phosphoprotein",
    "Receptor",
    "Repeat",
    "Signal",
    "Transferase",
    "Transmembrane",
    "Zinc-finger",
)
_LOCATIONS = (
    "Cytoplasm",
    "Nucleus",
    "Membrane; Single-pass membrane protein",
    "Secreted",
    "Mitochondrion matrix",
    "Endoplasmic reticulum membrane",
)
_WORDS = (
    "catalyzes",
    "the",
    "reversible",
    "phosphorylation",
    "of",
    "protein",
    "substrates",
    "involved",
    "in",
    "signal",
    "transduction",
    "and",
    "regulation",
    "cell",
    "cycle",
    "progression",
    "required",
    "for",
    "assembly",
    "complex",
    "binding",
    "domain",
    "mediates",
    "interaction",
    "with",
    "membrane",
    "transport",
)


def _sentence(rng: random.Random, words: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(words)).capitalize() + "."


@dataclass(frozen=True)
class SwissProtEntry:
    """One universal-relation entry, exposed as a 25-tuple of strings."""

    values: tuple[str, ...]

    def as_row(self) -> tuple[str, ...]:
        return self.values

    def as_integer_row(self) -> tuple[int, ...]:
        return tuple(string_hash(value) for value in self.values)

    def __getitem__(self, index: int) -> str:
        return self.values[index]


def string_hash(value: str) -> int:
    """A stable 32-bit hash used for the "integer" dataset variant."""
    return zlib.crc32(value.encode("utf-8"))


class SwissProtGenerator:
    """Deterministic generator of synthetic SWISS-PROT entries."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def entry(self, index: int) -> SwissProtEntry:
        """The ``index``-th entry (deterministic in ``(seed, index)``)."""
        rng = random.Random((self._seed << 32) ^ index)
        organism = rng.choice(_ORGANISMS)
        gene = "".join(rng.choice("ABCDEFGHKLMNPRST") for _ in range(4))
        seq_len = rng.randint(80, 600)
        fragment_len = rng.randint(60, 240)
        values = (
            f"P{index:05d}{rng.randint(0, 9)}",
            f"{gene}_{organism.split()[0][:5].upper()}",
            f"{_sentence(rng, 4)[:-1]} {rng.randint(1, 12)}",
            f"{gene}{rng.randint(1, 9)}",
            organism,
            str(9600 + _ORGANISMS.index(organism)),
            " > ".join(
                rng.sample(
                    ("Eukaryota", "Metazoa", "Chordata", "Mammalia",
                     "Fungi", "Bacteria", "Viridiplantae", "Nematoda"),
                    3,
                )
            ),
            str(seq_len),
            str(seq_len * 110 + rng.randint(-500, 500)),
            "".join(rng.choice(_AMINO_ACIDS) for _ in range(fragment_len)),
            "; ".join(rng.sample(_KEYWORDS, rng.randint(3, 7))),
            "; ".join(
                f"{rng.choice(('DOMAIN', 'ACT_SITE', 'BINDING', 'HELIX'))} "
                f"{rng.randint(1, seq_len)}..{rng.randint(1, seq_len)}"
                for _ in range(rng.randint(2, 6))
            ),
            f"{rng.randint(1, 6)}.{rng.randint(1, 20)}."
            f"{rng.randint(1, 20)}.{rng.randint(1, 99)}",
            rng.choice(_LOCATIONS),
            _sentence(rng, rng.randint(5, 12)),
            _sentence(rng, rng.randint(10, 30)),
            _sentence(rng, rng.randint(8, 18)),
            _sentence(rng, rng.randint(4, 10)),
            f"Interacts with {gene}{rng.randint(1, 9)} and "
            f"{rng.choice('QRSTUVWXYZ')}{rng.randint(10, 99)}",
            _sentence(rng, rng.randint(6, 16)),
            _sentence(rng, rng.randint(4, 12)),
            f"Belongs to the {rng.choice(_WORDS)} family",
            f"{rng.randint(1990, 2007)}-{rng.randint(1, 12):02d}-"
            f"{rng.randint(1, 28):02d}",
            f"{rng.randint(1990, 2007)}-{rng.randint(1, 12):02d}-"
            f"{rng.randint(1, 28):02d}",
            str(rng.randint(1, 5)),
        )
        if len(values) != ARITY:  # stays in force under ``python -O``
            raise ValueError(
                f"generated entry has {len(values)} attributes, "
                f"expected {ARITY}"
            )
        return SwissProtEntry(values)

    def entries(self, count: int, start: int = 0) -> Iterator[SwissProtEntry]:
        for index in range(start, start + count):
            yield self.entry(index)
