"""Synthetic SWISS-PROT-based workload generation (paper Section 6.1)."""

from .generator import (
    CDSSWorkloadGenerator,
    DATASET_INTEGER,
    DATASET_STRING,
    EntryUpdate,
    PeerLayout,
    TOPOLOGY_CHAIN,
    TOPOLOGY_PAIRS,
    WorkloadConfig,
    zipf_choice,
)
from .swissprot import (
    ARITY,
    SWISSPROT_ATTRIBUTES,
    SwissProtEntry,
    SwissProtGenerator,
    string_hash,
)

__all__ = [
    "ARITY",
    "CDSSWorkloadGenerator",
    "DATASET_INTEGER",
    "DATASET_STRING",
    "EntryUpdate",
    "PeerLayout",
    "SWISSPROT_ATTRIBUTES",
    "SwissProtEntry",
    "SwissProtGenerator",
    "TOPOLOGY_CHAIN",
    "TOPOLOGY_PAIRS",
    "WorkloadConfig",
    "string_hash",
    "zipf_choice",
]
