"""Synthetic CDSS configuration + update workload generator (Section 6.1).

Reproduces the paper's generator:

* a single universal relation (synthetic SWISS-PROT, 25 attributes);
* per peer, a number of relations drawn with **Zipfian skew** from an input
  maximum; a set of attributes, **partitioned** across those relations; and
  a **shared key attribute** added to every relation "to preserve
  losslessness";
* **mappings** between peers: "a mapping source is the join of all relations
  at a peer, and the target is the join of all relations with these
  attributes in the target peer" — attributes the target has but the source
  lacks become existential variables;
* **insertions** sample fresh SWISS-PROT entries "generating a new key by
  which the partitions may be rejoined"; **deletions** sample among the
  insertions;
* the **string** dataset keeps the large SWISS-PROT strings; the
  **integer** dataset replaces each string with a stable hash.

Topologies: ``chain`` (the n-1-mapping scale-up layout of Section 6.4) and
``pairs`` (bidirectional chain ≈ "2 neighbors each", Section 6.5), plus
``extra_cycles`` back-edges for the Figure 10 experiment.  With
``uniform_attributes=True`` (default) every peer draws the same attribute
set, making all mappings *full* tgds (no existentials) — the "full mappings"
setting of Figure 4; set it False to exercise labeled nulls.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.cdss import CDSS
from ..datalog.ast import Atom, Variable
from ..schema.relation import PeerSchema, RelationSchema
from ..schema.tgd import SchemaMapping
from .swissprot import ARITY, SWISSPROT_ATTRIBUTES, SwissProtGenerator, string_hash

DATASET_STRING = "string"
DATASET_INTEGER = "integer"

TOPOLOGY_CHAIN = "chain"
TOPOLOGY_PAIRS = "pairs"


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one synthetic CDSS configuration."""

    peers: int = 5
    max_relations_per_peer: int = 3
    attributes_per_peer: int = 8
    dataset: str = DATASET_STRING
    topology: str = TOPOLOGY_CHAIN
    extra_cycles: int = 0
    uniform_attributes: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.peers < 1:
            raise ValueError("need at least one peer")
        if not 1 <= self.attributes_per_peer <= ARITY:
            raise ValueError(
                f"attributes_per_peer must be in 1..{ARITY}"
            )
        if self.dataset not in (DATASET_STRING, DATASET_INTEGER):
            raise ValueError(f"unknown dataset {self.dataset!r}")
        if self.topology not in (TOPOLOGY_CHAIN, TOPOLOGY_PAIRS):
            raise ValueError(f"unknown topology {self.topology!r}")


def zipf_choice(rng: random.Random, maximum: int, skew: float = 1.5) -> int:
    """Draw from {1..maximum} with Zipfian weights 1/k**skew."""
    weights = [1.0 / (k**skew) for k in range(1, maximum + 1)]
    return rng.choices(range(1, maximum + 1), weights=weights, k=1)[0]


@dataclass
class PeerLayout:
    """How one peer partitions its attribute subset into relations."""

    name: str
    attribute_indices: tuple[int, ...]  # into SWISSPROT_ATTRIBUTES
    partitions: tuple[tuple[int, ...], ...]  # one per relation

    def relation_name(self, part: int) -> str:
        return f"{self.name}_R{part}"

    def relation_schemas(self) -> tuple[RelationSchema, ...]:
        return tuple(
            RelationSchema(
                self.relation_name(part),
                ("entry_key",)
                + tuple(SWISSPROT_ATTRIBUTES[i] for i in partition),
            )
            for part, partition in enumerate(self.partitions)
        )


@dataclass
class EntryUpdate:
    """One universal-relation entry normalized into a peer's relations."""

    peer: str
    key: object
    rows: dict[str, tuple[object, ...]] = field(default_factory=dict)


class CDSSWorkloadGenerator:
    """Builds CDSS configurations and update streams per the paper's §6.1."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._swissprot = SwissProtGenerator(seed=config.seed)
        self.layouts: list[PeerLayout] = []
        self._build_layouts()
        self.mappings: list[SchemaMapping] = []
        self._build_mappings()
        self._next_entry_index = 0
        self.inserted_entries: dict[str, list[EntryUpdate]] = {
            layout.name: [] for layout in self.layouts
        }

    # -- layout ------------------------------------------------------------

    def _build_layouts(self) -> None:
        config = self.config
        uniform_attrs: tuple[int, ...] | None = None
        if config.uniform_attributes:
            uniform_attrs = tuple(
                sorted(
                    self._rng.sample(range(ARITY), config.attributes_per_peer)
                )
            )
        for index in range(config.peers):
            name = f"peer{index}"
            if uniform_attrs is not None:
                attrs = uniform_attrs
            else:
                attrs = tuple(
                    sorted(
                        self._rng.sample(
                            range(ARITY), config.attributes_per_peer
                        )
                    )
                )
            relations = zipf_choice(self._rng, config.max_relations_per_peer)
            relations = min(relations, len(attrs))
            shuffled = list(attrs)
            self._rng.shuffle(shuffled)
            partitions: list[list[int]] = [[] for _ in range(relations)]
            for position, attr in enumerate(shuffled):
                partitions[position % relations].append(attr)
            self.layouts.append(
                PeerLayout(
                    name=name,
                    attribute_indices=attrs,
                    partitions=tuple(
                        tuple(sorted(p)) for p in partitions
                    ),
                )
            )

    def peer_schemas(self) -> tuple[PeerSchema, ...]:
        return tuple(
            PeerSchema(layout.name, layout.relation_schemas())
            for layout in self.layouts
        )

    # -- mappings ------------------------------------------------------------

    def _edges(self) -> list[tuple[int, int]]:
        n = self.config.peers
        edges: list[tuple[int, int]] = []
        if n > 1:
            for i in range(n - 1):
                edges.append((i, i + 1))
            if self.config.topology == TOPOLOGY_PAIRS:
                for i in range(n - 1):
                    edges.append((i + 1, i))
        # Figure 10's "manually added cycles": back-edges to peer 0.  With
        # the pairs topology the immediate back-edge (1, 0) already exists,
        # so added cycles start from peer 2 there.
        start = 2 if self.config.topology == TOPOLOGY_PAIRS else 1
        for cycle in range(self.config.extra_cycles):
            if n <= start:
                break
            source = start + cycle % (n - start)
            edge = (source, 0)
            if edge not in edges:
                edges.append(edge)
        return edges

    def _build_mappings(self) -> None:
        for number, (src, dst) in enumerate(self._edges()):
            self.mappings.append(
                self._mapping_between(number, self.layouts[src], self.layouts[dst])
            )

    def _mapping_between(
        self, number: int, source: PeerLayout, target: PeerLayout
    ) -> SchemaMapping:
        """LHS: join of all source relations on the key; RHS: all target
        relations, sharing variables on common attributes."""
        key_var = Variable("k")
        source_attrs = set(source.attribute_indices)

        def var_for(attr_index: int) -> Variable:
            return Variable(f"a{attr_index}")

        lhs = tuple(
            Atom(
                source.relation_name(part),
                (key_var,) + tuple(var_for(a) for a in partition),
            )
            for part, partition in enumerate(source.partitions)
        )
        existentials: set[Variable] = set()
        rhs_atoms: list[Atom] = []
        for part, partition in enumerate(target.partitions):
            terms: list[Variable] = [key_var]
            for attr in partition:
                if attr in source_attrs:
                    terms.append(var_for(attr))
                else:
                    evar = Variable(f"e{attr}")
                    existentials.add(evar)
                    terms.append(evar)
            rhs_atoms.append(
                Atom(target.relation_name(part), tuple(terms))
            )
        return SchemaMapping(
            name=f"m{number}_{source.name}_to_{target.name}",
            lhs=lhs,
            rhs=tuple(rhs_atoms),
            existential_vars=frozenset(existentials),
        )

    # -- CDSS assembly ------------------------------------------------------------

    def build_cdss(self, **cdss_kwargs: object) -> CDSS:
        """A fully configured (but empty) CDSS for this workload."""
        cdss = CDSS(name=f"workload-{self.config.seed}", **cdss_kwargs)  # type: ignore[arg-type]
        for layout in self.layouts:
            cdss.add_peer(
                layout.name,
                layout.relation_schemas(),
            )
        for mapping in self.mappings:
            cdss.add_mapping(mapping.name, mapping)
        return cdss

    # -- update streams ---------------------------------------------------------------

    def _value(self, entry, attr_index: int) -> object:
        raw = entry[attr_index]
        if self.config.dataset == DATASET_INTEGER:
            return string_hash(raw)
        return raw

    def fresh_entry(self, layout: PeerLayout) -> EntryUpdate:
        """Normalize the next fresh SWISS-PROT entry into ``layout``'s
        relations under a brand-new shared key."""
        index = self._next_entry_index
        self._next_entry_index += 1
        entry = self._swissprot.entry(index)
        key: object = f"{layout.name}:{index}"
        if self.config.dataset == DATASET_INTEGER:
            key = string_hash(str(key))
        update = EntryUpdate(peer=layout.name, key=key)
        for part, partition in enumerate(layout.partitions):
            update.rows[layout.relation_name(part)] = (key,) + tuple(
                self._value(entry, a) for a in partition
            )
        return update

    def insertions(self, per_peer: int) -> list[EntryUpdate]:
        """Fresh insertions: ``per_peer`` entries at every peer."""
        updates: list[EntryUpdate] = []
        for layout in self.layouts:
            for _ in range(per_peer):
                update = self.fresh_entry(layout)
                self.inserted_entries[layout.name].append(update)
                updates.append(update)
        return updates

    def deletions(self, per_peer: int) -> list[EntryUpdate]:
        """Deletions sampled among previously generated insertions."""
        updates: list[EntryUpdate] = []
        for layout in self.layouts:
            pool = self.inserted_entries[layout.name]
            count = min(per_peer, len(pool))
            chosen = self._rng.sample(range(len(pool)), count)
            for position in sorted(chosen, reverse=True):
                updates.append(pool.pop(position))
        return updates

    # -- applying updates to a CDSS ------------------------------------------------------

    @staticmethod
    def record_insertions(cdss: CDSS, updates: list[EntryUpdate]) -> int:
        """Stage insertion updates in one transactional batch.

        The batch commits to the owning peers' edit logs in bulk — the
        hot path the insertion benchmarks (Figures 7/8) measure.
        """
        with cdss.batch() as tx:
            for update in updates:
                for relation, row in update.rows.items():
                    tx.insert(relation, row)
            return len(tx)

    @staticmethod
    def record_deletions(cdss: CDSS, updates: list[EntryUpdate]) -> int:
        with cdss.batch() as tx:
            for update in updates:
                for relation, row in update.rows.items():
                    tx.delete(relation, row)
            return len(tx)

    def populate(self, cdss: CDSS, base_per_peer: int) -> None:
        """Insert ``base_per_peer`` fresh entries per peer and exchange."""
        self.record_insertions(cdss, self.insertions(base_per_peer))
        cdss.update_exchange()
