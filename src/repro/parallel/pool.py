"""Persistent worker pools: process lifecycle, sessions, plan shipping.

A :class:`WorkerPool` owns N long-lived OS processes (spawned once, on
first use) and the parent-side bookkeeping of the replication protocol:

* **sessions** — one per source :class:`~repro.storage.database.Database`
  the pool has evaluated against.  Opening a session attaches a
  :class:`~repro.storage.replication.ChangeFeed` to the database and
  broadcasts a full snapshot; :meth:`sync` drains the feed and ships only
  the delta, so replicas are *kept* current rather than re-replicated
  between rounds.  Under the negotiated replication protocol v2, each
  worker's delta is further cut to the **complement** — rows *other*
  workers produced — because every worker retains its own accepted
  derivations locally (self-markers + rejection acks in the stream; see
  DESIGN.md "Replication protocol v2").  Sessions end automatically when
  their database is garbage-collected (a weakref callback) or when the
  pool closes.
* **plan registry** — rule plans are registered by identity and assigned
  integer ids; each plan is pickled to the workers exactly once
  (:meth:`flush_plans`), after which rounds reference plans by id.  The
  registry pins the plan objects, which also keeps the engine plan
  cache's id-keyed entries stable.

Start methods: the default (``None``) uses the platform's
:mod:`multiprocessing` default (``fork`` on Linux); passing ``"spawn"``
works because the whole protocol ships only picklable data and the worker
entry point is an importable module function.

Pools close idempotently: explicitly via :meth:`close`, when the owner
drops its last reference (``__del__``), and at interpreter exit (atexit
backstop); worker processes are daemonic besides, so they can never
outlive the parent.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import weakref
from typing import TYPE_CHECKING, Sequence

from ..obs import metrics as _metrics
from ..storage.replication import (
    OP_CREATE,
    OP_DELETE,
    OP_DROP,
    OP_INSERT,
    pack_ops,
    split_op_streams,
)
from .transport import MessageTransport
from .worker import (
    MSG_APPLY,
    MSG_END_SESSION,
    MSG_EVAL,
    MSG_PING,
    MSG_PLANS,
    MSG_SESSION,
    MSG_STOP,
    PROTOCOL_VERSION,
    REPLY_OK,
    send_message,
    worker_main,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalog.plan import RulePlan, Row
    from ..storage.database import Database


class WorkerPoolError(Exception):
    """A worker pool operation failed (the pool is then unusable)."""


_PLAN_REGISTRY_LIMIT = 4096
"""Plans the registry may pin before a wholesale reset.

Prepared planners re-plan only on invalidation, so real programs sit far
below this; the cap exists for statistics-driven planners whose cache
token moves with the data (a fresh plan object per rule per round) —
without it the parent registry, the shard-position cache, and every
worker's plan dict would grow without bound."""


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count setting.

    ``None`` reads the ``REPRO_WORKERS`` environment variable (absent or
    empty means 1 — the sequential path); explicit values pass through.
    The result is always an ``int >= 1``.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise WorkerPoolError(
                f"REPRO_WORKERS must be an integer, got {raw!r}"
            ) from None
    workers = int(workers)
    if workers < 1:
        raise WorkerPoolError(f"workers must be >= 1, got {workers}")
    return workers


_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


@atexit.register
def _close_all_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in list(_LIVE_POOLS):
        pool.close()


class _Session:
    __slots__ = ("sid", "feed", "dbref", "relevant", "stale", "rejections")

    def __init__(self, sid: int, feed, dbref) -> None:
        self.sid = sid
        self.feed = feed
        self.dbref = dbref
        # Protocol v2 rejection acks, (round token, head predicate,
        # worker) -> rows that worker derived but the parent's trust
        # filters / merge discarded.  sync() attaches them to the
        # matching self-markers and prunes consumed tokens.
        self.rejections: dict[tuple[int, str, int], tuple] = {}
        # Delta-shipping filter: replicas only need relations that rule
        # *bodies* read — head-only relations (and their usually-wide
        # derived rows) never cross the wire.  ``relevant`` accumulates
        # the body predicates of every program evaluated through this
        # session; ``stale`` records predicates whose ops were dropped,
        # so a later program that starts reading one forces a fresh
        # snapshot instead of probing a stale replica.
        self.relevant: set[str] | None = None
        self.stale: set[str] = set()


_REPL_METRIC_KEYS = (
    ("repro_parallel_syncs_total", "syncs"),
    ("repro_parallel_rows_shipped_total", "rows_shipped"),
    ("repro_parallel_rows_retained_total", "rows_retained"),
)

#: (direction label, frames key, bytes key, seconds key) per transport
#: direction, matched to the bootstrap families in ``repro.obs``.
_TRANSPORT_DIRECTIONS = (
    ("out", "frames_out", "bytes_out", "pickle_s"),
    ("in", "frames_in", "bytes_in", "unpickle_s"),
)


def _pool_samples(pool: "WorkerPool"):
    """Metrics collector: replication-volume counters plus the
    transport's total frame/byte/pickle rollup (weakref-registered,
    summed across live pools at scrape time)."""
    sample = _metrics.Sample
    kind = _metrics.KIND_COUNTER
    repl = pool.repl_stats
    for name, key in _REPL_METRIC_KEYS:
        yield sample(name, kind, "", (), repl[key])
    transport = pool.transport
    if transport is None:
        return
    total = transport.stats()["total"]
    for direction, frames_key, bytes_key, seconds_key in (
        _TRANSPORT_DIRECTIONS
    ):
        labels = (("direction", direction),)
        yield sample(
            "repro_parallel_frames_total", kind, "", labels, total[frames_key]
        )
        yield sample(
            "repro_parallel_bytes_total", kind, "", labels, total[bytes_key]
        )
        yield sample(
            "repro_parallel_pickle_seconds_total",
            kind,
            "",
            labels,
            total[seconds_key],
        )


class WorkerPool:
    """N persistent evaluation workers holding replicated databases."""

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        if workers < 1:
            raise WorkerPoolError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = start_method
        self.broken = False
        #: Negotiated replication protocol version: ``min()`` over what
        #: every worker advertises (and the ``REPRO_REPLICATION`` cap),
        #: settled by the startup handshake.  Protocol >= 2 ships
        #: complements; 1 is full shipping.
        self.protocol = PROTOCOL_VERSION
        self.transport: MessageTransport | None = None
        #: Replication-volume counters (complement shipping bookkeeping);
        #: see :meth:`stats`.
        self.repl_stats: dict[str, int] = {
            "syncs": 0,
            "broadcast_syncs": 0,
            "complement_syncs": 0,
            "full_syncs": 0,
            "rows_shipped": 0,
            "rows_retained": 0,
            "rows_rejected": 0,
            "markers": 0,
            "snapshots": 0,
            "snapshot_rows": 0,
        }
        self._started = False
        _metrics.REGISTRY.register(self, _pool_samples)
        self._conns: list = []
        self._procs: list = []
        self._sessions: dict[int, _Session] = {}
        self._session_ids = itertools.count(1)
        # Round tokens: one per evaluated round, pool-wide monotone.  The
        # eviction watermark shipped with every MSG_APPLY is derived from
        # the last issued token, so worker retention caches never outlive
        # the round after the one that could consume them.
        self._round_tokens = itertools.count(1)
        self._last_token = 0
        # id(plan) -> pid; pid -> plan (pins the plan so its id is stable).
        self._plan_ids: dict[int, int] = {}
        self._plans: dict[int, "RulePlan"] = {}
        self._unshipped: list[tuple[int, "RulePlan"]] = []
        _LIVE_POOLS.add(self)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker processes (idempotent)."""
        if self.broken:
            raise WorkerPoolError("worker pool is closed or broken")
        if self._started:
            return
        context = multiprocessing.get_context(self.start_method)
        try:
            for index in range(self.workers):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=worker_main,
                    args=(child_conn,),
                    daemon=True,
                    name=f"repro-eval-worker-{index}",
                )
                process.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(process)
        except Exception as error:
            self.broken = True
            self.close()
            raise WorkerPoolError(f"could not spawn workers: {error}") from error
        self.transport = MessageTransport(self._conns)
        self._started = True
        try:
            self._negotiate_protocol()
        except Exception:
            self.close()
            raise

    def _negotiate_protocol(self) -> None:
        """Startup handshake: settle the replication protocol version.

        Every worker advertises the protocol it implements (capped by its
        ``REPRO_WORKER_PROTOCOL``); the pool runs at the minimum, further
        capped by the parent's own version and by
        ``REPRO_REPLICATION=full`` (an operator kill switch forcing v1
        full shipping).  A mismatched worker therefore degrades the whole
        pool to full shipping instead of corrupting replicas.
        """
        raw = os.environ.get("REPRO_REPLICATION", "").strip().lower()
        if raw == "full":
            cap = 1
        elif raw in ("", "complement"):
            cap = PROTOCOL_VERSION
        else:
            raise WorkerPoolError(
                f"REPRO_REPLICATION must be 'full' or 'complement', got {raw!r}"
            )
        try:
            replies = self._ping_workers()
        except WorkerPoolError:
            self.close()
            raise
        advertised = min(
            (reply.get("protocol", 1) for reply in replies),
            default=PROTOCOL_VERSION,
        )
        self.protocol = max(1, min(cap, advertised))

    def _ping_workers(self) -> list[dict]:
        """Round-trip MSG_PING to every worker; returns the reply dicts."""
        self._broadcast((MSG_PING,))
        replies = []
        try:
            for index in range(len(self._conns)):
                reply = self.transport.recv(index, MSG_PING)
                if reply[0] != REPLY_OK:
                    raise WorkerPoolError(f"worker ping failed:\n{reply[1]}")
                replies.append(reply[1])
        except WorkerPoolError:
            self.broken = True
            raise
        except Exception as error:
            self.broken = True
            raise WorkerPoolError(f"worker pipe failed: {error}") from error
        return replies

    def close(self) -> None:
        """Tear the pool down (idempotent, safe from __del__/atexit)."""
        for session in list(self._sessions.values()):
            try:
                session.feed.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._sessions.clear()
        conns, self._conns = self._conns, []
        procs, self._procs = self._procs, []
        for conn in conns:
            try:
                send_message(conn, (MSG_STOP,))
            except Exception:
                pass
            try:
                conn.close()
            except Exception:
                pass
        for process in procs:
            try:
                process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._plan_ids.clear()
        self._plans.clear()
        self._unshipped.clear()
        self._started = False
        self.transport = None
        # Closed means closed: a pool never restarts, even if it had not
        # spawned yet (start() raises, callers fall back to sequential).
        self.broken = True

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- messaging ---------------------------------------------------------

    def _broadcast(self, message: tuple) -> None:
        try:
            # Pickle once, fan the same frame out to every worker (the
            # transport counts frames/bytes/pickle time per message tag).
            self.transport.broadcast(message)
        except Exception as error:
            self.broken = True
            raise WorkerPoolError(f"worker pipe failed: {error}") from error

    # -- sessions ----------------------------------------------------------

    def session_for(self, db: "Database") -> _Session:
        """The replication session for ``db``, opened on first use.

        Opening a session attaches a change feed and ships one full
        snapshot to every worker; subsequent calls are dictionary hits.
        """
        self.start()
        key = id(db)
        session = self._sessions.get(key)
        if session is not None:
            if session.dbref() is db:
                return session
            # id() reuse after the old database died mid-callback: drop.
            self._drop_session(key)
        feed = db.changefeed()
        sid = next(self._session_ids)
        try:
            snapshot = db.export_snapshot()
            self._broadcast((MSG_SESSION, sid, snapshot))
            self.repl_stats["snapshots"] += 1
            self.repl_stats["snapshot_rows"] += sum(
                len(rows) for _, _, rows in snapshot["relations"]
            )
        except Exception:
            feed.close()
            raise
        poolref = weakref.ref(self)

        def _on_db_death(_ref, poolref=poolref, key=key):
            pool = poolref()
            if pool is not None:
                pool._drop_session(key)

        session = _Session(sid, feed, weakref.ref(db, _on_db_death))
        self._sessions[key] = session
        return session

    def _drop_session(self, key: int) -> None:
        session = self._sessions.pop(key, None)
        if session is None:
            return
        session.feed.close()
        if self._started and not self.broken:
            try:
                self._broadcast((MSG_END_SESSION, session.sid))
            except WorkerPoolError:  # pragma: no cover - already broken
                pass

    def end_session(self, db: "Database") -> None:
        """Tear down the replication session for ``db`` (if any)."""
        self._drop_session(id(db))

    def sync(
        self, session: _Session, relevant: "frozenset[str] | None" = None
    ) -> bool:
        """Ship the session's pending change-feed ops to every replica.

        ``relevant`` names the relations the upcoming evaluation's rule
        bodies read; ops for other relations are dropped (the replica's
        copy goes stale, recorded as such).  Returns ``False`` — without
        consuming the feed — when a newly relevant relation is already
        stale: the caller must end the session and open a fresh one (a
        new snapshot), because no delta can repair a dropped history.

        Under the negotiated protocol v2, origin-tagged ops (merged
        derivations the executor inserted under
        :meth:`Database.tag_changes`) are not shipped back to the workers
        that produced them: the window splits into per-worker complement
        streams with in-stream self-markers
        (:func:`~repro.storage.replication.split_op_streams`).  Windows
        with no tagged ops — and every window under protocol v1 —
        broadcast one shared frame.
        """
        if relevant is not None:
            if session.relevant is None:
                session.relevant = set(relevant)
            else:
                fresh = relevant - session.relevant
                if fresh:
                    if fresh & session.stale:
                        return False
                    session.relevant |= fresh
        entries = session.feed.drain_tagged()
        if entries and session.relevant is not None:
            shipped = []
            for entry in entries:
                name, kind = entry[0], entry[1]
                if (
                    kind in (OP_CREATE, OP_DROP)
                    or name in session.relevant
                ):
                    shipped.append(entry)
                else:
                    session.stale.add(name)
            entries = shipped
        # Watermark: every token issued before this sync is settled once
        # this window is applied (its markers are in the window or its
        # entries were dropped), so workers evict leftovers below it.
        evict_before = self._last_token + 1
        stats = self.repl_stats
        if entries:
            stats["syncs"] += 1
            tagged = any(entry[3] is not None for entry in entries)
            if not tagged or self.protocol < 2:
                ops = [(name, kind, payload) for name, kind, payload, _ in entries]
                rows = sum(
                    len(payload)
                    for _, kind, payload in ops
                    if kind == OP_INSERT or kind == OP_DELETE
                )
                stats["rows_shipped"] += rows * self.workers
                if tagged:
                    stats["full_syncs"] += 1
                else:
                    stats["broadcast_syncs"] += 1
                self._broadcast((MSG_APPLY, session.sid, ops, evict_before))
            else:
                streams, counters = split_op_streams(
                    entries, self.workers, session.rejections
                )
                stats["complement_syncs"] += 1
                for key in ("rows_shipped", "rows_retained", "rows_rejected", "markers"):
                    stats[key] += counters[key]
                messages: list[tuple | None] = []
                shared: dict[int, tuple] = {}
                for stream in streams:
                    # Streams may share one list object (workers outside
                    # every producer mask); share the message object too
                    # so the transport pickles it once.  Each distinct
                    # stream packs (deflates) exactly once.
                    message = shared.get(id(stream))
                    if message is None:
                        message = (
                            MSG_APPLY,
                            session.sid,
                            pack_ops(stream),
                            evict_before,
                        )
                        shared[id(stream)] = message
                    messages.append(message)
                try:
                    self.transport.send_each(messages)
                except Exception as error:
                    self.broken = True
                    raise WorkerPoolError(
                        f"worker pipe failed: {error}"
                    ) from error
        if session.rejections:
            session.rejections = {
                key: rows
                for key, rows in session.rejections.items()
                if key[0] >= evict_before
            }
        return True

    # -- plans -------------------------------------------------------------

    @property
    def plan_count(self) -> int:
        """Plans currently pinned in the registry."""
        return len(self._plans)

    def reset_plans_if_full(self) -> bool:
        """Drop the whole plan registry once it exceeds the cap.

        Safe only *between* rounds (pids handed out earlier become
        invalid), which is why the executor calls this before registering
        a round's plans.  Workers drop their dicts too; the round's plans
        then ship fresh.  Returns True if a reset happened.
        """
        if len(self._plans) < _PLAN_REGISTRY_LIMIT:
            return False
        self._plan_ids.clear()
        self._plans.clear()
        self._unshipped.clear()
        if self._started:
            self._broadcast((MSG_PLANS, None))  # None = clear
        return True

    def register_plan(self, plan: "RulePlan") -> int:
        """The pool-wide id for ``plan`` (new plans queue for shipping)."""
        pid = self._plan_ids.get(id(plan))
        if pid is None:
            pid = len(self._plans) + 1
            self._plan_ids[id(plan)] = pid
            self._plans[pid] = plan
            self._unshipped.append((pid, plan))
        return pid

    def flush_plans(self) -> None:
        """Broadcast queued plans (each plan crosses the wire once)."""
        if self._unshipped:
            shipped, self._unshipped = self._unshipped, []
            self._broadcast((MSG_PLANS, shipped))

    # -- evaluation --------------------------------------------------------

    def next_round_token(self) -> int:
        """Issue the next round token (worker retention-cache key)."""
        self._last_token = next(self._round_tokens)
        return self._last_token

    def evaluate(
        self,
        session: _Session,
        assignments: Sequence[Sequence[tuple[int, int | None, list]]],
        token: int,
        retain: bool,
    ) -> "list[list[list[Row]]]":
        """Dispatch one round's shard assignments and collect results.

        ``assignments[w]`` is worker ``w``'s task list of ``(plan id,
        delta body index, Δ-shard rows)``; workers with an empty list are
        skipped.  All engaged workers evaluate concurrently; the reply for
        worker ``w`` is a derived-row list per task, aligned with its
        assignment.  ``token`` names the round; ``retain`` (protocol v2)
        tells workers to cache their derived rows for complement shipping.
        """
        if len(assignments) != len(self._conns):
            raise WorkerPoolError(
                f"{len(assignments)} assignments for {len(self._conns)} workers"
            )
        transport = self.transport
        try:
            for index, tasks in enumerate(assignments):
                if tasks:
                    # Per-worker payloads are genuinely distinct (disjoint
                    # Δ-shards), so each pickles once; identical payload
                    # objects would share a frame via send_each.
                    transport.send(
                        index,
                        (MSG_EVAL, session.sid, list(tasks), token, retain),
                    )
            results: "list[list[list[Row]]]" = []
            for index, tasks in enumerate(assignments):
                if not tasks:
                    results.append([])
                    continue
                reply = transport.recv(index, MSG_EVAL)
                if reply[0] != REPLY_OK:
                    raise WorkerPoolError(
                        f"worker evaluation failed:\n{reply[1]}"
                    )
                results.append(reply[1])
            return results
        except WorkerPoolError:
            self.broken = True
            raise
        except Exception as error:
            self.broken = True
            raise WorkerPoolError(f"worker pipe failed: {error}") from error

    # -- diagnostics -------------------------------------------------------

    def ping(self) -> list[int]:
        """Round-trip every worker; returns each worker's session count."""
        self.start()
        return [reply["sessions"] for reply in self._ping_workers()]

    def stats(self) -> dict:
        """Replication protocol + transport counters (picklable).

        ``replication`` counts protocol-level volume: rows shipped as
        complements vs. covered by worker-retained derivations, rejection
        acks, sync/snapshot counts.  ``transport`` is the per-message-tag
        frame/byte/pickle-time breakdown.  Surfaces through
        ``ExchangeSystem.parallel_stats()`` and the serve tier's
        ``/stats``.
        """
        return {
            "workers": self.workers,
            "protocol": self.protocol if self._started else None,
            "replication": dict(self.repl_stats),
            "transport": self.transport.stats() if self.transport else {},
        }

    def __repr__(self) -> str:
        state = (
            "broken"
            if self.broken
            else ("started" if self._started else "cold")
        )
        return (
            f"<WorkerPool {self.workers} workers ({state}), "
            f"{len(self._sessions)} sessions, {len(self._plans)} plans>"
        )
