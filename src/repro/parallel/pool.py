"""Persistent worker pools: process lifecycle, sessions, plan shipping.

A :class:`WorkerPool` owns N long-lived OS processes (spawned once, on
first use) and the parent-side bookkeeping of the replication protocol:

* **sessions** — one per source :class:`~repro.storage.database.Database`
  the pool has evaluated against.  Opening a session attaches a
  :class:`~repro.storage.replication.ChangeFeed` to the database and
  broadcasts a full snapshot; :meth:`sync` drains the feed and ships only
  the delta, so replicas are *kept* current rather than re-replicated
  between rounds.  Sessions end automatically when their database is
  garbage-collected (a weakref callback) or when the pool closes.
* **plan registry** — rule plans are registered by identity and assigned
  integer ids; each plan is pickled to the workers exactly once
  (:meth:`flush_plans`), after which rounds reference plans by id.  The
  registry pins the plan objects, which also keeps the engine plan
  cache's id-keyed entries stable.

Start methods: the default (``None``) uses the platform's
:mod:`multiprocessing` default (``fork`` on Linux); passing ``"spawn"``
works because the whole protocol ships only picklable data and the worker
entry point is an importable module function.

Pools close idempotently: explicitly via :meth:`close`, when the owner
drops its last reference (``__del__``), and at interpreter exit (atexit
backstop); worker processes are daemonic besides, so they can never
outlive the parent.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import weakref
from typing import TYPE_CHECKING, Sequence

from ..storage.replication import OP_CREATE, OP_DROP
from .worker import (
    MSG_APPLY,
    MSG_END_SESSION,
    MSG_EVAL,
    MSG_PING,
    MSG_PLANS,
    MSG_SESSION,
    MSG_STOP,
    REPLY_OK,
    dump_message,
    recv_message,
    send_message,
    worker_main,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalog.plan import RulePlan, Row
    from ..storage.database import Database


class WorkerPoolError(Exception):
    """A worker pool operation failed (the pool is then unusable)."""


_PLAN_REGISTRY_LIMIT = 4096
"""Plans the registry may pin before a wholesale reset.

Prepared planners re-plan only on invalidation, so real programs sit far
below this; the cap exists for statistics-driven planners whose cache
token moves with the data (a fresh plan object per rule per round) —
without it the parent registry, the shard-position cache, and every
worker's plan dict would grow without bound."""


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count setting.

    ``None`` reads the ``REPRO_WORKERS`` environment variable (absent or
    empty means 1 — the sequential path); explicit values pass through.
    The result is always an ``int >= 1``.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise WorkerPoolError(
                f"REPRO_WORKERS must be an integer, got {raw!r}"
            ) from None
    workers = int(workers)
    if workers < 1:
        raise WorkerPoolError(f"workers must be >= 1, got {workers}")
    return workers


_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


@atexit.register
def _close_all_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in list(_LIVE_POOLS):
        pool.close()


class _Session:
    __slots__ = ("sid", "feed", "dbref", "relevant", "stale")

    def __init__(self, sid: int, feed, dbref) -> None:
        self.sid = sid
        self.feed = feed
        self.dbref = dbref
        # Delta-shipping filter: replicas only need relations that rule
        # *bodies* read — head-only relations (and their usually-wide
        # derived rows) never cross the wire.  ``relevant`` accumulates
        # the body predicates of every program evaluated through this
        # session; ``stale`` records predicates whose ops were dropped,
        # so a later program that starts reading one forces a fresh
        # snapshot instead of probing a stale replica.
        self.relevant: set[str] | None = None
        self.stale: set[str] = set()


class WorkerPool:
    """N persistent evaluation workers holding replicated databases."""

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        if workers < 1:
            raise WorkerPoolError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = start_method
        self.broken = False
        self._started = False
        self._conns: list = []
        self._procs: list = []
        self._sessions: dict[int, _Session] = {}
        self._session_ids = itertools.count(1)
        # id(plan) -> pid; pid -> plan (pins the plan so its id is stable).
        self._plan_ids: dict[int, int] = {}
        self._plans: dict[int, "RulePlan"] = {}
        self._unshipped: list[tuple[int, "RulePlan"]] = []
        _LIVE_POOLS.add(self)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker processes (idempotent)."""
        if self.broken:
            raise WorkerPoolError("worker pool is closed or broken")
        if self._started:
            return
        context = multiprocessing.get_context(self.start_method)
        try:
            for index in range(self.workers):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=worker_main,
                    args=(child_conn,),
                    daemon=True,
                    name=f"repro-eval-worker-{index}",
                )
                process.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(process)
        except Exception as error:
            self.broken = True
            self.close()
            raise WorkerPoolError(f"could not spawn workers: {error}") from error
        self._started = True

    def close(self) -> None:
        """Tear the pool down (idempotent, safe from __del__/atexit)."""
        for session in list(self._sessions.values()):
            try:
                session.feed.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._sessions.clear()
        conns, self._conns = self._conns, []
        procs, self._procs = self._procs, []
        for conn in conns:
            try:
                send_message(conn, (MSG_STOP,))
            except Exception:
                pass
            try:
                conn.close()
            except Exception:
                pass
        for process in procs:
            try:
                process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._plan_ids.clear()
        self._plans.clear()
        self._unshipped.clear()
        self._started = False
        # Closed means closed: a pool never restarts, even if it had not
        # spawned yet (start() raises, callers fall back to sequential).
        self.broken = True

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- messaging ---------------------------------------------------------

    def _broadcast(self, message: tuple) -> None:
        try:
            # Pickle once, fan the same frame out to every worker.
            frame = dump_message(message)
            for conn in self._conns:
                conn.send_bytes(frame)
        except Exception as error:
            self.broken = True
            raise WorkerPoolError(f"worker pipe failed: {error}") from error

    # -- sessions ----------------------------------------------------------

    def session_for(self, db: "Database") -> _Session:
        """The replication session for ``db``, opened on first use.

        Opening a session attaches a change feed and ships one full
        snapshot to every worker; subsequent calls are dictionary hits.
        """
        self.start()
        key = id(db)
        session = self._sessions.get(key)
        if session is not None:
            if session.dbref() is db:
                return session
            # id() reuse after the old database died mid-callback: drop.
            self._drop_session(key)
        feed = db.changefeed()
        sid = next(self._session_ids)
        try:
            self._broadcast((MSG_SESSION, sid, db.export_snapshot()))
        except Exception:
            feed.close()
            raise
        poolref = weakref.ref(self)

        def _on_db_death(_ref, poolref=poolref, key=key):
            pool = poolref()
            if pool is not None:
                pool._drop_session(key)

        session = _Session(sid, feed, weakref.ref(db, _on_db_death))
        self._sessions[key] = session
        return session

    def _drop_session(self, key: int) -> None:
        session = self._sessions.pop(key, None)
        if session is None:
            return
        session.feed.close()
        if self._started and not self.broken:
            try:
                self._broadcast((MSG_END_SESSION, session.sid))
            except WorkerPoolError:  # pragma: no cover - already broken
                pass

    def end_session(self, db: "Database") -> None:
        """Tear down the replication session for ``db`` (if any)."""
        self._drop_session(id(db))

    def sync(
        self, session: _Session, relevant: "frozenset[str] | None" = None
    ) -> bool:
        """Ship the session's pending change-feed ops to every replica.

        ``relevant`` names the relations the upcoming evaluation's rule
        bodies read; ops for other relations are dropped (the replica's
        copy goes stale, recorded as such).  Returns ``False`` — without
        consuming the feed — when a newly relevant relation is already
        stale: the caller must end the session and open a fresh one (a
        new snapshot), because no delta can repair a dropped history.
        """
        if relevant is not None:
            if session.relevant is None:
                session.relevant = set(relevant)
            else:
                fresh = relevant - session.relevant
                if fresh:
                    if fresh & session.stale:
                        return False
                    session.relevant |= fresh
        ops = session.feed.drain()
        if ops and session.relevant is not None:
            shipped = []
            for op in ops:
                name, kind, _payload = op
                if (
                    kind in (OP_CREATE, OP_DROP)
                    or name in session.relevant
                ):
                    shipped.append(op)
                else:
                    session.stale.add(name)
            ops = shipped
        if ops:
            self._broadcast((MSG_APPLY, session.sid, ops))
        return True

    # -- plans -------------------------------------------------------------

    @property
    def plan_count(self) -> int:
        """Plans currently pinned in the registry."""
        return len(self._plans)

    def reset_plans_if_full(self) -> bool:
        """Drop the whole plan registry once it exceeds the cap.

        Safe only *between* rounds (pids handed out earlier become
        invalid), which is why the executor calls this before registering
        a round's plans.  Workers drop their dicts too; the round's plans
        then ship fresh.  Returns True if a reset happened.
        """
        if len(self._plans) < _PLAN_REGISTRY_LIMIT:
            return False
        self._plan_ids.clear()
        self._plans.clear()
        self._unshipped.clear()
        if self._started:
            self._broadcast((MSG_PLANS, None))  # None = clear
        return True

    def register_plan(self, plan: "RulePlan") -> int:
        """The pool-wide id for ``plan`` (new plans queue for shipping)."""
        pid = self._plan_ids.get(id(plan))
        if pid is None:
            pid = len(self._plans) + 1
            self._plan_ids[id(plan)] = pid
            self._plans[pid] = plan
            self._unshipped.append((pid, plan))
        return pid

    def flush_plans(self) -> None:
        """Broadcast queued plans (each plan crosses the wire once)."""
        if self._unshipped:
            shipped, self._unshipped = self._unshipped, []
            self._broadcast((MSG_PLANS, shipped))

    # -- evaluation --------------------------------------------------------

    def evaluate(
        self,
        session: _Session,
        assignments: Sequence[Sequence[tuple[int, int | None, list]]],
    ) -> "list[list[list[Row]]]":
        """Dispatch one round's shard assignments and collect results.

        ``assignments[w]`` is worker ``w``'s task list of ``(plan id,
        delta body index, Δ-shard rows)``; workers with an empty list are
        skipped.  All engaged workers evaluate concurrently; the reply for
        worker ``w`` is a derived-row list per task, aligned with its
        assignment.
        """
        if len(assignments) != len(self._conns):
            raise WorkerPoolError(
                f"{len(assignments)} assignments for {len(self._conns)} workers"
            )
        try:
            for conn, tasks in zip(self._conns, assignments):
                if tasks:
                    send_message(conn, (MSG_EVAL, session.sid, list(tasks)))
            results: "list[list[list[Row]]]" = []
            for conn, tasks in zip(self._conns, assignments):
                if not tasks:
                    results.append([])
                    continue
                reply = recv_message(conn)
                if reply[0] != REPLY_OK:
                    raise WorkerPoolError(
                        f"worker evaluation failed:\n{reply[1]}"
                    )
                results.append(reply[1])
            return results
        except WorkerPoolError:
            self.broken = True
            raise
        except Exception as error:
            self.broken = True
            raise WorkerPoolError(f"worker pipe failed: {error}") from error

    # -- diagnostics -------------------------------------------------------

    def ping(self) -> list[int]:
        """Round-trip every worker; returns each worker's session count."""
        self.start()
        self._broadcast((MSG_PING,))
        replies = []
        try:
            for conn in self._conns:
                reply = recv_message(conn)
                if reply[0] != REPLY_OK:
                    raise WorkerPoolError(f"worker ping failed:\n{reply[1]}")
                replies.append(reply[1])
        except WorkerPoolError:
            self.broken = True
            raise
        except Exception as error:
            self.broken = True
            raise WorkerPoolError(f"worker pipe failed: {error}") from error
        return replies

    def __repr__(self) -> str:
        state = (
            "broken"
            if self.broken
            else ("started" if self._started else "cold")
        )
        return (
            f"<WorkerPool {self.workers} workers ({state}), "
            f"{len(self._sessions)} sessions, {len(self._plans)} plans>"
        )
