"""Shard-parallel evaluation: hash-partitioned rules over a worker pool.

The scaling lever on top of the evaluation pipeline (DESIGN.md,
"Parallel evaluation"): rules within a semi-naive stratum round are
independent, so each round's (rule, Δ-occurrence) tasks are evaluated
across N OS processes — Δ-tuples hash-partitioned on the first join key
(:class:`ShardPlanner`), workers holding replicated snapshots kept
current by change-feed delta shipping (:class:`WorkerPool`,
:mod:`repro.storage.replication`), results deduplicated across shards
and inserted under the ambient deferred-index scope (:class:`Merger`).
Replication runs protocol v2 where negotiated: workers retain the
derivations they produced, the parent ships only each worker's
complement plus rejection acks, and every frame/byte crossing the pipes
is counted by :class:`MessageTransport` (surfaced through
``ExchangeSystem.parallel_stats()`` and the serve tier's ``/stats``).

The subsystem hides behind the engine interface: construct the engine —
or any layer above it, up to ``CDSS(workers=N)``, ``SystemSpec.workers``
and the CLI's ``--workers`` — with ``workers > 1`` and stratum rounds go
through a :class:`ParallelExecutor`; ``workers=1`` (the default) is the
unchanged sequential path, and the ``REPRO_WORKERS`` environment
variable supplies the default where no explicit count is given
(:func:`resolve_workers`).
"""

from .executor import ParallelExecutor
from .merge import Merger
from .pool import WorkerPool, WorkerPoolError, resolve_workers
from .shard import ShardPlanner, first_join_key
from .transport import MessageTransport
from .worker import PROTOCOL_VERSION

__all__ = [
    "Merger",
    "MessageTransport",
    "PROTOCOL_VERSION",
    "ParallelExecutor",
    "ShardPlanner",
    "WorkerPool",
    "WorkerPoolError",
    "first_join_key",
    "resolve_workers",
]
