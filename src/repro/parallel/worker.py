"""The worker-process side of shard-parallel evaluation.

Each worker is one OS process running :func:`worker_main` over a duplex
pipe.  It is deliberately thin and stateful in exactly two ways:

* **replicas** — per session (one session per source
  :class:`~repro.storage.database.Database`), a full replicated copy of
  the EDB + current IDB, built once from a snapshot and then kept current
  by replaying drained change-feed ops (see
  :mod:`repro.storage.replication`).  Replicas build their probe indexes
  lazily on first use and keep them warm across rounds, and each replica
  owns a persistent Δ-instance pool mirroring the engine's
  (:meth:`~repro.datalog.engine.SemiNaiveEngine.delta_instance`);
* **plans** — compiled rule plans registered by integer id.  A plan is
  shipped (pickled) once, on first use; every later round references it
  by id only, so the steady-state traffic is Δ-shards in, derived-tuple
  batches out.

Workers never apply trust conditions (head filters are Python closures
held by the parent engine and are applied at merge time).  Under
replication protocol v1 they never write to the replicated relations
themselves either — the parent merges, filters and inserts, then ships
the effective insertions back as ordinary feed ops.  Protocol v2
(complement shipping) keeps the parent authoritative but lets each
worker **retain** the rows it derived for a round and apply them locally
when the parent's stream says so (a self-marker carrying the filter/merge
rejections), so only rows produced by *other* workers cross the wire.
Either way nothing unpicklable ever crosses the pipe, and this module
imports cleanly in a fresh interpreter — the protocol stays
``spawn``-safe.
"""

from __future__ import annotations

import os
import pickle
import traceback
from typing import Sequence

from ..datalog.engine import EMPTY_SOURCE, DeltaPool
from ..datalog.plan import RulePlan, Row, run_plan
from ..storage.database import Database
from ..storage.replication import (
    OP_CLEAR,
    OP_CREATE,
    OP_DELETE,
    OP_DROP,
    OP_INSERT,
    OP_SELF_DELETE,
    OP_SELF_INSERT,
    build_replica,
    unpack_ops,
)

#: Replication protocol version this module implements.  v2 adds
#: complement shipping: workers retain the derivations they produced
#: (``MSG_EVAL`` carries a round token + retain flag), the parent ships
#: per-worker complement streams with in-stream self-markers, and
#: ``MSG_APPLY`` carries an eviction watermark.  The pool negotiates
#: ``min()`` across what every worker advertises at startup and falls
#: back to v1 full shipping on mismatch (or ``REPRO_REPLICATION=full``).
PROTOCOL_VERSION = 2


def advertised_protocol() -> int:
    """The protocol version this worker advertises on ping.

    ``REPRO_WORKER_PROTOCOL`` caps it — the knob exists so tests (and
    staged multi-host rollouts) can hold a worker at an older protocol
    and exercise the pool's full-shipping fallback.
    """
    raw = os.environ.get("REPRO_WORKER_PROTOCOL", "").strip()
    if not raw:
        return PROTOCOL_VERSION
    try:
        version = int(raw)
    except ValueError:
        return PROTOCOL_VERSION
    return max(1, min(PROTOCOL_VERSION, version))


# Parent -> worker message tags.
MSG_SESSION = "session"  # (tag, sid, snapshot)           no reply
MSG_END_SESSION = "end_session"  # (tag, sid)             no reply
MSG_APPLY = "apply"  # (tag, sid, ops, evict_before)      no reply
MSG_PLANS = "plans"  # (tag, [(pid, plan), ...])          no reply
MSG_EVAL = "eval"  # (tag, sid, tasks, token, retain) -> reply
MSG_PING = "ping"  # (tag,)   -> reply {"sessions": n, "protocol": v}
MSG_STOP = "stop"  # (tag,)                               no reply, exits

# Worker -> parent reply tags.
REPLY_OK = "ok"
REPLY_ERROR = "error"


def dump_message(message: object) -> bytes:
    """Serialize one protocol message.

    Messages cross the pipes as explicit byte frames
    (``send_bytes``/``recv_bytes``) rather than ``Connection.send``
    objects so a broadcast — snapshot, delta shipping, plan shipping — is
    pickled **once** and the same frame fanned out to every worker,
    instead of once per worker.
    """
    return pickle.dumps(message, pickle.HIGHEST_PROTOCOL)


def load_message(frame: bytes) -> object:
    return pickle.loads(frame)


def send_message(conn, message: object) -> None:
    conn.send_bytes(dump_message(message))


def recv_message(conn) -> object:
    return load_message(conn.recv_bytes())


class _Replica:
    """One session's replicated database plus its persistent Δ-pool."""

    __slots__ = ("db", "retained", "_deltas", "_scope")

    def __init__(self, db: Database) -> None:
        self.db = db
        # Protocol v2 retention cache: (round token, head predicate) ->
        # the rows this worker derived for that round.  A later
        # MSG_APPLY stream consumes entries through self-markers; the
        # stream's eviction watermark drops whatever was never consumed
        # (relevance-filtered relations, rounds whose rows all merged
        # away), so the cache is bounded by one round of derivations.
        self.retained: dict[tuple[int, str], set[Row]] = {}
        # The engine's own Δ-pool implementation, so replica Δ-indexes
        # are maintained exactly like the sequential engine's.
        self._deltas = DeltaPool()
        # The replica lives inside one indefinite deferral scope: shipped
        # delta batches only append maintenance runs, each probe index
        # catches up in batched passes when evaluation actually reads it,
        # and indexes on relations this worker never probes cost nothing.
        # The maintenance-log spill cap bounds the log at O(live rows)
        # even though this epoch never ends.
        self._scope = db.defer_maintenance()
        self._scope.__enter__()

    def evaluate(
        self, plan: RulePlan, delta_index: int | None, rows: Sequence[Row]
    ) -> list[Row]:
        """Run one rule plan over this replica with a Δ-shard pinned to one
        body occurrence; returns the derived head rows (shard-deduplicated,
        unfiltered — the parent applies trust filters at merge time)."""
        rule = plan.rule
        db = self.db
        delta_source = None
        if delta_index is not None:
            atom = rule.body[delta_index]
            delta_source = self._deltas.instance(
                atom.predicate, atom.arity, rows
            )

        def resolve(index: int, atom):
            if index == delta_index and delta_source is not None:
                return delta_source
            if atom.predicate in db:
                return db[atom.predicate]
            return EMPTY_SOURCE

        derived = run_plan(plan, resolve)
        if len(derived) > 1:
            # Shard-local dedup before rows cross the wire: duplicates from
            # within one shard collapse here, the merger handles the rest.
            derived = list(dict.fromkeys(derived))
        return derived

    def apply(self, ops: Sequence, evict_before: int) -> None:
        """Replay one shipped complement stream, in journal order.

        Plain ops replay exactly like :func:`~repro.storage.replication.
        apply_ops`; the v2 self-markers resolve against the retention
        cache — insert what this worker derived minus what the parent's
        filters/merge rejected, or delete the retained retraction rows
        (deleting a row the parent never held is a set-semantics no-op on
        both sides, so no rejection ack is needed for deletes).  Finally,
        retained entries older than ``evict_before`` are dropped: their
        rounds can never be referenced again.
        """
        db = self.db
        retained = self.retained
        for name, op, payload in ops:
            if op == OP_SELF_INSERT:
                token, rejected = payload
                rows = retained.pop((token, name), None)
                if rows:
                    if rejected:
                        rows = rows.difference(rejected)
                    db[name].insert_many(rows)
            elif op == OP_SELF_DELETE:
                rows = retained.pop((payload[0], name), None)
                if rows:
                    db[name].delete_many(rows)
            elif op == OP_INSERT:
                db[name].insert_many(payload)
            elif op == OP_DELETE:
                db[name].delete_many(payload)
            elif op == OP_CLEAR:
                db[name].clear()
            elif op == OP_CREATE:
                db.ensure(name, payload)
            elif op == OP_DROP:
                db.drop(name)
            else:  # pragma: no cover - future-proofing
                raise ValueError(f"unknown replication op {op!r}")
        if retained:
            dead = [key for key in retained if key[0] < evict_before]
            for key in dead:
                del retained[key]


def worker_main(conn) -> None:
    """Message loop of one worker process.

    Messages that can fail (unknown session, bad plan id, evaluation
    error) reply ``(REPLY_ERROR, traceback)`` instead of killing the
    worker; the parent treats any error reply as a pool failure and falls
    back to sequential evaluation of the affected round.
    """
    sessions: dict[int, _Replica] = {}
    plans: dict[int, RulePlan] = {}
    protocol = advertised_protocol()
    # A failure in a fire-and-forget message (apply/plans/session) must
    # NOT write a reply — the parent only reads replies for eval/ping, so
    # an unsolicited frame would desynchronize the protocol and the error
    # would surface rounds later, attributed to the wrong operation.
    # Remember it instead and report it on the next reply-bearing message.
    deferred_error: str | None = None
    while True:
        try:
            message = recv_message(conn)
        except (EOFError, OSError):
            return
        tag = message[0]
        if tag == MSG_STOP:
            return
        expects_reply = tag in (MSG_EVAL, MSG_PING)
        try:
            if expects_reply and deferred_error is not None:
                raise RuntimeError(
                    "an earlier replication message failed in this "
                    f"worker:\n{deferred_error}"
                )
            if tag == MSG_EVAL:
                _, sid, tasks, token, retain = message
                replica = sessions[sid]
                results = []
                for pid, delta_index, rows in tasks:
                    plan = plans[pid]
                    derived = replica.evaluate(plan, delta_index, rows)
                    if retain and derived:
                        # Protocol v2: remember what this worker produced
                        # so the parent can ship only the complement; a
                        # later self-marker (or the eviction watermark)
                        # settles the entry.
                        replica.retained.setdefault(
                            (token, plan.rule.head.predicate), set()
                        ).update(derived)
                    results.append(derived)
                send_message(conn, (REPLY_OK, results))
            elif tag == MSG_APPLY:
                _, sid, ops, evict_before = message
                sessions[sid].apply(unpack_ops(ops), evict_before)
            elif tag == MSG_PLANS:
                if message[1] is None:  # registry reset (cap exceeded)
                    plans.clear()
                else:
                    plans.update(message[1])
            elif tag == MSG_SESSION:
                _, sid, snapshot = message
                sessions[sid] = _Replica(build_replica(snapshot))
            elif tag == MSG_END_SESSION:
                sessions.pop(message[1], None)
            elif tag == MSG_PING:
                send_message(
                    conn,
                    (
                        REPLY_OK,
                        {"sessions": len(sessions), "protocol": protocol},
                    ),
                )
            else:
                raise ValueError(f"unknown message tag {tag!r}")
        except Exception:  # noqa: BLE001 — report to the parent, stay alive
            if not expects_reply:
                deferred_error = traceback.format_exc()
                continue
            try:
                send_message(conn, (REPLY_ERROR, traceback.format_exc()))
            except (OSError, BrokenPipeError):
                return
