"""Δ-shard planning: hash partitioning on a rule's first join key.

Semi-naive evaluation pins one body-atom occurrence of each rule to a
Δ-relation, and both planners schedule that occurrence first — so the
Δ-tuples *are* the outer loop of the bind-join pipeline, and any
partition of them across workers yields exactly the union of the
sequential derivations (every worker holds a full replica of the other
relations).  Partitioning is therefore purely a balance/locality choice,
and :class:`ShardPlanner` uses the classic recipe (cf. Greenplum's
hash-distributed motion): hash each Δ-tuple on the **first join key** —
the first Δ-bound column the rest of the plan probes — so tuples sharing
a join key land on the same worker and their duplicate derivations
collapse in-worker before crossing the wire back.  Plans whose next probe
is bound only by constants or parameters (or not bound by the Δ-atom at
all) fall back to round-robin, which balances perfectly and is just as
correct.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..datalog.ast import Variable
from ..datalog.plan import RulePlan, Row, probe_columns


def first_join_key(plan: RulePlan, delta_index: int | None) -> int | None:
    """The Δ-atom column position to hash-partition on, or ``None``.

    Walks the plan order from the Δ-atom outward and returns the Δ-atom
    position of the first probe column that is bound by a Δ-atom
    variable.  ``None`` (→ round-robin) when the Δ-atom is not scheduled
    first (defensive; both planners schedule it first), when it binds no
    variables (fully constant-bound), or when no later probe joins on a
    Δ-bound variable.
    """
    order = plan.order
    if delta_index is None or not order or order[0] != delta_index:
        return None
    rule = plan.rule
    delta_atom = rule.body[delta_index]
    positions: dict[Variable, int] = {}
    for position, term in enumerate(delta_atom.terms):
        if isinstance(term, Variable) and term not in positions:
            positions[term] = position
    if not positions:
        return None
    bound: set[Variable] = set(plan.params) | delta_atom.variable_set()
    for index in order[1:]:
        atom = rule.body[index]
        for column in probe_columns(atom, bound):
            term = atom.terms[column]
            if isinstance(term, Variable):
                position = positions.get(term)
                if position is not None:
                    return position
        if not atom.negated:
            bound |= atom.variable_set()
    return None


class ShardPlanner:
    """Partitions each task's Δ-tuples across ``workers`` shards."""

    __slots__ = ("workers", "_positions")

    def __init__(self, workers: int) -> None:
        self.workers = workers
        # (id(plan), delta_index) -> join-key position.  Keyed by identity
        # because the owning pool's plan registry pins every plan object.
        self._positions: dict[tuple[int, int | None], int | None] = {}

    def clear(self) -> None:
        """Drop the position cache (after a pool plan-registry reset —
        released plan objects could otherwise alias recycled ids)."""
        self._positions.clear()

    def shard_position(
        self, plan: RulePlan, delta_index: int | None
    ) -> int | None:
        key = (id(plan), delta_index)
        try:
            return self._positions[key]
        except KeyError:
            position = first_join_key(plan, delta_index)
            self._positions[key] = position
            return position

    def shard(
        self,
        plan: RulePlan,
        delta_index: int | None,
        rows: Iterable[Row],
    ) -> list[list[Row]]:
        """Partition ``rows`` into one (possibly empty) list per worker."""
        workers = self.workers
        if workers == 1:
            return [list(rows)]
        buckets: list[list[Row]] = [[] for _ in range(workers)]
        position = self.shard_position(plan, delta_index)
        if position is None:
            for index, row in enumerate(rows):
                buckets[index % workers].append(row)
        else:
            for row in rows:
                buckets[hash(row[position]) % workers].append(row)
        return buckets
