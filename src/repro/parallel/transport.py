"""Measured message transport over the worker-pool pipes.

Every byte the replication protocol moves goes through this layer, so
wire volume is a first-class, queryable number instead of a guess: the
transport counts frames, bytes and (un)pickle seconds **per message
tag** in both directions.  The counters feed
``WorkerPool.stats()`` → ``ExchangeSystem.parallel_stats()`` → the serve
tier's ``/stats`` — and the replication benchmark series, which is how
the complement-shipping win stays an honest committed number on a 1-CPU
CI container where wall clock cannot show it.

Serialization discipline: a broadcast pickles its message **once** and
fans the identical frame out with ``send_bytes`` to every connection;
:meth:`MessageTransport.send_each` extends the same guarantee to
per-worker messages — workers handed the *same payload object* (e.g.
identical complement streams when a sync window contains no tagged ops)
share one frame.  Only genuinely distinct messages pay a pickle each.

The transport is deliberately pipe-shaped, not pipe-bound: everything it
needs from a connection is ``send_bytes``/``recv_bytes``, which is also
the contract a future socket-backed multi-host transport would
implement (DESIGN.md, "Replication protocol v2").
"""

from __future__ import annotations

import time

from .worker import dump_message, load_message

#: Counter keys tracked per message tag, both directions.
_COUNTER_KEYS = (
    "frames_out",
    "bytes_out",
    "pickle_s",
    "frames_in",
    "bytes_in",
    "unpickle_s",
)


class MessageTransport:
    """Instrumented framing over a set of duplex worker connections."""

    __slots__ = ("_conns", "_by_tag")

    def __init__(self, conns) -> None:
        self._conns = list(conns)
        self._by_tag: dict[str, dict[str, float]] = {}

    def _counters(self, tag: str) -> dict[str, float]:
        counters = self._by_tag.get(tag)
        if counters is None:
            counters = dict.fromkeys(_COUNTER_KEYS, 0)
            self._by_tag[tag] = counters
        return counters

    def _dump(self, message: tuple) -> bytes:
        counters = self._counters(message[0])
        started = time.perf_counter()
        frame = dump_message(message)
        counters["pickle_s"] += time.perf_counter() - started
        return frame

    # -- sending -----------------------------------------------------------

    def broadcast(self, message: tuple) -> None:
        """Pickle once, fan the identical frame out to every worker."""
        frame = self._dump(message)
        counters = self._counters(message[0])
        for conn in self._conns:
            conn.send_bytes(frame)
        counters["frames_out"] += len(self._conns)
        counters["bytes_out"] += len(frame) * len(self._conns)

    def send(self, index: int, message: tuple) -> None:
        """Send one message to one worker."""
        frame = self._dump(message)
        counters = self._counters(message[0])
        self._conns[index].send_bytes(frame)
        counters["frames_out"] += 1
        counters["bytes_out"] += len(frame)

    def send_each(self, messages) -> None:
        """Send per-worker messages, pickling each *distinct* one once.

        ``messages`` aligns with the worker connections; ``None`` skips a
        worker.  Messages that are the same object (compared by identity
        — callers share payload objects deliberately, see
        :func:`repro.storage.replication.split_op_streams`) reuse one
        frame instead of re-pickling per connection.
        """
        frames: dict[int, bytes] = {}
        for index, message in enumerate(messages):
            if message is None:
                continue
            key = id(message)
            frame = frames.get(key)
            if frame is None:
                frame = self._dump(message)
                frames[key] = frame
            counters = self._counters(message[0])
            self._conns[index].send_bytes(frame)
            counters["frames_out"] += 1
            counters["bytes_out"] += len(frame)

    # -- receiving ---------------------------------------------------------

    def recv(self, index: int, tag: str):
        """Receive one reply frame, attributed to the request ``tag``."""
        data = self._conns[index].recv_bytes()
        counters = self._counters(tag)
        counters["frames_in"] += 1
        counters["bytes_in"] += len(data)
        started = time.perf_counter()
        message = load_message(data)
        counters["unpickle_s"] += time.perf_counter() - started
        return message

    # -- diagnostics -------------------------------------------------------

    def stats(self) -> dict[str, dict[str, float]]:
        """Per-tag counter snapshot plus a ``total`` rollup.

        Each block carries the documented ``pickle_seconds`` /
        ``unpickle_seconds`` names alongside the legacy ``pickle_s`` /
        ``unpickle_s`` spellings (deprecation shims — see
        ``repro.obs.schema``)."""
        snapshot = {tag: dict(counters) for tag, counters in self._by_tag.items()}
        total = dict.fromkeys(_COUNTER_KEYS, 0)
        for counters in self._by_tag.values():
            for key in _COUNTER_KEYS:
                total[key] += counters[key]
        snapshot["total"] = total
        for counters in snapshot.values():
            counters["pickle_seconds"] = counters["pickle_s"]
            counters["unpickle_seconds"] = counters["unpickle_s"]
        return snapshot

    def __repr__(self) -> str:
        total = self.stats()["total"]
        return (
            f"<MessageTransport {len(self._conns)} conns, "
            f"{int(total['bytes_out'])}B out / {int(total['bytes_in'])}B in>"
        )
