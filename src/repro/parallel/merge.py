"""Merging a parallel round: cross-shard dedup, trust filters, insertion.

Workers return raw derived head rows (already deduplicated within each
shard).  The :class:`Merger` owns the parent-side half of the round:

* **combine** — union each task's shard results (rows that hash-partition
  to different workers can still derive the same head row through
  different Δ-tuples; set union collapses them);
* **apply** — run the engine's head filters (trust conditions — Python
  closures that never leave the parent) and feed the survivors to
  :meth:`Instance.insert_new <repro.storage.instance.Instance.insert_new>`
  task by task, in rule order, under whatever deferred-index scope the
  stratum already opened.  ``insert_new`` is the same dedup-against-the-
  database entry the sequential engine uses, so the inserted state — and
  with it every provenance-table row — is identical to a sequential
  round's.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..datalog.plan import Row
from ..storage.database import Database


class Merger:
    """Parent-side merge of one parallel stratum round."""

    __slots__ = ()

    @staticmethod
    def combine(
        task_count: int,
        task_indices: Sequence[Sequence[int]],
        worker_results: Sequence[Sequence[Sequence[Row]]],
    ) -> list[set[Row]]:
        """Union shard results per task.

        ``task_indices[w][i]`` names the task that produced worker ``w``'s
        ``i``-th result batch (assignments skip empty shards, so the
        mapping is explicit rather than positional).
        """
        merged: list[set[Row]] = [set() for _ in range(task_count)]
        for indices, results in zip(task_indices, worker_results):
            for task_index, rows in zip(indices, results):
                merged[task_index].update(rows)
        return merged

    @staticmethod
    def combine_masks(
        task_count: int,
        task_indices: Sequence[Sequence[int]],
        worker_results: Sequence[Sequence[Sequence[Row]]],
    ) -> "list[dict[Row, int]]":
        """Union shard results per task, remembering who produced what.

        Like :meth:`combine`, but each task's result is a ``row ->
        producer-worker bitmask`` mapping (bit ``w`` set when worker ``w``
        derived the row in some shard).  The masks drive complement
        shipping: rows are journaled under a
        :meth:`~repro.storage.database.Database.tag_changes` origin so the
        pool's sync can skip shipping them back to their producers.
        """
        merged: "list[dict[Row, int]]" = [{} for _ in range(task_count)]
        for worker_index, (indices, results) in enumerate(
            zip(task_indices, worker_results)
        ):
            bit = 1 << worker_index
            for task_index, rows in zip(indices, results):
                target = merged[task_index]
                for row in rows:
                    target[row] = target.get(row, 0) | bit
        return merged

    @staticmethod
    def apply(
        db: Database,
        contributions: Sequence[
            tuple[str, Sequence[Row], Callable[[Row], bool] | None]
        ],
    ) -> dict[str, set[Row]]:
        """Filter and insert one round's merged derivations.

        ``contributions`` is ordered like the round's tasks: one
        ``(head predicate, merged rows, head filter)`` triple per task.
        Returns the per-predicate *effective* insertions — the next
        round's Δ-seeds, exactly as the sequential loop computes them.
        """
        next_deltas: dict[str, set[Row]] = {}
        for predicate, rows, head_filter in contributions:
            if head_filter is not None:
                rows = [row for row in rows if head_filter(row)]
            if not rows:
                continue
            added = db[predicate].insert_new(rows)
            if added:
                next_deltas.setdefault(predicate, set()).update(added)
        return next_deltas

    @staticmethod
    def apply_retractions(
        db: Database,
        contributions: Sequence[tuple[str, Sequence[Row]]],
    ) -> dict[str, set[Row]]:
        """The negative-weight counterpart of :meth:`apply`.

        Feeds one round's merged retraction rows (the weighted core's
        semijoin results — see ``repro.core.weighted``) to
        :meth:`Instance.delete_existing
        <repro.storage.instance.Instance.delete_existing>` and returns
        the per-predicate *effective* deletions: the rows that were
        actually present, which seed the next negative-delta round the
        same way :meth:`apply`'s insertions seed a positive one.
        """
        removed: dict[str, set[Row]] = {}
        for predicate, rows in contributions:
            gone = db[predicate].delete_existing(set(rows))
            if gone:
                removed.setdefault(predicate, set()).update(gone)
        return removed
