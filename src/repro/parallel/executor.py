"""The parallel round driver the engine dispatches to.

:class:`ParallelExecutor` sits behind the engine interface: the
semi-naive engine hands it one stratum round — a list of ``(plan, Δ body
index, Δ rows)`` tasks, one per (rule, Δ-occurrence) pair with a
non-empty Δ — and gets back each task's derived head rows, merged across
shards.  The executor owns the moving parts:

1. open/reuse the pool's replication session for the database and ship
   the pending change-feed delta (replicas catch up to exactly the
   round-start state — which is also why a parallel round is
   deterministic: every task is evaluated against that snapshot, and any
   derivation a sequential round would have found through a mid-round
   insertion arrives one round later through the Δ-seeds instead; the
   fixpoint is identical);
2. register plans (new ones ship once) and hash-shard each task's Δ-rows
   (:class:`~repro.parallel.shard.ShardPlanner`);
3. dispatch one message per engaged worker, collect, and combine via
   :class:`~repro.parallel.merge.Merger`.

Failures (a worker dying, an unpicklable value, a sandbox that forbids
subprocesses) permanently disable the executor and return ``None``; the
engine then re-runs the *same* round sequentially — nothing has been
inserted yet at that point, so the fallback is exact, and every later
round stays sequential.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Sequence

from .merge import Merger
from .pool import WorkerPool
from .shard import ShardPlanner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalog.plan import RulePlan, Row
    from ..storage.database import Database

#: One round task: (plan, Δ body-atom index, Δ rows).
Task = "tuple[RulePlan, int | None, Sequence[Row]]"


class ParallelExecutor:
    """Shard-parallel evaluation of stratum rounds over a worker pool."""

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        self.workers = workers
        self.pool = WorkerPool(workers, start_method)
        self.sharder = ShardPlanner(workers)
        self.available = True
        #: Rounds successfully evaluated through the pool (diagnostics).
        self.rounds = 0

    def run_round(
        self,
        db: "Database",
        tasks: Sequence[Task],
        relevant: "frozenset[str] | None" = None,
    ) -> "list[list[Row]] | None":
        """Evaluate one stratum round; per-task merged rows, or ``None``.

        ``relevant`` is the body-predicate set of the running program —
        the delta-shipping filter (head-only relations never cross the
        wire).  ``None`` means the pool failed (now permanently disabled)
        and the caller must evaluate the round sequentially.
        """
        if not self.available:
            return None
        try:
            return self._run_round(db, tasks, relevant)
        except Exception as error:  # noqa: BLE001 — any failure disables
            self.available = False
            try:
                self.pool.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
            warnings.warn(
                "parallel evaluation disabled after a worker-pool failure; "
                f"continuing sequentially: {error}",
                RuntimeWarning,
                stacklevel=3,
            )
            return None

    def _run_round(
        self,
        db: "Database",
        tasks: Sequence[Task],
        relevant: "frozenset[str] | None",
    ) -> "list[list[Row]]":
        pool = self.pool
        if pool.reset_plans_if_full():
            self.sharder.clear()
        session = pool.session_for(db)
        if not pool.sync(session, relevant):
            # A previously stale relation became body-relevant: no delta
            # can repair it, so rebuild the session from a fresh snapshot.
            pool.end_session(db)
            session = pool.session_for(db)
            pool.sync(session, relevant)
        workers = self.workers
        payloads: list[list] = [[] for _ in range(workers)]
        indices: list[list[int]] = [[] for _ in range(workers)]
        for task_index, (plan, delta_index, rows) in enumerate(tasks):
            pid = pool.register_plan(plan)
            shards = self.sharder.shard(plan, delta_index, rows)
            for worker_index, shard in enumerate(shards):
                if shard:
                    payloads[worker_index].append((pid, delta_index, shard))
                    indices[worker_index].append(task_index)
        pool.flush_plans()
        worker_results = pool.evaluate(session, payloads)
        merged = Merger.combine(len(tasks), indices, worker_results)
        self.rounds += 1
        return [list(rows) for rows in merged]

    def close(self) -> None:
        """Shut the pool down; the executor becomes unavailable."""
        self.available = False
        self.pool.close()

    def __repr__(self) -> str:
        state = "available" if self.available else "disabled"
        return (
            f"<ParallelExecutor {self.workers} workers ({state}), "
            f"{self.rounds} rounds>"
        )
