"""The parallel round driver the engine dispatches to.

:class:`ParallelExecutor` sits behind the engine interface: the
semi-naive engine hands it one stratum round — a list of ``(plan, Δ body
index, Δ rows, head predicate, head filter)`` tasks, one per (rule,
Δ-occurrence) pair with a non-empty Δ — and the executor runs the whole
round: ship deltas, evaluate across shards, merge, filter, and insert.
It owns the moving parts:

1. open/reuse the pool's replication session for the database and ship
   the pending change-feed delta (replicas catch up to exactly the
   round-start state — which is also why a parallel round is
   deterministic: every task is evaluated against that snapshot, and any
   derivation a sequential round would have found through a mid-round
   insertion arrives one round later through the Δ-seeds instead; the
   fixpoint is identical);
2. register plans (new ones ship once) and hash-shard each task's Δ-rows
   (:class:`~repro.parallel.shard.ShardPlanner`);
3. dispatch one message per engaged worker, collect, and combine with
   producer-worker masks (:meth:`~repro.parallel.merge.Merger.
   combine_masks`);
4. apply the merged round — trust filters, then insertion/deletion under
   a :meth:`~repro.storage.database.Database.tag_changes` scope carrying
   ``(round token, producer bitmask)``, so the next sync ships each
   worker only the complement of what it already derived (replication
   protocol v2) plus its rejection acks.

Failures during the *evaluation* half (a worker dying, an unpicklable
value, a sandbox that forbids subprocesses) permanently disable the
executor and return ``None``; the engine then re-runs the *same* round
sequentially — nothing has been inserted yet at that point, so the
fallback is exact, and every later round stays sequential.  Failures
during the *apply* half propagate instead (exactly like the sequential
loop's insert errors): state may be partially applied, so a silent
sequential re-run would be wrong.
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING, Callable, Sequence

from ..obs import tracing as _tracing
from .merge import Merger
from .pool import WorkerPool
from .shard import ShardPlanner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalog.plan import RulePlan, Row
    from ..storage.database import Database

#: One insertion-round task:
#: (plan, Δ body-atom index, Δ rows, head predicate, head filter).
Task = (
    "tuple[RulePlan, int | None, Sequence[Row], str,"
    " Callable[[Row], bool] | None]"
)

#: One retraction-round task: (plan, Δ body-atom index, Δ rows); the
#: target relation is the plan's head predicate (the provenance table).
RetractionTask = "tuple[RulePlan, int | None, Sequence[Row]]"


class ParallelExecutor:
    """Shard-parallel evaluation of stratum rounds over a worker pool."""

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        self.workers = workers
        self.pool = WorkerPool(workers, start_method)
        self.sharder = ShardPlanner(workers)
        self.available = True
        #: Rounds successfully evaluated through the pool (diagnostics).
        self.rounds = 0
        #: Always-on merge-phase clocks: cumulative time spent filtering
        #: and applying worker-produced rows (the exchange report's
        #: "merge" phase reads their movement).
        self.merge_wall_seconds = 0.0
        self.merge_cpu_seconds = 0.0

    # -- round drivers -----------------------------------------------------

    def run_insertion_round(
        self,
        db: "Database",
        tasks: "Sequence[Task]",
        relevant: "frozenset[str] | None" = None,
    ) -> "dict[str, set[Row]] | None":
        """Evaluate and apply one insertion round.

        Returns the per-predicate *effective* insertions (the next
        round's Δ-seeds, exactly as the sequential loop computes them),
        or ``None`` when the pool failed before anything was applied (now
        permanently disabled) and the caller must run the round
        sequentially.  ``relevant`` is the body-predicate set of the
        running program — the delta-shipping filter.
        """
        evaluated = self._evaluate_round(
            db, [(plan, index, rows) for plan, index, rows, _, _ in tasks], relevant
        )
        if evaluated is None:
            return None
        session, token, retain, masks = evaluated
        return self._apply_insertions(db, session, token, retain, tasks, masks)

    def run_retraction_round(
        self,
        db: "Database",
        tasks: "Sequence[RetractionTask]",
        relevant: "frozenset[str] | None" = None,
    ) -> "dict[str, set[Row]] | None":
        """Evaluate and apply one retraction-semijoin round.

        The weighted maintenance core's negative half: each task's plan
        probes for doomed provenance rows; results merge per head
        relation and leave through ``delete_existing`` under origin tags,
        so workers drop their own retained retraction rows without the
        parent re-shipping them.  (No rejection acks: deleting a
        never-present row is a no-op on both sides.)  Returns the
        per-relation effective deletions, or ``None`` on pool failure
        before any mutation.
        """
        evaluated = self._evaluate_round(db, tasks, relevant)
        if evaluated is None:
            return None
        _session, token, retain, masks = evaluated
        merged: "dict[str, dict[Row, int]]" = {}
        for (plan, _, _), rowmask in zip(tasks, masks):
            target = merged.setdefault(plan.rule.head.predicate, {})
            for row, mask in rowmask.items():
                target[row] = target.get(row, 0) | mask
        removed: "dict[str, set[Row]]" = {}
        for relation, rowmask in merged.items():
            instance = db[relation]
            if retain:
                for mask, group in self._group_by_mask(rowmask).items():
                    with db.tag_changes((token, mask)):
                        gone = instance.delete_existing(set(group))
                    if gone:
                        removed.setdefault(relation, set()).update(gone)
            else:
                gone = instance.delete_existing(set(rowmask))
                if gone:
                    removed.setdefault(relation, set()).update(gone)
        return removed

    # -- internals ---------------------------------------------------------

    def _evaluate_round(
        self,
        db: "Database",
        raw_tasks: "Sequence[RetractionTask]",
        relevant: "frozenset[str] | None",
    ):
        """Sync, shard, dispatch, and mask-merge one round.

        Returns ``(session, token, retain, per-task row masks)``, or
        ``None`` after any failure (the executor is then disabled and the
        pool closed; nothing has been mutated, so a sequential re-run of
        the same round is exact).
        """
        if not self.available:
            return None
        try:
            pool = self.pool
            if pool.reset_plans_if_full():
                self.sharder.clear()
            session = pool.session_for(db)
            if not pool.sync(session, relevant):
                # A previously stale relation became body-relevant: no
                # delta can repair it, so rebuild the session from a
                # fresh snapshot.
                pool.end_session(db)
                session = pool.session_for(db)
                pool.sync(session, relevant)
            workers = self.workers
            payloads: list[list] = [[] for _ in range(workers)]
            indices: list[list[int]] = [[] for _ in range(workers)]
            for task_index, (plan, delta_index, rows) in enumerate(raw_tasks):
                pid = pool.register_plan(plan)
                shards = self.sharder.shard(plan, delta_index, rows)
                for worker_index, shard in enumerate(shards):
                    if shard:
                        payloads[worker_index].append((pid, delta_index, shard))
                        indices[worker_index].append(task_index)
            pool.flush_plans()
            token = pool.next_round_token()
            retain = pool.protocol >= 2
            worker_results = pool.evaluate(session, payloads, token, retain)
            masks = Merger.combine_masks(len(raw_tasks), indices, worker_results)
            self.rounds += 1
            return session, token, retain, masks
        except Exception as error:  # noqa: BLE001 — any failure disables
            self.available = False
            try:
                self.pool.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
            warnings.warn(
                "parallel evaluation disabled after a worker-pool failure; "
                f"continuing sequentially: {error}",
                RuntimeWarning,
                stacklevel=4,
            )
            return None

    @staticmethod
    def _group_by_mask(rowmask: "dict[Row, int]") -> "dict[int, list[Row]]":
        groups: "dict[int, list[Row]]" = {}
        for row, mask in rowmask.items():
            groups.setdefault(mask, []).append(row)
        return groups

    def _apply_insertions(
        self,
        db: "Database",
        session,
        token: int,
        retain: bool,
        tasks: "Sequence[Task]",
        masks: "Sequence[dict[Row, int]]",
    ) -> "dict[str, set[Row]]":
        """Filter and insert one round's merged derivations.

        The parallel counterpart of :meth:`Merger.apply
        <repro.parallel.merge.Merger.apply>`: task by task, in rule
        order, run the head filter and feed survivors to ``insert_new``
        — grouped by producer mask and journaled under origin tags when
        complement shipping is on.  Afterwards, compute each worker's
        rejection acks: rows it derived for a head that survived *no*
        task's filter (a row accepted by any same-head task is present,
        so its producer must not skip it).
        """
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        span = (
            _tracing.start("merge", tasks=len(tasks))
            if _tracing.ENABLED
            else None
        )
        try:
            return self._apply_insertions_inner(
                db, session, token, retain, tasks, masks
            )
        finally:
            if span is not None:
                _tracing.finish(span)
            self.merge_wall_seconds += time.perf_counter() - wall0
            self.merge_cpu_seconds += time.process_time() - cpu0

    def _apply_insertions_inner(
        self,
        db: "Database",
        session,
        token: int,
        retain: bool,
        tasks: "Sequence[Task]",
        masks: "Sequence[dict[Row, int]]",
    ) -> "dict[str, set[Row]]":
        next_deltas: "dict[str, set[Row]]" = {}
        produced: "dict[str, dict[Row, int]]" = {}
        survivors: "dict[str, set[Row]]" = {}
        for (plan, _, _, head, head_filter), rowmask in zip(tasks, masks):
            if retain and rowmask:
                target = produced.setdefault(head, {})
                for row, mask in rowmask.items():
                    target[row] = target.get(row, 0) | mask
            if head_filter is not None:
                rowmask = {
                    row: mask
                    for row, mask in rowmask.items()
                    if head_filter(row)
                }
            if not rowmask:
                continue
            instance = db[head]
            if retain:
                survivors.setdefault(head, set()).update(rowmask)
                for mask, group in self._group_by_mask(rowmask).items():
                    with db.tag_changes((token, mask)):
                        added = instance.insert_new(group)
                    if added:
                        next_deltas.setdefault(head, set()).update(added)
            else:
                added = instance.insert_new(list(rowmask))
                if added:
                    next_deltas.setdefault(head, set()).update(added)
        if retain:
            rejections = session.rejections
            for head, rowmask in produced.items():
                accepted = survivors.get(head, ())
                by_worker: "dict[int, list[Row]]" = {}
                for row, mask in rowmask.items():
                    if row in accepted:
                        continue
                    worker = 0
                    while mask:
                        if mask & 1:
                            by_worker.setdefault(worker, []).append(row)
                        mask >>= 1
                        worker += 1
                for worker, rows in by_worker.items():
                    rejections[(token, head, worker)] = tuple(rows)
        return next_deltas

    def close(self) -> None:
        """Shut the pool down; the executor becomes unavailable."""
        self.available = False
        self.pool.close()

    def stats(self) -> dict:
        """Executor + pool + transport counters (see ``WorkerPool.stats``)."""
        data = {
            "available": self.available,
            "rounds": self.rounds,
            "merge_wall_seconds": self.merge_wall_seconds,
            "merge_cpu_seconds": self.merge_cpu_seconds,
        }
        data.update(self.pool.stats())
        return data

    def __repr__(self) -> str:
        state = "available" if self.available else "disabled"
        return (
            f"<ParallelExecutor {self.workers} workers ({state}), "
            f"{self.rounds} rounds>"
        )
