"""Structured tracing of update exchange.

A *trace* is the tree of spans produced by one top-level operation
(normally one publish): ``exchange → stratum → round →
rule-evaluation``, with ``merge`` / ``index-settle`` / ``wal-append`` /
``snapshot-refresh`` spans hanging off wherever those phases run.
Each span records wall + CPU time, a row count, and parent/child span
ids.

Cost model
----------
Tracing must be near-zero-cost when off, because the span hooks sit on
the engine hot path.  The contract for instrumented code is::

    from repro.obs import tracing as _tracing
    ...
    span = _tracing.start("round") if _tracing.enabled() else None
    ...
    if span is not None:
        span.rows = n
        _tracing.finish(span)

i.e. one module-attribute read and one ``if`` per potential span, no
closure or context-manager allocation when disabled.

Output
------
- The last N completed traces are retained in memory
  (:func:`recent_traces`) for the serving tier and tests.
- With a sink configured (``REPRO_TRACE=path`` in the environment, or
  ``--trace path`` on the CLI), every completed trace is appended to
  the file as JSON lines — one line per span, grouped by trace.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Iterator, Optional

__all__ = [
    "Span",
    "enabled",
    "enable",
    "disable",
    "start",
    "finish",
    "span",
    "recent_traces",
    "clear",
]

#: Module-level fast-path flag.  Hot paths read this (via
#: ``enabled()`` or directly) before doing any span work.
ENABLED = False

#: How many completed traces to retain in memory.
RETAIN_DEFAULT = 8


class Span:
    """One timed interval in a trace tree."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "start_wall",
        "start_cpu",
        "end_wall",
        "end_cpu",
        "rows",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: Optional[dict],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_wall = time.perf_counter()
        self.start_cpu = time.process_time()
        self.end_wall = 0.0
        self.end_cpu = 0.0
        self.rows: Optional[int] = None

    @property
    def wall_seconds(self) -> float:
        return self.end_wall - self.start_wall

    @property
    def cpu_seconds(self) -> float:
        return self.end_cpu - self.start_cpu

    def to_dict(self) -> dict:
        record = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "wall_seconds": self.end_wall - self.start_wall,
            "cpu_seconds": self.end_cpu - self.start_cpu,
        }
        if self.rows is not None:
            record["rows"] = self.rows
        if self.attrs:
            record["attrs"] = self.attrs
        return record


_lock = threading.Lock()
_local = threading.local()
_span_ids = itertools.count(1)
_trace_ids = itertools.count(1)
_recent: deque = deque(maxlen=RETAIN_DEFAULT)
_sink_path: Optional[str] = None
_sink = None


def _state():
    """Per-thread (stack, completed-spans-buffer) pair."""
    state = getattr(_local, "state", None)
    if state is None:
        state = ([], [])
        _local.state = state
    return state


def enabled() -> bool:
    return ENABLED


def enable(
    sink_path: Optional[str] = None, retain: Optional[int] = None
) -> None:
    """Turn tracing on, optionally writing completed traces to
    ``sink_path`` as JSONL."""
    global ENABLED, _sink_path, _sink, _recent
    with _lock:
        if retain is not None and retain != _recent.maxlen:
            _recent = deque(_recent, maxlen=max(1, int(retain)))
        if sink_path:
            if _sink is not None and sink_path != _sink_path:
                _sink.close()
                _sink = None
            if _sink is None:
                _sink = open(sink_path, "a", encoding="utf-8")
                _sink_path = sink_path
        ENABLED = True


def disable() -> None:
    """Turn tracing off and close any sink."""
    global ENABLED, _sink, _sink_path
    with _lock:
        ENABLED = False
        if _sink is not None:
            _sink.close()
            _sink = None
        _sink_path = None


def clear() -> None:
    """Drop retained traces (test isolation)."""
    with _lock:
        _recent.clear()


def start(name: str, **attrs) -> Span:
    """Open a span as a child of the current thread's innermost open
    span (or as a new trace root)."""
    stack, _buffer = _state()
    if stack:
        parent = stack[-1]
        trace_id = parent.trace_id
        parent_id = parent.span_id
    else:
        trace_id = next(_trace_ids)
        parent_id = None
    span_obj = Span(trace_id, next(_span_ids), parent_id, name, attrs or None)
    stack.append(span_obj)
    return span_obj


def finish(span_obj: Span, rows: Optional[int] = None) -> None:
    """Close a span.  Closing a root span completes the trace: it is
    retained in memory and flushed to the sink (if any)."""
    span_obj.end_wall = time.perf_counter()
    span_obj.end_cpu = time.process_time()
    if rows is not None:
        span_obj.rows = rows
    stack, buffer = _state()
    # Tolerate imbalance (an exception may have skipped inner
    # ``finish`` calls): pop everything above the span being closed.
    while stack:
        top = stack.pop()
        if top is span_obj:
            break
    buffer.append(span_obj)
    if span_obj.parent_id is None:
        trace = [s for s in buffer if s.trace_id == span_obj.trace_id]
        del buffer[:]
        _complete(trace)


class _SpanContext:
    __slots__ = ("_span",)

    def __init__(self, span_obj: Optional[Span]) -> None:
        self._span = span_obj

    def __enter__(self) -> Optional[Span]:
        return self._span

    def __exit__(self, *exc) -> None:
        if self._span is not None:
            finish(self._span)


def span(name: str, **attrs) -> _SpanContext:
    """Context-manager convenience for non-hot-path call sites."""
    return _SpanContext(start(name, **attrs) if ENABLED else None)


def _complete(trace: list) -> None:
    records = [s.to_dict() for s in trace]
    with _lock:
        _recent.append(records)
        if _sink is not None:
            try:
                for record in records:
                    _sink.write(json.dumps(record, default=str) + "\n")
                _sink.flush()
            except ValueError:  # sink closed concurrently
                pass


def recent_traces() -> list:
    """The last N completed traces, oldest first.  Each trace is a
    list of span dicts."""
    with _lock:
        return [list(trace) for trace in _recent]


def iter_spans(trace: list) -> Iterator[dict]:
    return iter(trace)


# Environment opt-in: REPRO_TRACE=/path/to/file.jsonl (or
# REPRO_TRACE=1 for in-memory-only tracing).
_env = os.environ.get("REPRO_TRACE", "").strip()
if _env:
    enable(None if _env in ("1", "true", "yes", "on") else _env)
del _env
