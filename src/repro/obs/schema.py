"""The documented stats schema, and normalization of legacy keys.

Every stats surface in the system (``/stats`` on a serve node,
``ExchangeSystem.parallel_stats()``, durability counters) reports
snake_case keys following these conventions:

- **Counters** end in ``_total`` in the metrics registry; in JSON
  stats blobs they keep their plain names (``requests``, ``appended``)
  because those names predate this module and are pinned by clients.
- **Durations** end in ``_seconds`` (``pickle_seconds``,
  ``timeout_seconds``, ``settle_wall_seconds``).
- **Sizes** end in ``_bytes`` / ``_rows`` / ``_kb``.
- Nested blocks are one level deep and named after the layer:
  ``server``, ``admission``, ``snapshot``, ``engine``, ``indexes``,
  ``parallel``, ``durability``.

Legacy keys kept as deprecation shims (old → new):

========================  ==========================
legacy key                normalized key
========================  ==========================
``pickle_s``              ``pickle_seconds``
``unpickle_s``            ``unpickle_seconds``
``timeout`` (admission)   ``timeout_seconds``
``wal_seq`` (durability)  ``wal_last_seq``
top-level ``requests``    ``server.requests``
top-level ``errors``      ``server.errors``
top-level ``publishes``   ``server.publishes``
========================  ==========================

:func:`normalize` rewrites a stats blob to the normalized names
(dropping the legacy spellings) — used by ``python -m repro stats``
so operators see one schema regardless of node version.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["LEGACY_KEYS", "normalize"]

#: Flat map of legacy key name → normalized key name.  Applied at any
#: nesting depth; collisions resolve in favour of the normalized key.
LEGACY_KEYS = {
    "pickle_s": "pickle_seconds",
    "unpickle_s": "unpickle_seconds",
    "timeout": "timeout_seconds",
    "wal_seq": "wal_last_seq",
}

#: Legacy top-level serve keys that moved into the ``server`` block.
LEGACY_SERVER_KEYS = ("requests", "errors", "publishes", "pending_edits")


def normalize(stats: Mapping) -> dict:
    """Return a copy of ``stats`` with legacy key spellings rewritten
    to the documented schema.  Unknown keys pass through untouched."""
    out = _rewrite(stats)
    # Fold legacy top-level serve counters into the ``server`` block
    # when both spellings are present (new nodes emit both).
    if isinstance(out.get("server"), dict):
        for key in LEGACY_SERVER_KEYS:
            if key in out and key in out["server"]:
                out.pop(key)
    return out


def _rewrite(value):
    if isinstance(value, Mapping):
        out = {}
        for key, inner in value.items():
            new_key = LEGACY_KEYS.get(key, key)
            rewritten = _rewrite(inner)
            if new_key in out and new_key != key:
                continue  # normalized spelling already present — keep it
            out[new_key] = rewritten
        return out
    if isinstance(value, list):
        return [_rewrite(item) for item in value]
    return value
