"""Process-wide metrics registry.

Every layer of the system keeps its hot-path counters as plain Python
ints/floats on the owning object (an increment must stay a single
``+= 1`` — no locks, no dict lookups through an abstraction).  This
module provides the *aggregation* seam on top of those counters:

- :class:`MetricsRegistry` — a thread-safe registry of metric
  *families* (counter / gauge / histogram, optionally labeled) plus
  weakref-tracked *collectors* that pull samples out of live objects at
  scrape time.
- Prometheus text exposition via :meth:`MetricsRegistry.render` —
  served by ``GET /metrics`` on a serve node.
- :data:`REGISTRY`, the process-global default instance.

Two ways to publish a metric:

1. **Direct instruments** (``registry.counter(...)``,
   ``registry.histogram(...)``) — used for new series that have no
   pre-existing home, e.g. per-route request latency in the serving
   tier.  These are mutated through the family objects and are
   thread-safe.
2. **Collectors** (``registry.register(owner, collect_fn)``) — used to
   surface the existing per-instance counters (engine stats, pool
   replication counters, WAL appends, ...) without touching their
   mutation sites.  ``collect_fn(owner)`` is called at scrape time and
   yields :class:`Sample` tuples; the owner is held via weakref so
   short-lived objects (the thousands of engines the test-suite
   creates) never leak.  Samples from several live owners that share a
   series name are summed into one series.
"""

from __future__ import annotations

import bisect
import math
import threading
import weakref
from typing import Callable, Iterable, Iterator, NamedTuple, Sequence

__all__ = [
    "KIND_COUNTER",
    "KIND_GAUGE",
    "KIND_HISTOGRAM",
    "DEFAULT_LATENCY_BUCKETS",
    "MetricError",
    "Sample",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
]

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"

#: Default latency bucket boundaries (seconds). Chosen to resolve both
#: sub-millisecond point lookups and multi-second publish barriers.
DEFAULT_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class MetricError(ValueError):
    """Raised on inconsistent registration (kind/label mismatch)."""


class Sample(NamedTuple):
    """One scraped value of one series.

    ``value`` is a number for counters/gauges.  For histograms it is a
    ``(boundaries, bucket_counts, sum, count)`` quadruple where
    ``bucket_counts`` has one entry per boundary plus a final ``+Inf``
    entry (cumulative counts are computed at render time).
    """

    name: str
    kind: str
    help: str
    labels: tuple  # tuple of (label_name, label_value) pairs
    value: object


def _label_items(
    labelnames: Sequence[str], labelvalues: Sequence[object]
) -> tuple:
    return tuple(
        (str(n), str(v)) for n, v in zip(labelnames, labelvalues)
    )


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-boundary histogram.

    ``boundaries`` are inclusive upper bounds in ascending order; an
    implicit ``+Inf`` bucket is appended.  ``observe`` is O(log n) in
    the number of buckets.
    """

    __slots__ = ("boundaries", "_counts", "_sum", "_count", "_lock")

    def __init__(self, boundaries: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise MetricError("histogram needs at least one boundary")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError(
                "histogram boundaries must be strictly increasing"
            )
        self.boundaries = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        # ``le`` semantics: the bucket for ``value`` is the first
        # boundary >= value; values above every boundary land in +Inf.
        index = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> tuple:
        with self._lock:
            return (
                self.boundaries,
                tuple(self._counts),
                self._sum,
                self._count,
            )

    @property
    def value(self) -> tuple:
        return self.snapshot()


_INSTRUMENTS = {
    KIND_COUNTER: Counter,
    KIND_GAUGE: Gauge,
    KIND_HISTOGRAM: Histogram,
}


class MetricFamily:
    """A named metric with a fixed label set and one child per value
    combination.  A label-less family owns exactly one child and
    proxies the instrument methods (``inc``/``set``/``observe``) to
    it, so ``registry.counter("x").inc()`` just works.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        boundaries: Sequence[float] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(str(n) for n in labelnames)
        self._boundaries = tuple(boundaries) if boundaries else None
        self._children: dict[tuple, object] = {}
        self._lock = threading.Lock()
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.kind == KIND_HISTOGRAM:
            return Histogram(self._boundaries or DEFAULT_LATENCY_BUCKETS)
        return _INSTRUMENTS[self.kind]()

    def labels(self, *values: object):
        if len(values) != len(self.labelnames):
            raise MetricError(
                f"{self.name} expects labels {self.labelnames!r}, "
                f"got {len(values)} value(s)"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    # -- proxies for the label-less case ---------------------------------
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self):
        return self.labels().value

    def samples(self) -> Iterator[Sample]:
        with self._lock:
            items = list(self._children.items())
        for key, child in items:
            yield Sample(
                self.name,
                self.kind,
                self.help,
                _label_items(self.labelnames, key),
                child.value,
            )


class MetricsRegistry:
    """Thread-safe registry of metric families and collectors."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, MetricFamily] = {}
        # collector id -> (weakref-to-owner, collect_fn)
        self._collectors: dict[int, tuple] = {}
        self._next_collector = 0

    # -- family constructors (idempotent) --------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        boundaries: Sequence[float] | None = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != tuple(
                    str(n) for n in labels
                ):
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.labelnames!r}"
                    )
                return family
            family = MetricFamily(name, kind, help, labels, boundaries)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, KIND_COUNTER, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, KIND_GAUGE, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        if not buckets:
            raise MetricError("histogram needs at least one boundary")
        return self._family(name, KIND_HISTOGRAM, help, labels, buckets)

    # -- collectors ------------------------------------------------------
    def register(self, owner: object, collect: Callable) -> None:
        """Register ``collect(owner) -> Iterable[Sample]`` for a live
        object.  The owner is held by weakref; collection stops (and
        the slot is reclaimed) when it is garbage collected.
        """
        with self._lock:
            key = self._next_collector
            self._next_collector += 1

            def _cleanup(_ref, _self=weakref.ref(self), _key=key):
                registry = _self()
                if registry is not None:
                    with registry._lock:
                        registry._collectors.pop(_key, None)

            self._collectors[key] = (weakref.ref(owner, _cleanup), collect)

    def collect(self) -> list[Sample]:
        """Scrape every family and collector, summing series that share
        a ``(name, labels)`` identity across live owners."""
        with self._lock:
            families = list(self._families.values())
            collectors = list(self._collectors.values())
        samples: list[Sample] = []
        for family in families:
            samples.extend(family.samples())
        for ref, collect in collectors:
            owner = ref()
            if owner is None:
                continue
            try:
                samples.extend(collect(owner))
            except Exception:  # a broken collector must not kill a scrape
                continue
        return _merge(samples)

    # -- output ----------------------------------------------------------
    def render(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: list[str] = []
        by_name: dict[str, list[Sample]] = {}
        order: list[str] = []
        for sample in self.collect():
            if sample.name not in by_name:
                by_name[sample.name] = []
                order.append(sample.name)
            by_name[sample.name].append(sample)
        for name in order:
            group = by_name[name]
            kind = group[0].kind
            help_text = next((s.help for s in group if s.help), "")
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            for sample in group:
                if kind == KIND_HISTOGRAM:
                    lines.extend(_render_histogram(sample))
                else:
                    lines.append(
                        f"{name}{_render_labels(sample.labels)} "
                        f"{_format_value(sample.value)}"
                    )
        # Labeled families with no children yet still announce their
        # HELP/TYPE header, so scrapers discover every family up front.
        with self._lock:
            families = list(self._families.values())
        for family in families:
            if family.name in by_name:
                continue
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}"
                )
            lines.append(f"# TYPE {family.name} {family.kind}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """Flat ``{name: value}`` (or ``{name: {label_repr: value}}``
        for labeled series) view — handy for tests and the CLI."""
        out: dict = {}
        for sample in self.collect():
            if not sample.labels:
                out[sample.name] = sample.value
            else:
                label_repr = ",".join(f"{k}={v}" for k, v in sample.labels)
                out.setdefault(sample.name, {})[label_repr] = sample.value
        return out

    def reset(self) -> None:
        """Drop every family and collector (test isolation only)."""
        with self._lock:
            self._families.clear()
            self._collectors.clear()


def _merge(samples: Iterable[Sample]) -> list[Sample]:
    merged: dict[tuple, Sample] = {}
    order: list[tuple] = []
    for sample in samples:
        key = (sample.name, sample.labels)
        existing = merged.get(key)
        if existing is None:
            merged[key] = sample
            order.append(key)
        elif sample.kind == KIND_HISTOGRAM:
            bounds_a, counts_a, sum_a, count_a = existing.value
            bounds_b, counts_b, sum_b, count_b = sample.value
            if bounds_a == bounds_b:
                merged[key] = existing._replace(
                    value=(
                        bounds_a,
                        tuple(a + b for a, b in zip(counts_a, counts_b)),
                        sum_a + sum_b,
                        count_a + count_b,
                    )
                )
        else:
            merged[key] = existing._replace(
                value=existing.value + sample.value
            )
    return [merged[key] for key in order]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: tuple, extra: tuple = ()) -> str:
    items = tuple(labels) + tuple(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in items)
    return "{" + body + "}"


def _format_value(value: object) -> str:
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _render_histogram(sample: Sample) -> Iterator[str]:
    boundaries, counts, total, count = sample.value
    cumulative = 0
    for bound, bucket_count in zip(boundaries, counts):
        cumulative += bucket_count
        yield (
            f"{sample.name}_bucket"
            f"{_render_labels(sample.labels, (('le', _format_value(bound)),))}"
            f" {cumulative}"
        )
    cumulative += counts[-1]
    yield (
        f"{sample.name}_bucket"
        f"{_render_labels(sample.labels, (('le', '+Inf'),))} {cumulative}"
    )
    yield f"{sample.name}_sum{_render_labels(sample.labels)} {_format_value(total)}"
    yield f"{sample.name}_count{_render_labels(sample.labels)} {count}"


#: The process-global default registry.  Layers register collectors
#: here at construction; ``GET /metrics`` renders it.
REGISTRY = MetricsRegistry()
