"""repro.obs — unified telemetry: metrics registry, exchange tracing,
and the stats schema.

See :mod:`repro.obs.metrics`, :mod:`repro.obs.tracing`,
:mod:`repro.obs.schema`, and the "Observability" section of DESIGN.md.
"""

from __future__ import annotations

from . import metrics, schema, tracing
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricError,
    MetricsRegistry,
    REGISTRY,
    Sample,
)

__all__ = [
    "metrics",
    "tracing",
    "schema",
    "REGISTRY",
    "MetricsRegistry",
    "MetricError",
    "Sample",
    "DEFAULT_LATENCY_BUCKETS",
    "bootstrap_default_metrics",
]

_BOOTSTRAPPED = False


def bootstrap_default_metrics(registry: MetricsRegistry = REGISTRY) -> None:
    """Pre-register the core metric families with zero values.

    Collectors only produce samples while their owning objects are
    alive, so a freshly booted node would otherwise expose an empty
    ``/metrics`` page for layers that have not constructed yet (no
    durability directory, no worker pool).  Creating the label-less
    families up front guarantees every documented family renders —
    collector samples for the same series names are summed on top.
    """
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED and registry is REGISTRY:
        return
    counter = registry.counter
    gauge = registry.gauge
    # engine
    counter("repro_engine_rounds_total", "Semi-naive fixpoint rounds run")
    counter(
        "repro_engine_rule_applications_total",
        "Rule body evaluations across all rounds",
    )
    counter(
        "repro_engine_tuples_inserted_total",
        "Tuples inserted by fixpoint evaluation",
    )
    counter("repro_engine_plan_cache_hits_total", "Engine plan-cache hits")
    counter(
        "repro_engine_plan_cache_misses_total", "Engine plan-cache misses"
    )
    counter(
        "repro_engine_parallel_rounds_total",
        "Fixpoint rounds dispatched to the worker pool",
    )
    counter(
        "repro_engine_eval_seconds_total",
        "Wall-clock seconds spent in stratum evaluation",
    )
    # parallel pool / transport
    counter(
        "repro_parallel_syncs_total",
        "Replication syncs shipped to workers",
    )
    counter(
        "repro_parallel_rows_shipped_total",
        "Rows shipped to workers by the replication protocol",
    )
    counter(
        "repro_parallel_rows_retained_total",
        "Rows workers retained locally instead of being shipped",
    )
    counter(
        "repro_parallel_frames_total",
        "Transport frames moved",
        labels=("direction",),
    )
    counter(
        "repro_parallel_bytes_total",
        "Transport payload bytes moved",
        labels=("direction",),
    )
    counter(
        "repro_parallel_pickle_seconds_total",
        "Seconds spent (de)serializing transport payloads",
        labels=("direction",),
    )
    # admission control
    counter("repro_admission_admitted_total", "Requests admitted")
    counter("repro_admission_rejected_total", "Requests rejected at the door")
    counter("repro_admission_timeouts_total", "Requests timed out in queue")
    counter("repro_admission_completed_total", "Admitted requests completed")
    gauge("repro_admission_in_flight", "Requests currently executing")
    gauge("repro_admission_waiting", "Requests currently queued")
    # storage / indexes
    counter("repro_index_applied_runs_total", "Deferred index catch-up runs")
    counter("repro_index_rebuilds_total", "Index rebuilds from base rows")
    counter("repro_index_retired_total", "Cold indexes retired")
    counter("repro_index_hot_settled_total", "Hot indexes settled eagerly")
    counter("repro_index_spills_total", "Maintenance-log spill truncations")
    counter(
        "repro_index_settle_seconds_total",
        "Wall-clock seconds spent settling deferred index maintenance",
    )
    # durability
    counter("repro_wal_appends_total", "WAL records appended")
    counter("repro_wal_fsyncs_total", "WAL fsync barriers")
    counter("repro_durability_checkpoints_total", "Checkpoints written")
    counter(
        "repro_durability_replayed_records_total",
        "WAL records replayed at recovery",
        labels=("kind",),
    )
    # serving tier
    counter(
        "repro_serve_requests_total", "HTTP requests handled by serve nodes"
    )
    counter("repro_serve_errors_total", "HTTP requests answered with errors")
    counter("repro_serve_publishes_total", "Publishes applied by serve nodes")
    counter(
        "repro_exchange_publishes_total",
        "Update-exchange publish rounds applied",
    )
    counter("repro_snapshot_refreshes_total", "Serving snapshot refreshes")
    if registry is REGISTRY:
        _BOOTSTRAPPED = True
