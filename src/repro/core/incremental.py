"""Compatibility shim: the old incremental maintainer, now weighted.

This module used to implement the paper's PropagateDelete (Figure 3) as
a per-row interpretation loop, separate from the insertion delta rules.
Both directions now run through the unified weighted Z-set core in
:mod:`repro.core.weighted`: insertions as positive deltas on the
insertion fast path, deletions as negative deltas through the *same*
compiled probe templates (synthetic semijoin delta rules against the
provenance tables), with provenance-count bookkeeping plus the
goal-directed derivability test deciding which affected rows survive.

The public surface is unchanged — :class:`IncrementalMaintainer`,
:class:`DeletionReport`, :class:`InsertionReport` — so existing imports
keep working; they are the weighted implementations under their
historical names.  See DESIGN.md's "Weighted incremental core" section
for the migration table.
"""

from __future__ import annotations

from .weighted import (
    DeletionReport,
    InsertionReport,
    Rows,
    WeightedMaintainer,
    _strip_output,
)

__all__ = [
    "DeletionReport",
    "IncrementalMaintainer",
    "InsertionReport",
    "Rows",
]


class IncrementalMaintainer(WeightedMaintainer):
    """Historical name for the unified weighted maintainer."""
