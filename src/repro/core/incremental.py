"""Incremental update exchange: insertion delta rules and PropagateDelete.

Section 4.2 converts each mapping rule (in its provenance-encoded form) into
delta rules.  **Insertions** are the easy direction: semi-naive propagation
from the newly published base tuples, with trust conditions applied as each
tuple is derived.  **Deletions** use the paper's PropagateDelete algorithm
(Figure 3), which this module implements faithfully:

1. compute the provenance-table deletions from the current round of output
   deletions (the deletion delta rules — exact, because provenance rows
   materialize entire rule-body instantiations);
2. apply them, then examine every tuple whose provenance was affected:
   tuples with no remaining direct support are deleted outright; tuples
   with remaining support go to ``Rchk`` and are tested for derivability
   from edbs with the goal-directed test of Section 4.1.3 (cyclic,
   no-longer-grounded support must be garbage collected);
3. deletions cascade through the internal chain ``R__i -> R__t -> R__o``
   (a tuple leaves ``R__o`` only if it also has no surviving local
   contribution), producing the next round of output deletions;
4. repeat until no more deletions are derived.

The instrumentation fields on :class:`DeletionReport` record why the
algorithm beats DRed in the paper's Figure 4: it traces derivations
goal-directedly through (key-only) provenance rows instead of pessimistically
deleting and re-deriving entire instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..datalog.ast import Atom, DatalogError, Program
from ..datalog.engine import SemiNaiveEngine
from ..provenance.relations import ProvenanceEncoding, ProvenanceTable
from ..provenance.semiring import Token
from ..schema.internal import (
    input_name,
    local_name,
    output_name,
    rejection_name,
    trusted_name,
)
from ..storage.database import Database
from ..storage.instance import Row
from .derivation import DerivationTest, HeadFilters

Rows = Mapping[str, set[Row]]


@dataclass
class DeletionReport:
    """What one PropagateDelete run did (Figure 3's outputs + metrics)."""

    iterations: int = 0
    provenance_rows_deleted: int = 0
    tuples_deleted: dict[str, int] = field(default_factory=dict)
    derivability_checks: int = 0
    output_deletions: dict[str, set[Row]] = field(default_factory=dict)

    @property
    def total_deleted(self) -> int:
        return sum(self.tuples_deleted.values())

    def _count(self, relation: str, n: int = 1) -> None:
        self.tuples_deleted[relation] = (
            self.tuples_deleted.get(relation, 0) + n
        )


@dataclass
class InsertionReport:
    """What one incremental insertion pass derived."""

    derived: dict[str, set[Row]] = field(default_factory=dict)

    @property
    def total_derived(self) -> int:
        return sum(len(rows) for rows in self.derived.values())


class IncrementalMaintainer:
    """Incremental insertion/deletion over a provenance-encoded database."""

    def __init__(
        self,
        db: Database,
        encoding: ProvenanceEncoding,
        program: Program,
        engine: SemiNaiveEngine,
    ) -> None:
        self.db = db
        self.encoding = encoding
        self.program = program
        self.engine = engine
        # user relation -> [(provenance table, body atom index)] occurrences,
        # for the deletion delta rules.
        self._body_occurrences: dict[
            str, list[tuple[ProvenanceTable, int]]
        ] = {}
        for table in encoding.tables:
            for index, atom in table.positive_body_atoms():
                user_rel = _strip_output(atom.predicate)
                self._body_occurrences.setdefault(user_rel, []).append(
                    (table, index)
                )
        # Mappings with negated LHS atoms make deletion non-monotone (a
        # deletion can create tuples); incremental maintenance then requires
        # full recomputation.
        self.has_negated_mappings = any(
            atom.negated for table in encoding.tables for atom in table.body
        )

    @property
    def head_filters(self) -> HeadFilters:
        return self.engine.head_filters

    # -- shared helpers ------------------------------------------------------

    def _local_ok(self, relation: str, row: Row) -> bool:
        if row not in self.db[local_name(relation)]:
            return False
        from ..schema.internal import LOCAL_RULE_PREFIX

        token_filter = self.head_filters.get(LOCAL_RULE_PREFIX + relation)
        return token_filter is None or token_filter(row)

    def _trusted_ok(self, relation: str, row: Row) -> bool:
        return row in self.db[trusted_name(relation)]

    def _output_membership(self, relation: str, row: Row) -> bool:
        """Should ``row`` be in ``R__o`` given the current internal state?"""
        if self._local_ok(relation, row):
            return True
        return (
            self._trusted_ok(relation, row)
            and row not in self.db[rejection_name(relation)]
        )

    def _sync_output(
        self, relation: str, row: Row, deltas: dict[str, set[Row]]
    ) -> None:
        """Reconcile one R__o membership; record a deletion delta if lost."""
        should = self._output_membership(relation, row)
        out = self.db[output_name(relation)]
        if should:
            out.insert(row)
        elif out.delete(row):
            deltas.setdefault(relation, set()).add(row)

    # -- insertions -------------------------------------------------------------

    def apply_insertions(self, local_inserts: Rows) -> InsertionReport:
        """Insert new local contributions and propagate to fixpoint.

        Trust conditions are enforced during derivation by the engine's head
        filters (Section 4.2's "starting point ... is already-trusted data,
        plus new base insertions which can be directly tested for trust").
        """
        report = InsertionReport()
        with self.db.defer_maintenance():
            seeds: dict[str, set[Row]] = {}
            for relation, rows in local_inserts.items():
                target = self.db[local_name(relation)]
                fresh = {
                    tuple(row) for row in rows if target.insert(tuple(row))
                }
                if fresh:
                    seeds[local_name(relation)] = fresh
            if seeds:
                derived = self.engine.run_insertions(
                    self.program, self.db, seeds
                )
                report.derived = derived
        return report

    def apply_unrejections(self, rejection_deletes: Rows) -> InsertionReport:
        """Remove rejections; re-admitted tuples propagate as insertions.

        Deleting from the negated relation ``R__r`` can only *add* tuples to
        ``R__o`` (rule (tR)), which we compute directly for the touched rows
        and then propagate with the insertion delta rules.
        """
        report = InsertionReport()
        with self.db.defer_maintenance():
            seeds: dict[str, set[Row]] = {}
            for relation, rows in rejection_deletes.items():
                rejection = self.db[rejection_name(relation)]
                out = self.db[output_name(relation)]
                for row in map(tuple, rows):
                    if not rejection.delete(row):
                        continue
                    if self._trusted_ok(relation, row) and out.insert(row):
                        seeds.setdefault(output_name(relation), set()).add(row)
            if seeds:
                derived = self.engine.run_insertions(
                    self.program, self.db, seeds
                )
                report.derived = derived
        return report

    # -- deletions (Figure 3) ------------------------------------------------------

    def propagate_deletions(
        self,
        local_deletes: Rows | None = None,
        rejection_inserts: Rows | None = None,
    ) -> DeletionReport:
        """The PropagateDelete algorithm of Figure 3."""
        if self.has_negated_mappings:
            raise NotImplementedError(
                "incremental deletion is unsupported for mappings with "
                "negated LHS atoms (deletions become non-monotone); use the "
                "full-recomputation strategy"
            )
        # One deferral scope around the whole run: the per-row provenance
        # and output deletions append maintenance runs instead of patching
        # every index, and the derivability probes catch up in batched
        # passes (see repro.storage.indexes).
        with self.db.defer_maintenance():
            return self._propagate_deletions_deferred(
                local_deletes, rejection_inserts
            )

    def _propagate_deletions_deferred(
        self,
        local_deletes: Rows | None,
        rejection_inserts: Rows | None,
    ) -> DeletionReport:
        report = DeletionReport()
        output_deltas: dict[str, set[Row]] = {}
        pending_affected: set[Token] = set()

        # Phase 0: fold the curation changes into the edbs and compute the
        # initial R__o deletions.  A deleted local contribution may leave
        # its tuple apparently supported through R__t, but that support can
        # be circular — so such tuples join the affected set and go through
        # the derivability machinery rather than being trusted blindly.
        for relation, rows in (local_deletes or {}).items():
            local = self.db[local_name(relation)]
            for row in map(tuple, rows):
                if local.delete(row):
                    report._count(local_name(relation))
                    pending_affected.add((relation, row))
        for relation, rows in (rejection_inserts or {}).items():
            rejection = self.db[rejection_name(relation)]
            for row in map(tuple, rows):
                if rejection.insert(row):
                    # Rejection removes the R__o row directly (rule (tR));
                    # R__t itself is unaffected, so no derivability check.
                    self._sync_output(relation, row, output_deltas)
        for relation, rows in output_deltas.items():
            report._count(output_name(relation), len(rows))
            report.output_deletions.setdefault(relation, set()).update(rows)

        # Main loop (Figure 3 lines 3-18).
        while any(output_deltas.values()) or pending_affected:
            report.iterations += 1
            affected: set[Token] = set(pending_affected)
            pending_affected = set()

            # Line 4: deletion delta rules for the provenance tables —
            # exact, because each provenance row materializes a full body
            # instantiation.  Two-phase per occurrence: probe the doomed
            # rows first, then delete them in one bulk run — no probe ever
            # interleaves with a mutation, and the index layer sees one
            # batched deletion instead of per-row patches.
            for relation, rows in output_deltas.items():
                for table, atom_index in self._body_occurrences.get(
                    relation, ()
                ):
                    instance = self.db[table.relation]
                    doomed: set[Row] = set()
                    for row in rows:
                        probe = table.body_probe(atom_index, row)
                        if probe is None:
                            continue
                        doomed.update(instance.lookup(*probe))
                    if not doomed:
                        continue
                    removed = instance.delete_existing(doomed)
                    report.provenance_rows_deleted += len(removed)
                    for prow in removed:
                        for head in table.heads:
                            affected.add(
                                (
                                    head.user_relation,
                                    table.head_row(head, prow),
                                )
                            )

            # Lines 10-16: examine tuples whose provenance was affected.
            output_deltas = {}
            direct: dict[Token, tuple[bool, bool]] = {}
            to_check: list[Token] = []
            for node in affected:
                relation, row = node
                any_support = False
                trusted_support = False
                for table, head in self.encoding.targets_for_relation(
                    relation
                ):
                    rows_left = table.supporting_rows(self.db, head, row)
                    if rows_left:
                        any_support = True
                        if self._head_trust_ok(head, row):
                            trusted_support = True
                            break
                direct[node] = (any_support, trusted_support)
                if any_support:
                    to_check.append(node)  # line 14: Rchk
                # else: line 15 — no direct support at all; deleted below.

            verdicts = {}
            if to_check:
                tester = DerivationTest(
                    self.db, self.encoding, self.head_filters
                )
                verdicts = tester.derivable(to_check)
                report.derivability_checks += len(to_check)

            for node in affected:
                relation, row = node
                any_support, trusted_support = direct[node]
                if not any_support:
                    keep_input = keep_trusted = False
                else:
                    verdict = verdicts[node]
                    keep_input = verdict.any
                    keep_trusted = verdict.trusted and trusted_support
                if not keep_input:
                    if self.db[input_name(relation)].delete(row):
                        report._count(input_name(relation))
                if not keep_trusted:
                    if self.db[trusted_name(relation)].delete(row):
                        report._count(trusted_name(relation))
                self._sync_output(relation, row, output_deltas)

            for relation, rows in output_deltas.items():
                report._count(output_name(relation), len(rows))
                report.output_deletions.setdefault(relation, set()).update(
                    rows
                )

        return report

    def _head_trust_ok(self, head, row: Row) -> bool:
        condition = self.head_filters.get(head.trust_label)
        return condition is None or condition(row)


def _strip_output(internal_rel: str) -> str:
    # A real error, not an assert: this guards the deletion delta rules'
    # relation naming and must hold under ``python -O`` too.
    if not internal_rel.endswith("__o"):
        raise DatalogError(
            f"expected an output relation (R__o), got {internal_rel!r}"
        )
    return internal_rel[: -len("__o")]
