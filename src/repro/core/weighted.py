"""The unified weighted-delta maintenance core.

One maintainer now serves every update-exchange edit — insertions,
deletions, and trust revocations — by feeding **signed Z-set deltas**
(:class:`repro.storage.zset.ZSet`) through the same compiled plan
pipeline (``repro.datalog.plan``) the insertion fast path has always
used.  This replaces the two separate machines the repository grew up
with: the per-row PropagateDelete interpretation in the old
``core/incremental.py`` and the DRed over-delete/re-derive baseline in
``core/dred.py`` (both remain as thin shims over this class).

How retraction reuses the insertion machinery
---------------------------------------------

Insertion delta rules evaluate a rule with one body atom pinned to a
Δ-relation; the compiled probe template is *sign-agnostic* — it joins
whatever rows the Δ carries.  For a negative output delta ``ΔR__o⁻``,
the affected provenance rows of table ``P`` with an ``R__o`` occurrence
at body index ``i`` are exactly the semijoin ``P ⋉ ΔR__o⁻`` on the
occurrence's columns, which this module expresses as a synthetic delta
rule::

    P(vars) :- R__o(terms_i), P(vars)      (Δ pinned at body index 0)

compiled and cached through the engine's plan cache exactly like an
insertion delta rule — so retraction probes run on the same warm plans
and probe indexes, and (with a worker pool) ship through the same
shard-parallel executor and :class:`~repro.parallel.merge.Merger`.

Weights and ``distinct``
------------------------

The stored relations are sets, so a derived row's *weight* is its number
of surviving derivations: the provenance rows supporting it.  After the
semijoin pass deletes doomed provenance rows, each affected row's weight
is recounted from the remaining support; rows whose weight reached zero
are deleted outright, and rows with remaining support are checked for
*groundedness* with the goal-directed derivability test (cyclic support
must not keep a row alive — a pure count cannot see that, which is why
:class:`~repro.core.derivation.DerivationTest` stays).  Output tables
then normalize back to set semantics (``distinct``): a row is in
``R__o`` iff its accumulated support is positive and it is not rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..datalog.ast import Atom, DatalogError, Program, Rule
from ..datalog.engine import SemiNaiveEngine
from ..obs import tracing as _tracing
from ..datalog.plan import run_plan
from ..provenance.relations import ProvenanceEncoding, ProvenanceTable
from ..provenance.semiring import Token
from ..schema.internal import (
    input_name,
    local_name,
    output_name,
    rejection_name,
    trusted_name,
)
from ..storage.database import Database
from ..storage.instance import Row
from ..storage.zset import ZSet
from .derivation import DerivationTest, HeadFilters

Rows = Mapping[str, "set[Row] | list[Row] | frozenset[Row]"]

#: Contributions below this Δ size are always probed in-process: shipping
#: a handful of rows to the worker pool costs more than the semijoin.
PARALLEL_DELETION_MIN_ROWS = 256


@dataclass
class DeletionReport:
    """What one weighted retraction pass did."""

    iterations: int = 0
    provenance_rows_deleted: int = 0
    tuples_deleted: dict[str, int] = field(default_factory=dict)
    derivability_checks: int = 0
    output_deletions: dict[str, set[Row]] = field(default_factory=dict)

    @property
    def total_deleted(self) -> int:
        return sum(self.tuples_deleted.values())

    def _count(self, relation: str, n: int = 1) -> None:
        self.tuples_deleted[relation] = (
            self.tuples_deleted.get(relation, 0) + n
        )


@dataclass
class InsertionReport:
    """What one incremental insertion pass derived."""

    derived: dict[str, set[Row]] = field(default_factory=dict)

    @property
    def total_derived(self) -> int:
        return sum(len(rows) for rows in self.derived.values())


class WeightedMaintainer:
    """Signed-delta maintenance over a provenance-encoded database."""

    def __init__(
        self,
        db: Database,
        encoding: ProvenanceEncoding,
        program: Program,
        engine: SemiNaiveEngine,
    ) -> None:
        self.db = db
        self.encoding = encoding
        self.program = program
        self.engine = engine
        # user relation -> [(provenance table, synthetic semijoin rule)]
        # per R__o body occurrence.  The rule objects are held for the
        # life of the maintainer: the engine's plan cache is keyed by
        # rule identity, so every retraction round after the first runs
        # on memoized compiled plans.
        self._deletion_rules: dict[
            str, list[tuple[ProvenanceTable, Rule]]
        ] = {}
        self._table_by_name: dict[str, ProvenanceTable] = {}
        for table in encoding.tables:
            self._table_by_name[table.relation] = table
            prov_atom = Atom(table.relation, table.variables)
            for _, atom in table.positive_body_atoms():
                user_rel = _strip_output(atom.predicate)
                rule = Rule(prov_atom, (atom, prov_atom))
                self._deletion_rules.setdefault(user_rel, []).append(
                    (table, rule)
                )
        # The delta-shipping filter for parallel retraction rounds: the
        # same body-predicate set the insertion rounds use, so worker
        # replicas stay current on one consistent relation set.
        self._relevant = engine._body_predicates(program)
        # Mappings with negated LHS atoms make deletion non-monotone (a
        # deletion can create tuples); incremental maintenance then requires
        # full recomputation.
        self.has_negated_mappings = any(
            atom.negated for table in encoding.tables for atom in table.body
        )

    @property
    def head_filters(self) -> HeadFilters:
        return self.engine.head_filters

    # -- unified entry point -----------------------------------------------

    def apply(
        self,
        local: Mapping[str, ZSet],
        rejections: Mapping[str, ZSet],
    ) -> tuple[DeletionReport, InsertionReport, InsertionReport]:
        """Apply one signed publish delta in a single maintenance pass.

        ``local`` carries the peer's local-contribution Z-sets (``+1``
        published rows, ``-1`` retracted ones), ``rejections`` the
        rejection-table Z-sets (``+1`` trust revocations, ``-1``
        re-admissions).  The retraction side runs first so a row deleted
        and re-published in the same batch lands in its final state, then
        re-admissions and insertions share the insertion fast path.
        """
        with _tracing.span("retraction"):
            deletion = self.propagate_deletions(
                {name: z.negative() for name, z in local.items()},
                {name: z.positive() for name, z in rejections.items()},
            )
        with _tracing.span("unrejection"):
            unrejected = self.apply_unrejections(
                {name: z.negative() for name, z in rejections.items()}
            )
        with _tracing.span("insertion"):
            inserted = self.apply_insertions(
                {name: z.positive() for name, z in local.items()}
            )
        return deletion, unrejected, inserted

    # -- shared helpers ------------------------------------------------------

    def _local_ok(self, relation: str, row: Row) -> bool:
        if row not in self.db[local_name(relation)]:
            return False
        from ..schema.internal import LOCAL_RULE_PREFIX

        token_filter = self.head_filters.get(LOCAL_RULE_PREFIX + relation)
        return token_filter is None or token_filter(row)

    def _trusted_ok(self, relation: str, row: Row) -> bool:
        return row in self.db[trusted_name(relation)]

    def _output_membership(self, relation: str, row: Row) -> bool:
        """Should ``row`` be in ``R__o`` given the current internal state?

        This is the ``distinct`` normalization at the output boundary:
        membership is "accumulated support is positive" (a surviving
        local contribution, or trusted-and-not-rejected), never a
        multiplicity."""
        if self._local_ok(relation, row):
            return True
        return (
            self._trusted_ok(relation, row)
            and row not in self.db[rejection_name(relation)]
        )

    def _sync_output(
        self, relation: str, row: Row, deltas: dict[str, ZSet]
    ) -> None:
        """Reconcile one R__o membership; accumulate ``-1`` if lost."""
        should = self._output_membership(relation, row)
        out = self.db[output_name(relation)]
        if should:
            out.insert(row)
        elif out.delete(row):
            deltas.setdefault(relation, ZSet()).add(row, -1)

    # -- insertions (positive deltas) ---------------------------------------

    def apply_insertions(self, local_inserts: Rows) -> InsertionReport:
        """Insert new local contributions and propagate to fixpoint.

        Trust conditions are enforced during derivation by the engine's head
        filters (Section 4.2's "starting point ... is already-trusted data,
        plus new base insertions which can be directly tested for trust").
        """
        report = InsertionReport()
        with self.db.defer_maintenance():
            seeds: dict[str, set[Row]] = {}
            for relation, rows in local_inserts.items():
                target = self.db[local_name(relation)]
                fresh = {
                    tuple(row) for row in rows if target.insert(tuple(row))
                }
                if fresh:
                    seeds[local_name(relation)] = fresh
            if seeds:
                derived = self.engine.run_insertions(
                    self.program, self.db, seeds
                )
                report.derived = derived
        return report

    def apply_unrejections(self, rejection_deletes: Rows) -> InsertionReport:
        """Remove rejections; re-admitted tuples propagate as insertions.

        Deleting from the negated relation ``R__r`` can only *add* tuples to
        ``R__o`` (rule (tR)), which we compute directly for the touched rows
        and then propagate with the insertion delta rules.
        """
        report = InsertionReport()
        with self.db.defer_maintenance():
            seeds: dict[str, set[Row]] = {}
            for relation, rows in rejection_deletes.items():
                rejection = self.db[rejection_name(relation)]
                out = self.db[output_name(relation)]
                for row in map(tuple, rows):
                    if not rejection.delete(row):
                        continue
                    if self._trusted_ok(relation, row) and out.insert(row):
                        seeds.setdefault(output_name(relation), set()).add(row)
            if seeds:
                derived = self.engine.run_insertions(
                    self.program, self.db, seeds
                )
                report.derived = derived
        return report

    # -- retractions (negative deltas) --------------------------------------

    def propagate_deletions(
        self,
        local_deletes: Rows | None = None,
        rejection_inserts: Rows | None = None,
    ) -> DeletionReport:
        """Propagate a negative delta (deletions + trust revocations)."""
        if self.has_negated_mappings:
            raise NotImplementedError(
                "incremental deletion is unsupported for mappings with "
                "negated LHS atoms (deletions become non-monotone); use the "
                "full-recomputation strategy"
            )
        # One deferral scope around the whole run: the per-row provenance
        # and output deletions append maintenance runs instead of patching
        # every index, and the derivability probes catch up in batched
        # passes (see repro.storage.indexes).
        with self.db.defer_maintenance():
            return self._propagate_deletions_deferred(
                local_deletes, rejection_inserts
            )

    def _propagate_deletions_deferred(
        self,
        local_deletes: Rows | None,
        rejection_inserts: Rows | None,
    ) -> DeletionReport:
        report = DeletionReport()
        output_deltas: dict[str, ZSet] = {}
        pending_affected: set[Token] = set()

        # Phase 0: fold the curation changes into the edbs and compute the
        # initial negative R__o delta.  A deleted local contribution may
        # leave its tuple apparently supported through R__t, but that
        # support can be circular — so such tuples join the affected set
        # and go through the derivability machinery rather than being
        # trusted blindly.
        for relation, rows in (local_deletes or {}).items():
            local = self.db[local_name(relation)]
            for row in map(tuple, rows):
                if local.delete(row):
                    report._count(local_name(relation))
                    pending_affected.add((relation, row))
        for relation, rows in (rejection_inserts or {}).items():
            rejection = self.db[rejection_name(relation)]
            for row in map(tuple, rows):
                if rejection.insert(row):
                    # Rejection removes the R__o row directly (rule (tR));
                    # R__t itself is unaffected, so no derivability check.
                    self._sync_output(relation, row, output_deltas)
        self._record_output_deltas(report, output_deltas)

        # Main loop: one round per negative-delta stratum, mirroring the
        # insertion rounds' shape.
        while any(output_deltas.values()) or pending_affected:
            report.iterations += 1
            affected: set[Token] = set(pending_affected)
            pending_affected = set()

            # Semijoin pass: evaluate every (provenance table, occurrence)
            # delta rule against the round's negative R__o delta — the
            # compiled probe templates are the insertion machinery, fed a
            # negative delta.  All probes read the pre-deletion state (a
            # provenance row doomed through one occurrence must still be
            # visible to the others), then the doomed rows leave in one
            # bulk retraction per table.
            removed = self._retract_doomed_provenance_rows(output_deltas)
            for name, rows in removed.items():
                table = self._table_by_name[name]
                report.provenance_rows_deleted += len(rows)
                for prow in rows:
                    for head in table.heads:
                        affected.add(
                            (head.user_relation, table.head_row(head, prow))
                        )

            # Weight bookkeeping: recount each affected row's remaining
            # direct support.  Weight zero -> the row is gone outright;
            # positive weight -> groundedness check (cyclic support is
            # weight a count cannot distinguish from live derivations).
            output_deltas = {}
            direct: dict[Token, tuple[bool, bool]] = {}
            to_check: list[Token] = []
            for node in affected:
                relation, row = node
                any_support = False
                trusted_support = False
                for table, head in self.encoding.targets_for_relation(
                    relation
                ):
                    rows_left = table.supporting_rows(self.db, head, row)
                    if rows_left:
                        any_support = True
                        if self._head_trust_ok(head, row):
                            trusted_support = True
                            break
                direct[node] = (any_support, trusted_support)
                if any_support:
                    to_check.append(node)

            verdicts = {}
            if to_check:
                tester = DerivationTest(
                    self.db, self.encoding, self.head_filters
                )
                verdicts = tester.derivable(to_check)
                report.derivability_checks += len(to_check)

            for node in affected:
                relation, row = node
                any_support, trusted_support = direct[node]
                if not any_support:
                    keep_input = keep_trusted = False
                else:
                    verdict = verdicts[node]
                    keep_input = verdict.any
                    keep_trusted = verdict.trusted and trusted_support
                if not keep_input:
                    if self.db[input_name(relation)].delete(row):
                        report._count(input_name(relation))
                if not keep_trusted:
                    if self.db[trusted_name(relation)].delete(row):
                        report._count(trusted_name(relation))
                self._sync_output(relation, row, output_deltas)

            self._record_output_deltas(report, output_deltas)

        return report

    def _record_output_deltas(
        self, report: DeletionReport, output_deltas: dict[str, ZSet]
    ) -> None:
        for relation, zset in output_deltas.items():
            rows = zset.negative()
            report._count(output_name(relation), len(rows))
            report.output_deletions.setdefault(relation, set()).update(rows)

    def _retract_doomed_provenance_rows(
        self, output_deltas: dict[str, ZSet]
    ) -> dict[str, set[Row]]:
        """Evaluate and apply the retraction semijoins for one round.

        Returns the *effective* deletions per provenance table (rows that
        were actually present), deduplicated across occurrences.  Rounds
        big enough to amortize Δ-shipping go through the shard-parallel
        executor's :meth:`~repro.parallel.executor.ParallelExecutor.
        run_retraction_round` — which also journals the deletions under
        producer-worker origin tags so replicas drop their own retained
        retraction rows without re-shipping (replication protocol v2);
        everything else — and any pool failure — runs the same plans
        in-process and retracts through :meth:`Merger.apply_retractions
        <repro.parallel.merge.Merger.apply_retractions>`.
        """
        tasks: list[tuple[ProvenanceTable, Rule, list[Row]]] = []
        total_rows = 0
        for relation, zset in output_deltas.items():
            rows = zset.negative()
            if not rows:
                continue
            total_rows += len(rows)
            for table, rule in self._deletion_rules.get(relation, ()):
                tasks.append((table, rule, rows))

        if not tasks:
            return {}

        executor = (
            self.engine._executor()
            if total_rows >= PARALLEL_DELETION_MIN_ROWS
            else None
        )
        if executor is not None:
            plans = [
                (self.engine.cached_plan(rule, self.db, 0), 0, rows)
                for _, rule, rows in tasks
            ]
            removed = executor.run_retraction_round(
                self.db, plans, self._relevant
            )
            if removed is not None:
                self.engine.stats.parallel_rounds += 1
                return removed
            # Pool failure: nothing was mutated; fall through and run the
            # very same round sequentially.

        doomed: dict[str, set[Row]] = {}
        for table, rule, rows in tasks:
            matched = self._run_deletion_rule(rule, rows)
            if matched:
                doomed.setdefault(table.relation, set()).update(matched)
        from ..parallel.merge import Merger

        return Merger.apply_retractions(self.db, list(doomed.items()))

    def _run_deletion_rule(self, rule: Rule, delta_rows: list[Row]) -> list[Row]:
        """One semijoin evaluation: the rule's Δ atom (body index 0) pinned
        to the negative delta, everything else resolved from the live db —
        the same memoized plan + pooled Δ-instance path insertion delta
        rules run on."""
        delta_atom = rule.body[0]
        delta_source = self.engine.delta_instance(
            delta_atom.predicate, delta_atom.arity, delta_rows
        )
        plan = self.engine.cached_plan(rule, self.db, 0)

        def resolve(index: int, atom: Atom):
            if index == 0:
                return delta_source
            return self.db[atom.predicate]

        return run_plan(plan, resolve)

    def _head_trust_ok(self, head, row: Row) -> bool:
        condition = self.head_filters.get(head.trust_label)
        return condition is None or condition(row)


def _strip_output(internal_rel: str) -> str:
    # A real error, not an assert: this guards the deletion delta rules'
    # relation naming and must hold under ``python -O`` too.
    if not internal_rel.endswith("__o"):
        raise DatalogError(
            f"expected an output relation (R__o), got {internal_rel!r}"
        )
    return internal_rel[: -len("__o")]
