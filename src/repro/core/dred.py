"""The DRed (Delete-and-Rederive) baseline [18], adapted to update exchange.

Section 4.2: "Upon the deletion of a set of tuples, DRed will pessimistically
remove all tuples that can be transitively derived from the initially deleted
tuples.  Then it will attempt to re-derive the tuples it had deleted."  The
paper hypothesizes (and Figure 4 confirms) that PropagateDelete beats DRed
because the goal-directed provenance trace is cheaper than DRed's
re-derivation, which is an insertion-sized computation over full tuples.

The adaptation to the internal update-exchange program:

1. **Phase 0** — fold curation changes into the edbs: local deletions leave
   ``R__l`` and seed the over-deletion; new rejections enter ``R__r`` and
   pessimistically evict their tuples from ``R__o`` (the deletion delta of
   rule (tR)'s negated atom).
2. **Over-delete** — transitively delete everything derivable from the seed
   through the positive rules, evaluating delta rules against a
   pre-deletion snapshot (the classic over-approximation: alternative
   derivations are ignored).
3. **Re-derive** — one full evaluation pass over the reduced database
   re-inserts over-deleted tuples that are still derivable; a semi-naive
   insertion pass (with trust filters in force) restores all their
   consequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..schema.internal import local_name, output_name, rejection_name
from ..storage.database import Database
from ..storage.instance import Instance, Row
from .incremental import IncrementalMaintainer, Rows


@dataclass
class DRedReport:
    """Metrics from one DRed run (compared against PropagateDelete's)."""

    overdeleted: int = 0
    rederived: int = 0
    rounds: int = 0
    output_deletions: dict[str, set[Row]] = field(default_factory=dict)


class DRedMaintainer(IncrementalMaintainer):
    """Deletion via DRed; insertions inherit the shared delta rules."""

    def propagate_deletions(
        self,
        local_deletes: Rows | None = None,
        rejection_inserts: Rows | None = None,
    ) -> DRedReport:
        if self.has_negated_mappings:
            raise NotImplementedError(
                "DRed deletion is unsupported for mappings with negated "
                "LHS atoms; use the full-recomputation strategy"
            )
        # DRed's over-delete/re-derive churn is the worst case for eager
        # per-row index maintenance: whole derivation chains are deleted
        # row by row and then largely re-inserted.  One deferral scope
        # around both phases lets that churn coalesce to its net effect
        # before any index is patched (probes stay snapshot-consistent).
        with self.db.defer_maintenance():
            return self._propagate_deletions_deferred(
                local_deletes, rejection_inserts
            )

    def _propagate_deletions_deferred(
        self,
        local_deletes: Rows | None,
        rejection_inserts: Rows | None,
    ) -> DRedReport:
        report = DRedReport()
        db = self.db
        # The over-deletion delta rules must join against the PRE-deletion
        # state: a rule body may join several tuples that are deleted in the
        # same batch, and each delta occurrence needs to see the others.
        # (Instance.copy carries index definitions, so the snapshot's probe
        # indexes start warm instead of being rebuilt on first probe.)
        snapshot = db.copy()

        # Phase 0: apply edb changes; seed the over-deletion frontier.
        deleted: dict[str, set[Row]] = {}
        frontier: dict[str, set[Row]] = {}

        def seed(relation: str, row: Row) -> None:
            if db[relation].delete(row):
                report.overdeleted += 1
                deleted.setdefault(relation, set()).add(row)
                frontier.setdefault(relation, set()).add(row)

        for relation, rows in (local_deletes or {}).items():
            local = db[local_name(relation)]
            for row in map(tuple, rows):
                if local.delete(row):
                    # The deletion delta of rule (lR) — pessimistic: R__o
                    # loses the row even if rule (tR) still supports it.
                    seed(output_name(relation), row)
        for relation, rows in (rejection_inserts or {}).items():
            rejection = db[rejection_name(relation)]
            for row in map(tuple, rows):
                if rejection.insert(row):
                    # The deletion delta of (tR)'s negated R__r atom.
                    seed(output_name(relation), row)

        # Phase 1: transitive over-deletion against the snapshot.  Each
        # rule's doomed heads are deleted in one bulk run (the evaluation
        # reads the snapshot, so batching cannot change what is derived).
        while any(frontier.values()):
            report.rounds += 1
            next_frontier: dict[str, set[Row]] = {}
            for rule in self.program:
                for index, atom in enumerate(rule.body):
                    if atom.negated:
                        continue
                    delta_rows = frontier.get(atom.predicate)
                    if not delta_rows:
                        continue
                    head_pred = rule.head.predicate
                    instance = db.get(head_pred)
                    if instance is None:
                        continue
                    removed = instance.delete_existing(
                        self._evaluate_with_delta(
                            rule, index, delta_rows, snapshot
                        )
                    )
                    if removed:
                        report.overdeleted += len(removed)
                        deleted.setdefault(head_pred, set()).update(removed)
                        next_frontier.setdefault(head_pred, set()).update(
                            removed
                        )
            frontier = next_frontier

        # Phase 2: re-derivation.  One full pass over the reduced database
        # finds over-deleted tuples with surviving derivations ("insertion
        # is more expensive than querying" — this is DRed's costly step).
        seeds: dict[str, set[Row]] = {}
        for rule in self.program:
            head_pred = rule.head.predicate
            candidates = deleted.get(head_pred)
            if not candidates:
                continue
            head_filter = (
                self.engine.head_filters.get(rule.label)
                if rule.label is not None
                else None
            )
            instance = db[head_pred]
            for row in self._evaluate_with_delta(rule, None, None, db):
                if row in candidates and row not in instance:
                    if head_filter is not None and not head_filter(row):
                        continue
                    instance.insert(row)
                    seeds.setdefault(head_pred, set()).add(row)
                    report.rederived += 1
        if seeds:
            derived = self.engine.run_insertions(self.program, db, seeds)
            report.rederived += sum(len(rows) for rows in derived.values())

        # Report net output-table deletions (user-level).
        for relation in self.encoding.internal.relation_names():
            out_name = output_name(relation)
            lost = {
                row
                for row in deleted.get(out_name, set())
                if row not in db[out_name]
            }
            if lost:
                report.output_deletions[relation] = lost
        return report

    def _evaluate_with_delta(
        self,
        rule,
        delta_index: int | None,
        delta_rows: set[Row] | None,
        db: Database,
    ) -> list[Row]:
        """Evaluate one rule, optionally pinning a body atom to a delta set.

        Plans come from the engine's memoized plan cache and the delta set
        is swapped into the engine's persistent Δ-relation pool, so repeated
        DRed rounds reuse warm plans and probe indexes instead of building a
        fresh planner and instance per call.  The evaluation itself is
        unchanged — DRed stays the paper's pessimistic baseline.
        """
        from ..datalog.plan import run_plan

        delta_source = None
        if delta_index is not None and delta_rows is not None:
            arity = rule.body[delta_index].arity
            delta_source = self.engine.delta_instance(
                rule.body[delta_index].predicate, arity, delta_rows
            )
        plan = self.engine.cached_plan(rule, db, delta_index)

        def resolve(index: int, atom):
            if index == delta_index and delta_source is not None:
                return delta_source
            if atom.predicate in db:
                return db[atom.predicate]
            return Instance(atom.predicate, atom.arity)

        return run_plan(plan, resolve)
