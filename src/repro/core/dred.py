"""Compatibility shim: the DRed strategy, mapped onto the weighted core.

This module used to implement the DRed (Delete-and-Rederive) baseline
[18]: pessimistically over-delete everything transitively derivable from
the deleted tuples against a pre-deletion snapshot, then re-derive the
survivors with a full evaluation pass.  The paper's Figure 4 (and this
repository's deletion bench series) showed the goal-directed provenance
trace beating that loop, and the unified weighted Z-set core
(:mod:`repro.core.weighted`) has since replaced both machines: deletions
now run as negative deltas through the same compiled probe templates as
insertions, with no over-delete/re-derive phase anywhere.

``strategy="dred"`` remains accepted across the API as a deprecation
shim and resolves to the unified maintainer (see
``repro.core.exchange``); :class:`DRedMaintainer` is therefore the
weighted maintainer under its historical name, and produces the same
:class:`~repro.core.weighted.DeletionReport` as every other path.
:class:`DRedReport` is kept only so historical imports keep resolving.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.instance import Row
from .weighted import WeightedMaintainer

__all__ = ["DRedMaintainer", "DRedReport"]


@dataclass
class DRedReport:
    """Metrics shape of the retired over-delete/re-derive implementation.

    No maintenance path produces this anymore; it remains importable for
    code written against the pre-unification API.
    """

    overdeleted: int = 0
    rederived: int = 0
    rounds: int = 0
    output_deletions: dict[str, set[Row]] = field(default_factory=dict)


class DRedMaintainer(WeightedMaintainer):
    """Historical name for the unified weighted maintainer."""
