"""The update-exchange engine: full and incremental computation of a
consistent CDSS state (Sections 3 and 4).

:class:`ExchangeSystem` owns the internal database (edb tables ``R__l`` /
``R__r``, derived tables ``R__i`` / ``R__t`` / ``R__o``, and provenance
tables), the compiled internal program, and the trust filters.  Two
maintenance strategies remain:

* ``unified``   — the weighted Z-set delta core
  (:class:`~repro.core.weighted.WeightedMaintainer`): insertions,
  deletions, and trust revocations all flow as signed deltas through one
  compiled-plan operator pass;
* ``recompute`` — clear all derived state and re-run the fixpoint from
  the edbs (the "complete recomputation" baseline).

The historical strategy names ``incremental`` (insertion delta rules +
PropagateDelete) and ``dred`` (DRed deletion, the paper's [18] baseline)
are accepted everywhere they always were — they resolve to ``unified``
with a :class:`DeprecationWarning`; reports echo the requested name so
round-trips are stable.

After any strategy the database is in a *consistent state* (Definition 3.1
as amended by the erratum: the instance computed by the chase/datalog
program from the current edbs) — a property the test suite checks by
cross-strategy comparison.

Maintained views are also *subscribable*: :meth:`ExchangeSystem.subscribe`
turns on change capture, after which every publish appends a versioned
batch of per-relation ``R__o`` Z-set deltas to the change log —
:meth:`ExchangeSystem.changes_since` serves any cursor, and the serving
tier surfaces it as ``GET /changes?since=<version>``.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..datalog.ast import Program
from ..datalog.engine import EvaluationResult, SemiNaiveEngine
from ..datalog.planner import Planner
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from ..provenance.relations import ENCODING_COMPOSITE, ProvenanceEncoding
from ..provenance.trust import TrustPolicy, exchange_head_filters
from ..schema.internal import (
    InternalSchema,
    input_name,
    local_name,
    output_name,
    rejection_name,
    trusted_name,
)
from ..storage.database import Database
from ..storage.indexes import INDEX_POLICIES, POLICY_DEFERRED
from ..storage.instance import Row
from ..storage.zset import ZSet
from .editlog import PublishDelta
from .query import certain_rows
from .weighted import WeightedMaintainer

STRATEGY_UNIFIED = "unified"
STRATEGY_INCREMENTAL = "incremental"
STRATEGY_DRED = "dred"
STRATEGY_RECOMPUTE = "recompute"
STRATEGIES = (
    STRATEGY_UNIFIED,
    STRATEGY_INCREMENTAL,
    STRATEGY_DRED,
    STRATEGY_RECOMPUTE,
)
#: Deprecated strategy names and what they resolve to.
LEGACY_STRATEGIES = {
    STRATEGY_INCREMENTAL: STRATEGY_UNIFIED,
    STRATEGY_DRED: STRATEGY_UNIFIED,
}

#: Versioned change batches retained for subscribers; a cursor older than
#: the window silently yields only the retained tail.
CHANGELOG_RETENTION = 4096


def resolve_strategy(strategy: str, *, stacklevel: int = 3) -> str:
    """Map a (possibly legacy) strategy name to the one that runs.

    ``incremental`` and ``dred`` are deprecation shims over the unified
    weighted maintainer; requesting them warns once per call site and
    returns ``unified``.  Unknown names pass through unchanged — callers
    validate against :data:`STRATEGIES` where they always did.
    """
    target = LEGACY_STRATEGIES.get(strategy)
    if target is None:
        return strategy
    warnings.warn(
        f"strategy={strategy!r} is deprecated; insert and delete "
        f"maintenance are unified on the weighted Z-set delta core — "
        f"use strategy={target!r} (the default)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return target


class ExchangeError(Exception):
    """Raised on invalid exchange operations."""


@dataclass(frozen=True)
class ChangeBatch:
    """One publish's maintained-view delta, at a version cursor.

    ``changes`` maps user relation names to the signed Z-set of their
    ``R__o`` output-table changes (``+1`` rows that appeared, ``-1``
    rows that left).  An empty ``changes`` dict is a publish that
    changed no output — still versioned, so cursors always advance.
    """

    version: int
    changes: dict[str, ZSet]


class Subscription:
    """A change-stream cursor over one :class:`ExchangeSystem`.

    Holding at least one open subscription is what turns change capture
    on (capture costs one change-feed per publish, so unsubscribed
    systems pay nothing).  :meth:`poll` returns the batches published
    since the previous poll and advances the cursor.
    """

    __slots__ = ("_system", "cursor", "_closed")

    def __init__(self, system: "ExchangeSystem") -> None:
        self._system = system
        self.cursor = system.version
        self._closed = False

    def poll(self) -> list[ChangeBatch]:
        """Batches appended since the last poll (advances the cursor)."""
        version, batches = self._system.changes_since(self.cursor)
        self.cursor = version
        return batches

    def close(self) -> None:
        """Detach; capture stops when the last subscription closes."""
        if not self._closed:
            self._closed = True
            self._system._subscriptions.discard(self)

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"cursor={self.cursor}"
        return f"<Subscription {state}>"


def _accumulate(
    target: dict[str, ZSet],
    updates: Mapping[str, Iterable[Row]],
    weight: int,
) -> None:
    for relation, rows in updates.items():
        zset = None
        for row in rows:
            if zset is None:
                zset = target.setdefault(relation, ZSet())
            zset.add(tuple(row), weight)


def _publish_zsets(
    delta: PublishDelta,
) -> tuple[dict[str, ZSet], dict[str, ZSet]]:
    """A published delta as signed Z-sets: ``(local, rejections)``.

    ``publish`` emits *net* per-relation row sets, so the four components
    fold losslessly into two Z-sets — ``+1`` for inserts, ``-1`` for
    deletes — which is the form the weighted maintainer consumes.
    """
    local: dict[str, ZSet] = {}
    rejections: dict[str, ZSet] = {}
    _accumulate(local, delta.local_inserts, 1)
    _accumulate(local, delta.local_deletes, -1)
    _accumulate(rejections, delta.rejection_inserts, 1)
    _accumulate(rejections, delta.rejection_deletes, -1)
    return local, rejections


@dataclass
class ExchangeReport:
    """Summary of one update-exchange operation."""

    strategy: str
    seconds: float = 0.0
    inserted: int = 0
    deleted: int = 0
    details: dict[str, object] = field(default_factory=dict)
    #: Total CPU seconds of the operation (process-wide clock).
    cpu_seconds: float = 0.0
    #: Per-phase timing: ``{"evaluate" | "merge" | "index_settle":
    #: {"wall_seconds": float, "cpu_seconds": float}}``.  ``evaluate``
    #: is stratum fixpoint evaluation, ``merge`` the parallel
    #: executor's result merge (0 on the sequential path, where merging
    #: happens inside evaluation), ``index_settle`` deferred index
    #: catch-up.  Always populated — sourced from the layers'
    #: always-on phase clocks, not from opt-in tracing.
    phases: dict[str, dict[str, float]] = field(default_factory=dict)


_INDEX_METRIC_KEYS = (
    ("repro_index_applied_runs_total", "applied_runs"),
    ("repro_index_rebuilds_total", "rebuilds"),
    ("repro_index_retired_total", "retired"),
    ("repro_index_hot_settled_total", "hot_settled"),
    ("repro_index_spills_total", "spills"),
    ("repro_index_settle_seconds_total", "settle_wall_seconds"),
)


def _exchange_samples(system: "ExchangeSystem"):
    """Metrics collector: exchange publishes + the owned database's
    aggregate index-maintenance counters (weakref-registered, summed
    across live systems at scrape time)."""
    sample = _metrics.Sample
    kind = _metrics.KIND_COUNTER
    yield sample(
        "repro_exchange_publishes_total", kind, "", (), system.publishes
    )
    stats = system.db.index_stats()
    for name, key in _INDEX_METRIC_KEYS:
        yield sample(name, kind, "", (), stats[key])


class ExchangeSystem:
    """Update exchange over one internal schema + provenance encoding."""

    def __init__(
        self,
        internal: InternalSchema,
        policies: Mapping[str, TrustPolicy] | None = None,
        planner: Planner | None = None,
        encoding_style: str = ENCODING_COMPOSITE,
        perspective: str | None = None,
        db: Database | None = None,
        index_policy: str | None = None,
        workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        if index_policy is not None and index_policy not in INDEX_POLICIES:
            raise ExchangeError(
                f"unknown index policy {index_policy!r}; expected one of "
                f"{INDEX_POLICIES}"
            )
        if (
            db is not None
            and index_policy is not None
            and db.index_policy != index_policy
        ):
            # Silently keeping the db's policy would discard the caller's
            # request (and with it every deferral-scope benefit).
            raise ExchangeError(
                f"requested index policy {index_policy!r} conflicts with "
                f"the provided database's {db.index_policy!r}"
            )
        self.internal = internal
        self.policies: dict[str, TrustPolicy] = dict(policies or {})
        self.perspective = perspective
        self.encoding = ProvenanceEncoding(internal, style=encoding_style)
        self.program: Program = self.encoding.full_program()
        self.head_filters = exchange_head_filters(
            internal, self.encoding, self.policies, perspective
        )
        # workers=None resolves the REPRO_WORKERS environment default; the
        # worker pool itself is spawned once per exchange system, lazily,
        # on the first parallel stratum round (see repro.parallel).
        self.engine = SemiNaiveEngine(
            planner,
            head_filters=self.head_filters,
            workers=workers,
            start_method=start_method,
        )
        self.workers = self.engine.workers
        if db is None:
            db = Database(
                index_policy=(
                    index_policy if index_policy is not None else POLICY_DEFERRED
                )
            )
        self.db = db
        self.index_policy = self.db.index_policy
        self.encoding.setup_database(self.db)
        self._maintainer = WeightedMaintainer(
            self.db, self.encoding, self.program, self.engine
        )
        # Change-stream state: capture runs only while at least one
        # subscription is open (see subscribe()).
        self._subscriptions: set[Subscription] = set()
        self._changelog: list[ChangeBatch] = []
        self._version = 0
        self._output_names = {
            output_name(relation): relation
            for relation in internal.relation_names()
        }
        #: Publishes applied through :meth:`apply_delta` (cumulative).
        self.publishes = 0
        _metrics.REGISTRY.register(self, _exchange_samples)

    def close(self) -> None:
        """Release the evaluation worker pool, if one was spawned.

        Idempotent; the system remains usable afterwards (evaluation
        falls back to the sequential path)."""
        self.engine.close()

    # -- state access ----------------------------------------------------------

    def instance(self, relation: str) -> frozenset[Row]:
        """The local instance of a user relation (its ``R__o`` table)."""
        return self.db[output_name(relation)].rows()

    def output_table(self, relation: str):
        """The live ``R__o`` :class:`~repro.storage.instance.Instance`.

        This is the indexed table that pushdown predicates probe (the
        relation-view ``where`` fast path); treat it as read-only.
        """
        return self.db[output_name(relation)]

    def certain_instance(self, relation: str) -> frozenset[Row]:
        """The local instance with labeled-null rows dropped."""
        return certain_rows(self.instance(relation))

    def local_contributions(self, relation: str) -> frozenset[Row]:
        return self.db[local_name(relation)].rows()

    def rejections(self, relation: str) -> frozenset[Row]:
        return self.db[rejection_name(relation)].rows()

    def input_instance(self, relation: str) -> frozenset[Row]:
        return self.db[input_name(relation)].rows()

    def trusted_instance(self, relation: str) -> frozenset[Row]:
        return self.db[trusted_name(relation)].rows()

    def snapshot_outputs(self) -> dict[str, frozenset[Row]]:
        return {
            relation: self.instance(relation)
            for relation in self.internal.relation_names()
        }

    def parallel_stats(self) -> dict | None:
        """Worker-pool replication + transport counters, or ``None``.

        ``None`` while no parallel executor exists (``workers=1`` or no
        parallel round yet); otherwise the live counter snapshot — the
        negotiated replication protocol version, complement-shipping row
        counts (shipped vs. retained vs. rejected), and the per-message
        frames/bytes/pickle-seconds breakdown measured by the pool's
        transport layer.  The serve tier republishes this under
        ``/stats`` as ``"parallel"``.
        """
        return self.engine.parallel_stats()

    def total_tuples(self) -> int:
        return self.db.total_rows()

    def estimated_bytes(self) -> int:
        return self.db.estimated_bytes()

    # -- change subscriptions --------------------------------------------------

    @property
    def version(self) -> int:
        """The current change-stream version (one tick per captured publish)."""
        return self._version

    def subscribe(self) -> Subscription:
        """Open a maintained-view change stream over this system.

        Returns a :class:`Subscription` whose cursor starts *now*: only
        changes applied after the subscribe call are delivered (capture
        is off while nobody subscribes, so there is no history to
        replay).  Close it when done; capture stops with the last open
        subscription.
        """
        subscription = Subscription(self)
        self._subscriptions.add(subscription)
        return subscription

    def restore_version(self, version: int) -> None:
        """Seed the change-stream cursor after loading a checkpoint.

        A recovered node must hand out version numbers that continue the
        pre-crash sequence — clients hold cursors against it.  The change
        log itself is not restored (retention makes it best-effort anyway);
        WAL-tail replay repopulates the recent batches.
        """
        if version < self._version:
            raise ValueError(
                f"cannot move change-stream version backwards "
                f"({self._version} -> {version})"
            )
        self._version = int(version)

    def changes_since(self, since: int) -> tuple[int, list[ChangeBatch]]:
        """``(current version, batches with version > since)``.

        The stateless-cursor read the serving tier's ``/changes`` route
        wraps: clients remember the returned version and pass it back.
        Batches older than the retention window are gone; a stale cursor
        gets the retained tail.
        """
        return self._version, [
            batch for batch in self._changelog if batch.version > since
        ]

    def _capture_feed(self):
        """A change feed over the internal db, iff anyone subscribed."""
        return self.db.changefeed() if self._subscriptions else None

    def _capture_from_feed(self, feed) -> None:
        """Fold one publish's feed window into a change-log batch."""
        if feed is None:
            return
        try:
            zsets = feed.drain_zsets()
        finally:
            feed.close()
        self._append_changes(
            {
                self._output_names[name]: zset
                for name, zset in zsets.items()
                if name in self._output_names
            }
        )

    def _append_changes(self, changes: dict[str, ZSet]) -> None:
        self._version += 1
        self._changelog.append(ChangeBatch(self._version, changes))
        if len(self._changelog) > CHANGELOG_RETENTION:
            del self._changelog[: len(self._changelog) - CHANGELOG_RETENTION]

    def _diff_outputs(
        self, before: Mapping[str, frozenset[Row]]
    ) -> dict[str, ZSet]:
        """Output-table deltas vs. a snapshot (the recompute capture path:
        a cleared-and-refilled table cannot be folded from feed ops)."""
        changes: dict[str, ZSet] = {}
        for relation, old_rows in before.items():
            new_rows = self.instance(relation)
            zset = ZSet.from_rows(new_rows - old_rows, 1)
            zset.merge(ZSet.from_rows(old_rows - new_rows, -1))
            if zset:
                changes[relation] = zset
        return changes

    # -- full recomputation --------------------------------------------------------

    def recompute(self) -> ExchangeReport:
        """Clear all derived state; re-run the fixpoint from the edbs."""
        start = time.perf_counter()
        cpu_start = time.process_time()
        outputs_before = (
            self.snapshot_outputs() if self._subscriptions else None
        )
        with self.db.defer_maintenance():
            for relation in self.internal.relation_names():
                for derived in (
                    input_name(relation),
                    trusted_name(relation),
                    output_name(relation),
                ):
                    self.db[derived].clear()
            for name in self.encoding.provenance_relation_names():
                self.db[name].clear()
            self.engine.invalidate_plans()
            result = self.engine.run(self.program, self.db)
        if outputs_before is not None:
            self._append_changes(self._diff_outputs(outputs_before))
        return ExchangeReport(
            strategy=STRATEGY_RECOMPUTE,
            seconds=time.perf_counter() - start,
            cpu_seconds=time.process_time() - cpu_start,
            inserted=result.total_inserted,
            details={
                "rounds": result.rounds,
                "evaluation": EvaluationResult.counters_delta(
                    {}, result.counters()
                ),
            },
            phases={
                "evaluate": {
                    "wall_seconds": result.eval_wall_seconds,
                    "cpu_seconds": result.eval_cpu_seconds,
                }
            },
        )

    # -- incremental application -----------------------------------------------------

    def apply_delta(
        self, delta: PublishDelta, strategy: str = STRATEGY_UNIFIED
    ) -> ExchangeReport:
        """Apply a published delta with the chosen maintenance strategy.

        The report echoes the *requested* strategy name (legacy shims
        included), so callers that round-trip strategy names keep seeing
        what they asked for.
        """
        if strategy not in STRATEGIES:
            raise ExchangeError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        effective = resolve_strategy(strategy)
        start = time.perf_counter()
        cpu_start = time.process_time()
        stats_before = self.engine.stats.counters()
        merge_before = self._merge_clock()
        settle_before = self._settle_clock()
        span = (
            _tracing.start(
                "exchange", strategy=strategy, perspective=self.perspective
            )
            if _tracing.ENABLED
            else None
        )
        try:
            if effective == STRATEGY_RECOMPUTE:
                # recompute() fills details["evaluation"] from its own run
                # and captures the change batch by output-snapshot diff.
                report = self._apply_by_recompute(delta)
            else:
                local, rejections = _publish_zsets(delta)
                feed = self._capture_feed()
                try:
                    with self.db.defer_maintenance():
                        deletion_report, unreject_report, insert_report = (
                            self._maintainer.apply(local, rejections)
                        )
                finally:
                    self._capture_from_feed(feed)
                report = ExchangeReport(
                    strategy=strategy,
                    inserted=insert_report.total_derived
                    + unreject_report.total_derived,
                    deleted=deletion_report.total_deleted,
                    details={
                        "deletion": deletion_report,
                        "insertion": insert_report,
                    },
                )
                report.details["evaluation"] = (
                    EvaluationResult.counters_delta(
                        stats_before, self.engine.stats.counters()
                    )
                )
        except BaseException:
            if span is not None:
                _tracing.finish(span)
            raise
        evaluation = report.details.get("evaluation", {})
        merge_after = self._merge_clock()
        settle_after = self._settle_clock()
        report.phases = {
            "evaluate": {
                "wall_seconds": evaluation.get("eval_wall_seconds", 0.0),
                "cpu_seconds": evaluation.get("eval_cpu_seconds", 0.0),
            },
            "merge": {
                "wall_seconds": merge_after[0] - merge_before[0],
                "cpu_seconds": merge_after[1] - merge_before[1],
            },
            "index_settle": {
                "wall_seconds": settle_after[0] - settle_before[0],
                "cpu_seconds": settle_after[1] - settle_before[1],
            },
        }
        if span is not None:
            span.rows = report.inserted + report.deleted
            _tracing.finish(span)
        self.publishes += 1
        report.seconds = time.perf_counter() - start
        report.cpu_seconds = time.process_time() - cpu_start
        return report

    def _merge_clock(self) -> tuple[float, float]:
        """Cumulative (wall, cpu) seconds of parallel result merging."""
        executor = self.engine._parallel
        if executor is None:
            return (0.0, 0.0)
        return (executor.merge_wall_seconds, executor.merge_cpu_seconds)

    def _settle_clock(self) -> tuple[float, float]:
        """Cumulative (wall, cpu) seconds of deferred index settling."""
        stats = self.db.index_stats()
        return (
            stats["settle_wall_seconds"],
            stats["settle_cpu_seconds"],
        )

    def _apply_by_recompute(self, delta: PublishDelta) -> ExchangeReport:
        with self.db.defer_maintenance():
            for relation, rows in delta.local_deletes.items():
                self.db[local_name(relation)].delete_many(rows)
            for relation, rows in delta.local_inserts.items():
                self.db[local_name(relation)].insert_many(rows)
            for relation, rows in delta.rejection_inserts.items():
                self.db[rejection_name(relation)].insert_many(rows)
            for relation, rows in delta.rejection_deletes.items():
                self.db[rejection_name(relation)].delete_many(rows)
        return self.recompute()

    # -- consistency (used heavily by tests) -------------------------------------------

    def is_consistent(self) -> bool:
        """Check Definition 3.1: derived state equals a fresh fixpoint from
        the current edbs."""
        # The reference recomputation is a one-shot correctness check:
        # always sequential (workers=1), so consistency probes never spawn
        # a second worker pool.
        reference = ExchangeSystem(
            self.internal,
            self.policies,
            encoding_style=self.encoding.style,
            perspective=self.perspective,
            workers=1,
        )
        for relation in self.internal.relation_names():
            reference.db[local_name(relation)].insert_many(
                self.db[local_name(relation)]
            )
            reference.db[rejection_name(relation)].insert_many(
                self.db[rejection_name(relation)]
            )
        reference.recompute()
        for name in self.db.relation_names():
            other = reference.db.get(name)
            if other is None or other.rows() != self.db[name].rows():
                return False
        return True
