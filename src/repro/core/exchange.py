"""The update-exchange engine: full and incremental computation of a
consistent CDSS state (Sections 3 and 4).

:class:`ExchangeSystem` owns the internal database (edb tables ``R__l`` /
``R__r``, derived tables ``R__i`` / ``R__t`` / ``R__o``, and provenance
tables), the compiled internal program, and the trust filters.  It exposes
three maintenance strategies, compared in the paper's Figure 4:

* ``recompute``   — clear all derived state and re-run the fixpoint from the
  edbs (the "complete recomputation" baseline);
* ``incremental`` — insertion delta rules + PropagateDelete (the paper's
  contribution);
* ``dred``        — insertion delta rules + DRed deletion (the [18]
  baseline).

After any strategy the database is in a *consistent state* (Definition 3.1
as amended by the erratum: the instance computed by the chase/datalog
program from the current edbs) — a property the test suite checks by
cross-strategy comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from ..datalog.ast import Program
from ..datalog.engine import EvaluationResult, SemiNaiveEngine
from ..datalog.planner import Planner
from ..provenance.relations import ENCODING_COMPOSITE, ProvenanceEncoding
from ..provenance.trust import TrustPolicy, exchange_head_filters
from ..schema.internal import (
    InternalSchema,
    input_name,
    local_name,
    output_name,
    rejection_name,
    trusted_name,
)
from ..storage.database import Database
from ..storage.indexes import INDEX_POLICIES, POLICY_DEFERRED
from ..storage.instance import Row
from .dred import DRedMaintainer
from .editlog import PublishDelta
from .incremental import IncrementalMaintainer
from .query import certain_rows

STRATEGY_INCREMENTAL = "incremental"
STRATEGY_DRED = "dred"
STRATEGY_RECOMPUTE = "recompute"
STRATEGIES = (STRATEGY_INCREMENTAL, STRATEGY_DRED, STRATEGY_RECOMPUTE)


class ExchangeError(Exception):
    """Raised on invalid exchange operations."""


@dataclass
class ExchangeReport:
    """Summary of one update-exchange operation."""

    strategy: str
    seconds: float = 0.0
    inserted: int = 0
    deleted: int = 0
    details: dict[str, object] = field(default_factory=dict)


class ExchangeSystem:
    """Update exchange over one internal schema + provenance encoding."""

    def __init__(
        self,
        internal: InternalSchema,
        policies: Mapping[str, TrustPolicy] | None = None,
        planner: Planner | None = None,
        encoding_style: str = ENCODING_COMPOSITE,
        perspective: str | None = None,
        db: Database | None = None,
        index_policy: str | None = None,
        workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        if index_policy is not None and index_policy not in INDEX_POLICIES:
            raise ExchangeError(
                f"unknown index policy {index_policy!r}; expected one of "
                f"{INDEX_POLICIES}"
            )
        if (
            db is not None
            and index_policy is not None
            and db.index_policy != index_policy
        ):
            # Silently keeping the db's policy would discard the caller's
            # request (and with it every deferral-scope benefit).
            raise ExchangeError(
                f"requested index policy {index_policy!r} conflicts with "
                f"the provided database's {db.index_policy!r}"
            )
        self.internal = internal
        self.policies: dict[str, TrustPolicy] = dict(policies or {})
        self.perspective = perspective
        self.encoding = ProvenanceEncoding(internal, style=encoding_style)
        self.program: Program = self.encoding.full_program()
        self.head_filters = exchange_head_filters(
            internal, self.encoding, self.policies, perspective
        )
        # workers=None resolves the REPRO_WORKERS environment default; the
        # worker pool itself is spawned once per exchange system, lazily,
        # on the first parallel stratum round (see repro.parallel).
        self.engine = SemiNaiveEngine(
            planner,
            head_filters=self.head_filters,
            workers=workers,
            start_method=start_method,
        )
        self.workers = self.engine.workers
        if db is None:
            db = Database(
                index_policy=(
                    index_policy if index_policy is not None else POLICY_DEFERRED
                )
            )
        self.db = db
        self.index_policy = self.db.index_policy
        self.encoding.setup_database(self.db)
        self._maintainer = IncrementalMaintainer(
            self.db, self.encoding, self.program, self.engine
        )
        self._dred = DRedMaintainer(
            self.db, self.encoding, self.program, self.engine
        )

    def close(self) -> None:
        """Release the evaluation worker pool, if one was spawned.

        Idempotent; the system remains usable afterwards (evaluation
        falls back to the sequential path)."""
        self.engine.close()

    # -- state access ----------------------------------------------------------

    def instance(self, relation: str) -> frozenset[Row]:
        """The local instance of a user relation (its ``R__o`` table)."""
        return self.db[output_name(relation)].rows()

    def output_table(self, relation: str):
        """The live ``R__o`` :class:`~repro.storage.instance.Instance`.

        This is the indexed table that pushdown predicates probe (the
        relation-view ``where`` fast path); treat it as read-only.
        """
        return self.db[output_name(relation)]

    def certain_instance(self, relation: str) -> frozenset[Row]:
        """The local instance with labeled-null rows dropped."""
        return certain_rows(self.instance(relation))

    def local_contributions(self, relation: str) -> frozenset[Row]:
        return self.db[local_name(relation)].rows()

    def rejections(self, relation: str) -> frozenset[Row]:
        return self.db[rejection_name(relation)].rows()

    def input_instance(self, relation: str) -> frozenset[Row]:
        return self.db[input_name(relation)].rows()

    def trusted_instance(self, relation: str) -> frozenset[Row]:
        return self.db[trusted_name(relation)].rows()

    def snapshot_outputs(self) -> dict[str, frozenset[Row]]:
        return {
            relation: self.instance(relation)
            for relation in self.internal.relation_names()
        }

    def total_tuples(self) -> int:
        return self.db.total_rows()

    def estimated_bytes(self) -> int:
        return self.db.estimated_bytes()

    # -- full recomputation --------------------------------------------------------

    def recompute(self) -> ExchangeReport:
        """Clear all derived state; re-run the fixpoint from the edbs."""
        start = time.perf_counter()
        with self.db.defer_maintenance():
            for relation in self.internal.relation_names():
                for derived in (
                    input_name(relation),
                    trusted_name(relation),
                    output_name(relation),
                ):
                    self.db[derived].clear()
            for name in self.encoding.provenance_relation_names():
                self.db[name].clear()
            self.engine.invalidate_plans()
            result = self.engine.run(self.program, self.db)
        return ExchangeReport(
            strategy=STRATEGY_RECOMPUTE,
            seconds=time.perf_counter() - start,
            inserted=result.total_inserted,
            details={
                "rounds": result.rounds,
                "evaluation": EvaluationResult.counters_delta(
                    {}, result.counters()
                ),
            },
        )

    # -- incremental application -----------------------------------------------------

    def apply_delta(
        self, delta: PublishDelta, strategy: str = STRATEGY_INCREMENTAL
    ) -> ExchangeReport:
        """Apply a published delta with the chosen maintenance strategy."""
        if strategy not in STRATEGIES:
            raise ExchangeError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        start = time.perf_counter()
        stats_before = self.engine.stats.counters()
        if strategy == STRATEGY_RECOMPUTE:
            # recompute() fills details["evaluation"] from its own run.
            report = self._apply_by_recompute(delta)
        else:
            maintainer = (
                self._dred if strategy == STRATEGY_DRED else self._maintainer
            )
            with self.db.defer_maintenance():
                deletion_report = maintainer.propagate_deletions(
                    delta.local_deletes, delta.rejection_inserts
                )
                unreject_report = maintainer.apply_unrejections(
                    delta.rejection_deletes
                )
                insert_report = maintainer.apply_insertions(delta.local_inserts)
            deleted = (
                deletion_report.total_deleted
                if hasattr(deletion_report, "total_deleted")
                else deletion_report.overdeleted - deletion_report.rederived
            )
            report = ExchangeReport(
                strategy=strategy,
                inserted=insert_report.total_derived
                + unreject_report.total_derived,
                deleted=deleted,
                details={
                    "deletion": deletion_report,
                    "insertion": insert_report,
                },
            )
            report.details["evaluation"] = EvaluationResult.counters_delta(
                stats_before, self.engine.stats.counters()
            )
        report.seconds = time.perf_counter() - start
        return report

    def _apply_by_recompute(self, delta: PublishDelta) -> ExchangeReport:
        with self.db.defer_maintenance():
            for relation, rows in delta.local_deletes.items():
                self.db[local_name(relation)].delete_many(rows)
            for relation, rows in delta.local_inserts.items():
                self.db[local_name(relation)].insert_many(rows)
            for relation, rows in delta.rejection_inserts.items():
                self.db[rejection_name(relation)].insert_many(rows)
            for relation, rows in delta.rejection_deletes.items():
                self.db[rejection_name(relation)].delete_many(rows)
        return self.recompute()

    # -- consistency (used heavily by tests) -------------------------------------------

    def is_consistent(self) -> bool:
        """Check Definition 3.1: derived state equals a fresh fixpoint from
        the current edbs."""
        # The reference recomputation is a one-shot correctness check:
        # always sequential (workers=1), so consistency probes never spawn
        # a second worker pool.
        reference = ExchangeSystem(
            self.internal,
            self.policies,
            encoding_style=self.encoding.style,
            perspective=self.perspective,
            workers=1,
        )
        for relation in self.internal.relation_names():
            reference.db[local_name(relation)].insert_many(
                self.db[local_name(relation)]
            )
            reference.db[rejection_name(relation)].insert_many(
                self.db[rejection_name(relation)]
            )
        reference.recompute()
        for name in self.db.relation_names():
            other = reference.db.get(name)
            if other is None or other.rows() != self.db[name].rows():
                return False
        return True
