"""Edit logs and publish semantics (Sections 2 and 3.1).

Users edit their peer's local instance "offline"; every insertion and
deletion is appended to the peer's edit log ``Delta R``.  On *publish*, the
log is folded into the internal edb relations:

* ``R__l`` (local contributions) gains inserted tuples and loses locally
  contributed tuples the log later deletes;
* ``R__r`` (rejections) gains deleted tuples that were *not* local
  contributions — the curation deletions that keep imported data rejected
  across future update exchanges ("that data remains rejected by P in future
  update exchanges", Section 2) — and loses tuples the user re-inserts
  (un-rejection).

:func:`publish` computes the **net** delta between the current internal
state and the state the log prescribes; the exchange engine then applies it
with any of the three maintenance strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..schema.internal import local_name, rejection_name
from ..storage.database import Database
from ..storage.instance import Row


@dataclass(frozen=True)
class Update:
    """One edit-log entry: ``(d, row)`` with d in {'+', '-'}."""

    relation: str
    row: Row
    is_insert: bool

    def __post_init__(self) -> None:
        object.__setattr__(self, "row", tuple(self.row))

    @property
    def sign(self) -> str:
        return "+" if self.is_insert else "-"

    def __repr__(self) -> str:
        return f"({self.sign} | {self.relation}{self.row!r})"


class EditLog:
    """The ordered edit log of one peer (covering all its relations).

    Observers registered with :meth:`observe` are called with each batch
    of newly *staged* entries (from :meth:`insert` / :meth:`delete` /
    :meth:`extend`) — the hook the durability layer uses to write-ahead-log
    edits before they reach the exchange engine.  Draining and clearing do
    not notify: consumption is the publish path's business.
    """

    def __init__(self, peer: str) -> None:
        self.peer = peer
        self._entries: list[Update] = []
        self._observers: list = []

    def observe(self, callback) -> None:
        """Register ``callback(log, entries)`` for newly staged entries."""
        self._observers.append(callback)

    def unobserve(self, callback) -> bool:
        try:
            self._observers.remove(callback)
        except ValueError:
            return False
        return True

    def _notify(self, entries: tuple[Update, ...]) -> None:
        if entries:
            for callback in self._observers:
                callback(self, entries)

    def insert(self, relation: str, row: Iterable[object]) -> Update:
        update = Update(relation, tuple(row), is_insert=True)
        self._entries.append(update)
        self._notify((update,))
        return update

    def delete(self, relation: str, row: Iterable[object]) -> Update:
        update = Update(relation, tuple(row), is_insert=False)
        self._entries.append(update)
        self._notify((update,))
        return update

    def extend(self, updates: Iterable[Update]) -> int:
        """Bulk-append prebuilt entries (the batch API's commit path).

        Returns the number of entries appended.  This is the hot insert
        path: one list extension instead of one :meth:`insert` call per
        row.
        """
        before = len(self._entries)
        self._entries.extend(updates)
        self._notify(tuple(self._entries[before:]))
        return len(self._entries) - before

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Update]:
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def drain(self) -> tuple[Update, ...]:
        """Return all entries and empty the log (publish consumes it)."""
        entries = tuple(self._entries)
        self._entries.clear()
        return entries

    def __repr__(self) -> str:
        return f"<EditLog {self.peer}: {len(self._entries)} entries>"


@dataclass
class PublishDelta:
    """Net changes to the internal edb relations implied by an edit log.

    All four maps are keyed by *user* relation name.
    """

    local_inserts: dict[str, set[Row]] = field(default_factory=dict)
    local_deletes: dict[str, set[Row]] = field(default_factory=dict)
    rejection_inserts: dict[str, set[Row]] = field(default_factory=dict)
    rejection_deletes: dict[str, set[Row]] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not any(
            any(rows for rows in bucket.values())
            for bucket in (
                self.local_inserts,
                self.local_deletes,
                self.rejection_inserts,
                self.rejection_deletes,
            )
        )

    def merge(self, other: "PublishDelta") -> "PublishDelta":
        """Combine deltas from different peers (disjoint schemas, so no
        relation appears in both)."""
        for mine, theirs in (
            (self.local_inserts, other.local_inserts),
            (self.local_deletes, other.local_deletes),
            (self.rejection_inserts, other.rejection_inserts),
            (self.rejection_deletes, other.rejection_deletes),
        ):
            for relation, rows in theirs.items():
                mine.setdefault(relation, set()).update(rows)
        return self

    def counts(self) -> dict[str, int]:
        return {
            "local_inserts": sum(len(r) for r in self.local_inserts.values()),
            "local_deletes": sum(len(r) for r in self.local_deletes.values()),
            "rejection_inserts": sum(
                len(r) for r in self.rejection_inserts.values()
            ),
            "rejection_deletes": sum(
                len(r) for r in self.rejection_deletes.values()
            ),
        }


def publish(log: EditLog, db: Database) -> PublishDelta:
    """Fold an edit log into a net :class:`PublishDelta` against ``db``.

    The log is replayed in order against the current ``R__l`` / ``R__r``
    contents to obtain the *desired* final state per touched row; the delta
    is the difference.  The log is drained (its entries are consumed).
    """
    desired_local: dict[tuple[str, Row], bool] = {}
    desired_rejected: dict[tuple[str, Row], bool] = {}

    def currently_local(relation: str, row: Row) -> bool:
        key = (relation, row)
        if key in desired_local:
            return desired_local[key]
        return row in db[local_name(relation)]

    def currently_rejected(relation: str, row: Row) -> bool:
        key = (relation, row)
        if key in desired_rejected:
            return desired_rejected[key]
        return row in db[rejection_name(relation)]

    for update in log.drain():
        key = (update.relation, update.row)
        if update.is_insert:
            desired_local[key] = True
            if currently_rejected(update.relation, update.row):
                desired_rejected[key] = False  # re-insertion un-rejects
        else:
            if currently_local(update.relation, update.row):
                desired_local[key] = False
            else:
                desired_rejected[key] = True

    delta = PublishDelta()
    for (relation, row), want in desired_local.items():
        have = row in db[local_name(relation)]
        if want and not have:
            delta.local_inserts.setdefault(relation, set()).add(row)
        elif have and not want:
            delta.local_deletes.setdefault(relation, set()).add(row)
    for (relation, row), want in desired_rejected.items():
        have = row in db[rejection_name(relation)]
        if want and not have:
            delta.rejection_inserts.setdefault(relation, set()).add(row)
        elif have and not want:
            delta.rejection_deletes.setdefault(relation, set()).add(row)
    return delta
