"""Goal-directed derivation testing (Section 4.1.3).

Given a set of tuples whose derivability is in question (``Rchk``), the test
must decide whether each is (still) derivable from edbs — the local
contributions tables — using the stored provenance.  The paper inverts the
mapping rules: the provenance tables "fill in the possible values that were
projected away during the mapping", so the relevant slice of the database
can be walked *backwards* from the checked tuples, after which the original
mappings are re-run over the slice to validate genuine (well-founded)
derivability.

Our implementation realizes exactly that plan:

1. **Backward slice** — from each checked tuple, follow
   :meth:`ProvenanceTable.supporting_rows` (the inverse rules) recursively
   to collect every provenance-table row and source tuple that could
   participate in a derivation.
2. **Grounding** — compute the least fixpoint of "derivable from local
   contributions" *within the slice*: a tuple is grounded iff it is a
   filtered local contribution, or some trusted supporting rule
   instantiation has all its sources grounded and the tuple is not
   rejected.  Cyclic mutual support grounds nothing, which is the entire
   point (Section 4.2's "garbage collection" of tuples only derivable
   through loops).

Two verdicts are produced per checked tuple, because the internal schema
distinguishes the unfiltered input table from the trusted/curated chain:

* ``trusted`` — the tuple belongs in ``R__o`` (trusted derivation, not
  rejected, or a local contribution);
* ``any`` — the tuple belongs in ``R__i`` (some derivation from grounded
  sources exists, trusted or not, rejection irrelevant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..provenance.relations import HeadTarget, ProvenanceEncoding, ProvenanceTable
from ..provenance.semiring import Token
from ..schema.internal import LOCAL_RULE_PREFIX, local_name, rejection_name
from ..storage.database import Database
from ..storage.instance import Row

HeadFilters = Mapping[str, Callable[[Row], bool]]


@dataclass(frozen=True)
class DerivabilityVerdict:
    """The three derivability answers for one checked tuple, one per stage
    of the internal chain ``R__i -> R__t -> R__o`` (Fig. 2)."""

    output: bool  # belongs in R__o (local, or trusted + not rejected)
    trusted: bool  # belongs in R__t (trusted derivation; rejection ignored)
    any: bool  # belongs in R__i (some derivation, trust ignored)


@dataclass
class DerivationTest:
    """Reusable derivability tester bound to one database + encoding."""

    db: Database
    encoding: ProvenanceEncoding
    head_filters: HeadFilters = field(default_factory=dict)

    # Instrumentation (read by benchmarks/tests):
    slice_tuples_visited: int = 0
    support_rows_visited: int = 0

    # -- filters -----------------------------------------------------------

    def _local_ok(self, relation: str, row: Row) -> bool:
        if row not in self.db[local_name(relation)]:
            return False
        token_filter = self.head_filters.get(LOCAL_RULE_PREFIX + relation)
        return token_filter is None or token_filter(row)

    def _trust_ok(self, head: HeadTarget, row: Row) -> bool:
        condition = self.head_filters.get(head.trust_label)
        return condition is None or condition(row)

    def _rejected(self, relation: str, row: Row) -> bool:
        return row in self.db[rejection_name(relation)]

    # -- the test -------------------------------------------------------------

    def derivable(
        self, checks: Iterable[Token]
    ) -> dict[Token, DerivabilityVerdict]:
        """Decide derivability-from-edbs for each checked (relation, row)."""
        checks = [(relation, tuple(row)) for relation, row in checks]
        check_set = set(checks)
        # node -> [(table, prow, trusted_step)]
        support: dict[
            Token, list[tuple[ProvenanceTable, Row, bool]]
        ] = {}
        visited: set[Token] = set()
        stack: list[Token] = list(checks)

        # 1. Backward slice via the inverse rules.
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            self.slice_tuples_visited += 1
            relation, row = node
            is_check = node in check_set
            if (
                not is_check
                and self._rejected(relation, row)
                and not self._local_ok(relation, row)
            ):
                # A rejected non-local tuple cannot be in R__o, so as a
                # *source* it is dead; its mapped support is irrelevant.
                continue
            entries: list[tuple[ProvenanceTable, Row, bool]] = []
            for table, head in self.encoding.targets_for_relation(relation):
                trusted_step = self._trust_ok(head, row)
                if not is_check and not trusted_step:
                    # Untrusted support only matters for R__i verdicts of
                    # checked tuples.
                    continue
                for prow in table.supporting_rows(self.db, head, row):
                    self.support_rows_visited += 1
                    entries.append((table, prow, trusted_step))
                    for source in table.source_tuples(prow):
                        if source not in visited:
                            stack.append(source)
            support[node] = entries

        # 2. Grounding fixpoint within the slice (R__o semantics).
        grounded: set[Token] = {
            node for node in visited if self._local_ok(node[0], node[1])
        }
        changed = True
        while changed:
            changed = False
            for node, entries in support.items():
                if node in grounded:
                    continue
                relation, row = node
                if self._rejected(relation, row):
                    continue
                for table, prow, trusted_step in entries:
                    if not trusted_step:
                        continue
                    if all(
                        source in grounded
                        for source in table.source_tuples(prow)
                    ):
                        grounded.add(node)
                        changed = True
                        break

        # 3. Verdicts.
        verdicts: dict[Token, DerivabilityVerdict] = {}
        for node in checks:
            trusted = False
            any_support = False
            for table, prow, trusted_step in support.get(node, ()):
                if all(
                    source in grounded
                    for source in table.source_tuples(prow)
                ):
                    any_support = True
                    if trusted_step:
                        trusted = True
                        break
            verdicts[node] = DerivabilityVerdict(
                output=node in grounded,
                trusted=trusted,
                any=any_support,
            )
        return verdicts

    def is_derivable(self, relation: str, row: Iterable[object]) -> bool:
        """True iff the tuple belongs in ``R__o`` (trusted derivability)."""
        node = (relation, tuple(row))
        return self.derivable([node])[node].output
