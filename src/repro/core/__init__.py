"""The CDSS core: edit logs, update exchange, incremental maintenance.

The state-machine layer beneath :mod:`repro.api` (paper Sections 2, 3, 4);
DESIGN.md documents how the layers stack.
"""

from .cdss import CDSS, Peer
from .derivation import DerivabilityVerdict, DerivationTest
from .dred import DRedMaintainer, DRedReport
from .editlog import EditLog, PublishDelta, Update, publish
from .exchange import (
    LEGACY_STRATEGIES,
    STRATEGIES,
    STRATEGY_DRED,
    STRATEGY_INCREMENTAL,
    STRATEGY_RECOMPUTE,
    STRATEGY_UNIFIED,
    ChangeBatch,
    ExchangeError,
    ExchangeReport,
    ExchangeSystem,
    Subscription,
    resolve_strategy,
)
from .incremental import (
    DeletionReport,
    IncrementalMaintainer,
    InsertionReport,
)
from .query import QueryError, answer_program, answer_query, certain_rows
from .weighted import WeightedMaintainer

__all__ = [
    "CDSS",
    "ChangeBatch",
    "DRedMaintainer",
    "DRedReport",
    "DeletionReport",
    "DerivabilityVerdict",
    "DerivationTest",
    "EditLog",
    "ExchangeError",
    "ExchangeReport",
    "ExchangeSystem",
    "IncrementalMaintainer",
    "InsertionReport",
    "LEGACY_STRATEGIES",
    "Peer",
    "PublishDelta",
    "QueryError",
    "STRATEGIES",
    "STRATEGY_DRED",
    "STRATEGY_INCREMENTAL",
    "STRATEGY_RECOMPUTE",
    "STRATEGY_UNIFIED",
    "Subscription",
    "Update",
    "WeightedMaintainer",
    "answer_program",
    "answer_query",
    "certain_rows",
    "publish",
]
