"""The CDSS facade: peers, mappings, trust policies, and update exchange.

This is the public entry point of the library — the programmatic equivalent
of the ORCHESTRA system of Section 5.  A typical session (the paper's
running example) uses the peer-centric v2 API (see DESIGN.md)::

    cdss = CDSS("bioinformatics")
    pgus = cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    pbio = cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    pubio = cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")

    with pgus.batch() as tx:                 # transactional offline edits
        tx.insert("G", (1, 2, 3))
        tx.insert("G", (3, 5, 2))
    pbio.insert("B", (3, 5))
    pubio.insert("U", (2, 5))
    cdss.update_exchange()

    B = pbio.relation("B")                   # lazy RelationView
    sorted(B)                                # the local instance of B
    B.provenance((3, 2))                     # m1(...) + m4(... * ...)
    cdss.query("ans(x, y) :- U(x, z), U(y, z)")

Peers edit offline (handle/batch edits append to edit logs);
:meth:`update_exchange` publishes the logs and brings the system to a
consistent state with the configured maintenance strategy.  The whole
configuration round-trips through declarative :class:`~repro.api.spec.SystemSpec`
documents via :meth:`CDSS.from_spec` / :meth:`CDSS.to_spec`.

The pre-v2 string-keyed facade (``cdss.insert("G", row)``,
``cdss.instance("B")`` returning bare sets, ``cdss.distrust_peer(...)``)
still works but emits :class:`DeprecationWarning`; DESIGN.md has the
migration table.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from ..datalog.planner import Planner
from ..provenance.expression import ProvenanceExpression
from ..provenance.graph import ProvenanceGraph, build_provenance_graph
from ..provenance.relations import ENCODING_COMPOSITE
from ..provenance.semiring import Semiring, Token
from ..provenance.trust import TrustCondition, TrustPolicy, evaluate_trust
from ..schema.internal import InternalSchema
from ..schema.relation import PeerSchema, RelationSchema, SchemaError
from ..schema.tgd import SchemaMapping
from ..storage.indexes import POLICY_DEFERRED
from ..storage.instance import Row
from .editlog import EditLog, PublishDelta, publish
from .exchange import (
    LEGACY_STRATEGIES,
    STRATEGY_UNIFIED,
    ExchangeReport,
    ExchangeSystem,
    resolve_strategy,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..api.batch import Batch
    from ..api.handles import PeerHandle
    from ..api.programs import PreparedProgram
    from ..api.query import PreparedQuery, Query
    from ..api.spec import SystemSpec
    from ..api.views import RelationView
    from ..datalog.ast import Rule


_PROGRAM_CACHE_LIMIT = 64
"""query_program's prepared-program entries before wholesale clearing
(each entry pins its own engine + plan cache; parameterize instead of
inlining constants to stay under it)."""


@dataclass
class Peer:
    """One participant: schema, edit log, and trust policy.

    The edit log and trust policy are always freshly constructed for the
    peer (they carry its name), so they are not constructor parameters.
    """

    name: str
    schema: PeerSchema
    edit_log: EditLog = field(init=False, repr=False)
    policy: TrustPolicy = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.edit_log = EditLog(self.name)
        self.policy = TrustPolicy(self.name)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"CDSS.{old} is deprecated; use {new} instead (see DESIGN.md's "
        "migration table)",
        DeprecationWarning,
        stacklevel=3,
    )


class CDSS:
    """A collaborative data sharing system (Section 2).

    Configuration (peers, mappings, trust) may be extended at any time;
    the internal schema, provenance encoding, and database are (re)built
    lazily on first use after a configuration change.
    """

    def __init__(
        self,
        name: str = "cdss",
        planner: Planner | None = None,
        encoding_style: str = ENCODING_COMPOSITE,
        perspective: str | None = None,
        strategy: str | None = None,
        index_policy: str | None = None,
        workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self.name = name
        # None -> the REPRO_STRATEGY environment default, else "unified".
        # Legacy names ("incremental"/"dred") warn here, once, and are
        # stored verbatim so spec round-trips echo what was configured;
        # the exchange system maps them onto the unified maintainer.
        if strategy is None:
            strategy = os.environ.get("REPRO_STRATEGY") or STRATEGY_UNIFIED
        elif strategy in LEGACY_STRATEGIES:
            resolve_strategy(strategy)
        self.strategy = strategy
        self._planner = planner
        self._encoding_style = encoding_style
        self._perspective = perspective
        # None -> the exchange system's default (deferred/batched).
        self._index_policy = index_policy
        # None -> the REPRO_WORKERS environment default (1 = sequential).
        self._workers = workers
        self._start_method = start_method
        self._peers: dict[str, Peer] = {}
        self._mappings: dict[str, SchemaMapping] = {}
        self._relation_owner: dict[str, str] = {}
        # query_program's per-text cache of PreparedPrograms (prepared
        # programs re-bind themselves after reconfiguration, so entries
        # stay valid for the CDSS's whole lifetime).
        self._program_cache: dict[tuple[str, str], "PreparedProgram"] = {}
        self._system: ExchangeSystem | None = None
        self._previous_system: ExchangeSystem | None = None
        self.exchange_reports: list[ExchangeReport] = []

    # -- configuration -------------------------------------------------------

    def add_peer(
        self,
        name: str,
        relations: Mapping[str, Sequence[str]] | Iterable[RelationSchema],
    ) -> "PeerHandle":
        """Register a peer with its relations; returns its handle.

        ``relations`` is either a mapping ``{relation: (attr, ...)}`` or an
        iterable of :class:`RelationSchema`.
        """
        if name in self._peers:
            raise SchemaError(f"peer {name!r} already exists")
        if isinstance(relations, Mapping):
            schemas = tuple(
                RelationSchema(rel, tuple(attrs))
                for rel, attrs in relations.items()
            )
        else:
            schemas = tuple(relations)
        peer = Peer(name, PeerSchema(name, schemas))
        for schema in schemas:
            if schema.name in self._relation_owner:
                raise SchemaError(
                    f"relation {schema.name!r} already owned by peer "
                    f"{self._relation_owner[schema.name]!r}"
                )
        for schema in schemas:
            self._relation_owner[schema.name] = name
        self._peers[name] = peer
        self._invalidate()
        return self.peer(name)

    def peer(self, name: str) -> "PeerHandle":
        """The handle of an already-registered peer."""
        from ..api.handles import PeerHandle

        self._peer(name)  # raise SchemaError for unknown peers
        return PeerHandle(self, name)

    def add_mapping(self, name: str, tgd: str | SchemaMapping) -> SchemaMapping:
        """Register a schema mapping, given as tgd text or an object."""
        if name in self._mappings:
            raise SchemaError(f"mapping {name!r} already exists")
        mapping = (
            SchemaMapping.parse(name, tgd) if isinstance(tgd, str) else tgd
        )
        self._mappings[name] = mapping
        self._invalidate()
        return mapping

    # -- declarative specs ---------------------------------------------------

    @classmethod
    def from_spec(
        cls, spec: "SystemSpec | Mapping[str, object] | str | Path"
    ) -> "CDSS":
        """Build a CDSS from a :class:`~repro.api.spec.SystemSpec`.

        Accepts a spec object, a plain dict in the spec's JSON shape, or a
        path to a spec JSON file.  The spec's edits are staged in the
        peers' edit logs; no update exchange is run.
        """
        from ..api.spec import SystemSpec

        if isinstance(spec, (str, Path)):
            spec = SystemSpec.load(spec)
        elif isinstance(spec, Mapping):
            spec = SystemSpec.from_dict(spec)
        cdss = cls(
            name=spec.name,
            encoding_style=spec.encoding_style,
            perspective=spec.perspective,
            strategy=spec.strategy,
            index_policy=spec.index_policy,
            workers=spec.workers,
        )
        for peer_spec in spec.peers:
            cdss.add_peer(peer_spec.name, peer_spec.to_schemas())
        for mapping_spec in spec.mappings:
            cdss.add_mapping(mapping_spec.name, mapping_spec.to_mapping())
        if spec.edits:
            from ..api.spec import INSERT

            with cdss.batch() as tx:
                for edit in spec.edits:
                    if edit.op == INSERT:
                        tx.insert(edit.relation, edit.row)
                    else:
                        tx.delete(edit.relation, edit.row)
        return cdss

    def to_spec(self, include_data: bool = True) -> "SystemSpec":
        """Capture this system as a declarative spec.

        With ``include_data`` the current base state is exported as signed
        edits — local contributions as ``+``, persistent rejections as
        ``-`` — followed by any unpublished edit-log entries in order, so
        ``CDSS.from_spec(cdss.to_spec())`` then ``update_exchange()``
        reproduces the instances.  Trust conditions are Python callables
        and are not captured.
        """
        from ..api.spec import (
            DELETE,
            INSERT,
            EditSpec,
            MappingSpec,
            PeerSpec,
            SystemSpec,
        )

        edits: list[EditSpec] = []
        if include_data:
            system = self.system()
            for relation in sorted(self._relation_owner):
                for row in sorted(
                    system.local_contributions(relation), key=repr
                ):
                    edits.append(EditSpec(relation, row, INSERT))
                for row in sorted(system.rejections(relation), key=repr):
                    edits.append(EditSpec(relation, row, DELETE))
            for peer in self._peers.values():
                for update in peer.edit_log:
                    edits.append(
                        EditSpec(
                            update.relation,
                            update.row,
                            INSERT if update.is_insert else DELETE,
                        )
                    )
        return SystemSpec(
            name=self.name,
            peers=tuple(
                PeerSpec.of(peer.schema) for peer in self._peers.values()
            ),
            mappings=tuple(
                MappingSpec.of(m) for m in self._mappings.values()
            ),
            edits=tuple(edits),
            strategy=self.strategy,
            encoding_style=self._encoding_style,
            perspective=self._perspective,
            index_policy=self.index_policy,
            workers=self.workers,
        )

    # -- trust (internal entry points; public surface is TrustScope) ---------

    def _set_trust_condition(
        self,
        peer: str,
        mapping: str,
        condition: TrustCondition | Callable[[Row], bool],
        description: str | None = None,
    ) -> None:
        if not isinstance(condition, TrustCondition):
            condition = TrustCondition(
                description or f"{peer} condition on {mapping}", condition
            )
        self._peer(peer).policy.set_mapping_condition(mapping, condition)
        self._invalidate()

    def _distrust_token(
        self, peer: str, relation: str, row: Iterable[object]
    ) -> None:
        self._peer(peer).policy.distrust_token(relation, row)
        self._invalidate()

    def _distrust_peer(self, peer: str, other: str) -> None:
        self._peer(peer).policy.distrust_peer(other)
        self._invalidate()

    def _trust_of(
        self, peer: str, relation: str, row: Iterable[object]
    ) -> bool:
        verdicts = evaluate_trust(
            self.provenance_graph(),
            self._peer(peer).policy,
            internal=self.internal_schema,
            extra_policies={
                name: p.policy for name, p in self._peers.items()
            },
        )
        return verdicts.get((relation, tuple(row)), False)

    def set_trust_condition(
        self,
        peer: str,
        mapping: str,
        condition: TrustCondition | Callable[[Row], bool],
        description: str | None = None,
    ) -> None:
        """Deprecated: use ``cdss.peer(p).trust().condition(...)``."""
        _deprecated(
            "set_trust_condition", "peer(name).trust().condition(...)"
        )
        self._set_trust_condition(peer, mapping, condition, description)

    def distrust_token(
        self, peer: str, relation: str, row: Iterable[object]
    ) -> None:
        """Deprecated: use ``cdss.peer(p).trust().distrust_row(...)``."""
        _deprecated("distrust_token", "peer(name).trust().distrust_row(...)")
        self._distrust_token(peer, relation, row)

    def distrust_peer(self, peer: str, other: str) -> None:
        """Deprecated: use ``cdss.peer(p).trust().distrust_peer(other)``."""
        _deprecated("distrust_peer", "peer(name).trust().distrust_peer(...)")
        self._distrust_peer(peer, other)

    def trust_of(
        self, peer: str, relation: str, row: Iterable[object]
    ) -> bool:
        """Deprecated: use ``cdss.peer(p).trust().of(relation, row)``."""
        _deprecated("trust_of", "peer(name).trust().of(relation, row)")
        return self._trust_of(peer, relation, row)

    # -- editing (offline) -------------------------------------------------------

    def batch(self) -> "Batch":
        """A system-wide transactional batch; edits route to owning peers."""
        from ..api.batch import Batch

        return Batch(self)

    def insert(self, relation: str, row: Iterable[object]) -> None:
        """Deprecated: use ``cdss.peer(p).insert(...)`` or a batch."""
        _deprecated("insert", "peer(name).insert(...) or peer.batch()")
        self._owner_peer(relation).edit_log.insert(relation, row)

    def delete(self, relation: str, row: Iterable[object]) -> None:
        """Deprecated: use ``cdss.peer(p).delete(...)`` or a batch."""
        _deprecated("delete", "peer(name).delete(...) or peer.batch()")
        self._owner_peer(relation).edit_log.delete(relation, row)

    def pending_edits(self) -> int:
        return sum(len(peer.edit_log) for peer in self._peers.values())

    # -- update exchange ------------------------------------------------------------

    def update_exchange(
        self,
        peers: Iterable[str] | None = None,
        strategy: str | None = None,
    ) -> ExchangeReport:
        """Publish edit logs and bring the system to a consistent state.

        ``peers`` limits which peers publish (default: all); other peers'
        unpublished edits stay invisible, matching Section 2's operational
        model.
        """
        system = self.system()
        delta = PublishDelta()
        names = tuple(peers) if peers is not None else tuple(self._peers)
        for name in names:
            delta.merge(publish(self._peer(name).edit_log, system.db))
        report = system.apply_delta(delta, strategy or self.strategy)
        self.exchange_reports.append(report)
        return report

    def recompute(self) -> ExchangeReport:
        report = self.system().recompute()
        self.exchange_reports.append(report)
        return report

    # -- inspection --------------------------------------------------------------------

    def system(self) -> ExchangeSystem:
        """The underlying exchange system (rebuilt on demand).

        Reconfiguring (new peers, mappings, or trust) after data has been
        loaded preserves the base data — local contributions and rejections
        carry over and the derived state is recomputed under the new
        configuration.
        """
        if self._system is not None:
            return self._system
        internal = InternalSchema(
            tuple(p.schema for p in self._peers.values()),
            tuple(self._mappings.values()),
        )
        system = ExchangeSystem(
            internal,
            policies={
                name: peer.policy for name, peer in self._peers.items()
            },
            planner=self._planner,
            encoding_style=self._encoding_style,
            perspective=self._perspective,
            index_policy=self._index_policy,
            workers=self._workers,
            start_method=self._start_method,
        )
        if self._previous_system is not None:
            from ..schema.internal import local_name, rejection_name

            carried = False
            for relation in internal.relation_names():
                old_db = self._previous_system.db
                for name_fn in (local_name, rejection_name):
                    old = old_db.get(name_fn(relation))
                    if old is not None and len(old):
                        system.db[name_fn(relation)].insert_many(old)
                        carried = True
            if carried:
                system.recompute()
            # The superseded system is dead: release its worker pool now
            # rather than waiting for garbage collection.
            self._previous_system.close()
            self._previous_system = None
        self._system = system
        return system

    @property
    def index_policy(self) -> str:
        """The storage index-maintenance policy in effect (see
        :mod:`repro.storage.indexes`)."""
        return (
            self._index_policy
            if self._index_policy is not None
            else POLICY_DEFERRED
        )

    @property
    def workers(self) -> int:
        """The evaluation worker count in effect (1 = sequential; see
        :mod:`repro.parallel`)."""
        from ..parallel import resolve_workers

        return resolve_workers(self._workers)

    @property
    def internal_schema(self) -> InternalSchema:
        return self.system().internal

    def peers(self) -> tuple[str, ...]:
        return tuple(self._peers)

    def peer_handles(self) -> tuple["PeerHandle", ...]:
        """Handles for every registered peer, in registration order."""
        return tuple(self.peer(name) for name in self._peers)

    def mappings(self) -> tuple[SchemaMapping, ...]:
        return tuple(self._mappings.values())

    def relation(self, name: str) -> "RelationView":
        """A lazy view of one user relation's local instance."""
        from ..api.views import RelationView

        self._owner_peer(name)  # raise SchemaError for unknown relations
        return RelationView(self, name)

    def relations(self) -> tuple[str, ...]:
        """All user relation names, grouped by peer registration order."""
        return tuple(
            schema.name
            for peer in self._peers.values()
            for schema in peer.schema.relations
        )

    def instance(self, relation: str) -> frozenset[Row]:
        """Deprecated: use ``cdss.relation(name)`` (a lazy view); call
        ``.to_rows()`` on it for a bare frozenset."""
        _deprecated("instance", "relation(name) / relation(name).to_rows()")
        return self.system().instance(relation)

    def certain_instance(self, relation: str) -> frozenset[Row]:
        """Deprecated: use ``cdss.relation(name).certain()``."""
        _deprecated("certain_instance", "relation(name).certain()")
        return self.system().certain_instance(relation)

    # -- queries ----------------------------------------------------------------

    def prepare(
        self,
        query: "str | Rule | Query",
        params: Sequence[str] = (),
    ) -> "PreparedQuery":
        """Prepare a query: plan + compile once, execute many times.

        ``query`` is datalog text over user relation names, a parsed
        :class:`~repro.datalog.ast.Rule`, or a fluent
        :class:`~repro.api.query.Query` built with
        ``select``/``join``/``project``.  ``params`` (text queries only)
        names body variables bound at :meth:`PreparedQuery.execute
        <repro.api.query.PreparedQuery.execute>` time.  The plan is
        registered in the exchange engine's plan cache; re-executing with
        new parameter bindings performs zero replanning.
        """
        from ..api.query import prepare

        system = self.system()
        return prepare(
            query,
            system.db,
            system.internal,
            engine=system.engine,
            params=params,
            cdss=self,
            system=system,
        )

    def query(self, text: str, certain: bool = True) -> frozenset[Row]:
        """One-shot conjunctive query with certain-answer semantics.

        A convenience over :meth:`prepare`; for repeated or parameterized
        execution prepare the query once and re-execute it.  One-shots
        plan through the planner only (their fresh rule objects would
        pollute the engine-level plan cache without ever hitting).
        """
        from ..api.query import prepare

        system = self.system()
        prepared = prepare(
            text,
            system.db,
            system.internal,
            engine=system.engine,
            cdss=self,
            system=system,
            use_engine_cache=False,
        )
        answers = prepared.execute()
        if not certain:
            answers = answers.with_nulls()
        return answers.to_rows()

    def prepare_program(
        self,
        program: str,
        answer: str = "ans",
        params: Sequence[str] = (),
    ) -> "PreparedProgram":
        """Prepare a recursive query program: validate + rewrite once.

        The returned :class:`~repro.api.programs.PreparedProgram` keeps a
        dedicated engine whose plan cache and Δ-relations stay warm
        across :meth:`~repro.api.programs.PreparedProgram.execute` calls;
        ``params`` names program variables bound per execution
        (``prepared.execute(name=value)``).
        """
        from ..api.programs import prepare_program

        system = self.system()
        return prepare_program(
            program,
            system.db,
            system.internal,
            answer=answer,
            params=params,
            planner=self._planner,
            cdss=self,
            system=system,
        )

    def query_program(
        self, text: str, answer: str = "ans", certain: bool = True
    ) -> frozenset[Row]:
        """Evaluate a recursive datalog program over the peer instances.

        Bodies reference user relations; the program may define auxiliary
        intensional predicates (evaluated to fixpoint in scratch space).
        Returns the extension of the ``answer`` predicate.

        A convenience over :meth:`prepare_program`: the prepared program
        is cached per ``(text, answer)``, so repeated calls with the same
        text re-plan nothing.
        """
        if isinstance(text, str):
            key = (text, answer)
            prepared = self._program_cache.get(key)
            if prepared is None:
                prepared = self.prepare_program(text, answer=answer)
                if len(self._program_cache) >= _PROGRAM_CACHE_LIMIT:
                    # Each entry pins a dedicated engine; callers that
                    # inline constants into the text (instead of params=)
                    # must not grow this without bound.
                    self._program_cache.clear()
                self._program_cache[key] = prepared
        else:
            # Pre-parsed Program objects: prepare fresh (identity-keyed
            # caching would never hit for equal-but-distinct objects).
            prepared = self.prepare_program(text, answer=answer)
        answers = prepared.execute()
        return answers.certain() if certain else answers.with_nulls()

    # -- provenance -------------------------------------------------------------

    def provenance_graph(self) -> ProvenanceGraph:
        system = self.system()
        return build_provenance_graph(system.db, system.encoding)

    def provenance_of(
        self, relation: str, row: Iterable[object], max_depth: int = 8
    ) -> ProvenanceExpression:
        """Deprecated: use ``cdss.relation(name).provenance(row)``."""
        _deprecated("provenance_of", "relation(name).provenance(row)")
        return self.provenance_graph().expression_for(
            relation, row, max_depth=max_depth
        )

    def evaluate_provenance(
        self,
        semiring: Semiring,
        token_value: Callable[[Token], object] | None = None,
    ) -> dict[Token, object]:
        """Solve the provenance equations of the whole system in a semiring."""
        return self.provenance_graph().evaluate(semiring, token_value)

    # -- internals ------------------------------------------------------------------------

    def _peer(self, name: str) -> Peer:
        try:
            return self._peers[name]
        except KeyError:
            raise SchemaError(f"unknown peer {name!r}") from None

    def _owner_peer(self, relation: str) -> Peer:
        owner = self._relation_owner.get(relation)
        if owner is None:
            raise SchemaError(f"unknown relation {relation!r}")
        return self._peers[owner]

    def _relation_schema(self, relation: str) -> RelationSchema:
        return self._owner_peer(relation).schema.relation(relation)

    def _invalidate(self) -> None:
        if self._system is not None:
            self._previous_system = self._system
        self._system = None

    def __repr__(self) -> str:
        return (
            f"<CDSS {self.name}: {len(self._peers)} peers, "
            f"{len(self._mappings)} mappings>"
        )
