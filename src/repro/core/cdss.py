"""The CDSS facade: peers, mappings, trust policies, and update exchange.

This is the public entry point of the library — the programmatic equivalent
of the ORCHESTRA system of Section 5.  A typical session (the paper's
running example) looks like::

    cdss = CDSS("bioinformatics")
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")

    cdss.insert("G", (1, 2, 3))
    cdss.insert("G", (3, 5, 2))
    cdss.insert("B", (3, 5))
    cdss.insert("U", (2, 5))
    cdss.update_exchange()

    cdss.instance("B")                       # the local instance of B
    cdss.query("ans(x, y) :- U(x, z), U(y, z)")
    cdss.provenance_of("B", (3, 2))          # m1(...) + m4(... * ...)

Peers edit offline (:meth:`insert` / :meth:`delete` append to edit logs);
:meth:`update_exchange` publishes the logs and brings the system to a
consistent state with the configured maintenance strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..datalog.planner import Planner
from ..provenance.expression import ProvenanceExpression
from ..provenance.graph import ProvenanceGraph, build_provenance_graph
from ..provenance.relations import ENCODING_COMPOSITE
from ..provenance.semiring import Semiring, Token
from ..provenance.trust import TrustCondition, TrustPolicy, evaluate_trust
from ..schema.internal import InternalSchema
from ..schema.relation import PeerSchema, RelationSchema, SchemaError
from ..schema.tgd import SchemaMapping
from ..storage.instance import Row
from .editlog import EditLog, PublishDelta, publish
from .exchange import (
    STRATEGY_INCREMENTAL,
    ExchangeReport,
    ExchangeSystem,
)
from .query import answer_query, certain_rows


@dataclass
class Peer:
    """One participant: schema, edit log, and trust policy."""

    name: str
    schema: PeerSchema
    edit_log: EditLog = field(default=None)  # type: ignore[assignment]
    policy: TrustPolicy = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.edit_log is None:
            self.edit_log = EditLog(self.name)
        if self.policy is None:
            self.policy = TrustPolicy(self.name)


class CDSS:
    """A collaborative data sharing system (Section 2).

    Configuration (peers, mappings, trust) may be extended at any time;
    the internal schema, provenance encoding, and database are (re)built
    lazily on first use after a configuration change.
    """

    def __init__(
        self,
        name: str = "cdss",
        planner: Planner | None = None,
        encoding_style: str = ENCODING_COMPOSITE,
        perspective: str | None = None,
        strategy: str = STRATEGY_INCREMENTAL,
    ) -> None:
        self.name = name
        self.strategy = strategy
        self._planner = planner
        self._encoding_style = encoding_style
        self._perspective = perspective
        self._peers: dict[str, Peer] = {}
        self._mappings: dict[str, SchemaMapping] = {}
        self._relation_owner: dict[str, str] = {}
        self._system: ExchangeSystem | None = None
        self._previous_system: ExchangeSystem | None = None
        self.exchange_reports: list[ExchangeReport] = []

    # -- configuration -------------------------------------------------------

    def add_peer(
        self,
        name: str,
        relations: Mapping[str, Sequence[str]] | Iterable[RelationSchema],
    ) -> Peer:
        """Register a peer with its relations.

        ``relations`` is either a mapping ``{relation: (attr, ...)}`` or an
        iterable of :class:`RelationSchema`.
        """
        if name in self._peers:
            raise SchemaError(f"peer {name!r} already exists")
        if isinstance(relations, Mapping):
            schemas = tuple(
                RelationSchema(rel, tuple(attrs))
                for rel, attrs in relations.items()
            )
        else:
            schemas = tuple(relations)
        peer = Peer(name, PeerSchema(name, schemas))
        for schema in schemas:
            if schema.name in self._relation_owner:
                raise SchemaError(
                    f"relation {schema.name!r} already owned by peer "
                    f"{self._relation_owner[schema.name]!r}"
                )
        for schema in schemas:
            self._relation_owner[schema.name] = name
        self._peers[name] = peer
        self._invalidate()
        return peer

    def add_mapping(self, name: str, tgd: str | SchemaMapping) -> SchemaMapping:
        """Register a schema mapping, given as tgd text or an object."""
        if name in self._mappings:
            raise SchemaError(f"mapping {name!r} already exists")
        mapping = (
            SchemaMapping.parse(name, tgd) if isinstance(tgd, str) else tgd
        )
        self._mappings[name] = mapping
        self._invalidate()
        return mapping

    def set_trust_condition(
        self,
        peer: str,
        mapping: str,
        condition: TrustCondition | Callable[[Row], bool],
        description: str | None = None,
    ) -> None:
        """Attach peer ``peer``'s trust condition to mapping ``mapping``."""
        if not isinstance(condition, TrustCondition):
            condition = TrustCondition(
                description or f"{peer} condition on {mapping}", condition
            )
        self._peer(peer).policy.set_mapping_condition(mapping, condition)
        self._invalidate()

    def distrust_token(
        self, peer: str, relation: str, row: Iterable[object]
    ) -> None:
        """Peer ``peer`` assigns D to a specific base tuple (Section 3.3)."""
        self._peer(peer).policy.distrust_token(relation, row)
        self._invalidate()

    def distrust_peer(self, peer: str, other: str) -> None:
        """Peer ``peer`` distrusts all of ``other``'s base contributions."""
        self._peer(peer).policy.distrust_peer(other)
        self._invalidate()

    # -- editing (offline) -------------------------------------------------------

    def insert(self, relation: str, row: Iterable[object]) -> None:
        """Record an insertion in the owning peer's edit log."""
        peer = self._owner_peer(relation)
        peer.edit_log.insert(relation, row)

    def delete(self, relation: str, row: Iterable[object]) -> None:
        """Record a deletion (curation) in the owning peer's edit log."""
        peer = self._owner_peer(relation)
        peer.edit_log.delete(relation, row)

    def pending_edits(self) -> int:
        return sum(len(peer.edit_log) for peer in self._peers.values())

    # -- update exchange ------------------------------------------------------------

    def update_exchange(
        self,
        peers: Iterable[str] | None = None,
        strategy: str | None = None,
    ) -> ExchangeReport:
        """Publish edit logs and bring the system to a consistent state.

        ``peers`` limits which peers publish (default: all); other peers'
        unpublished edits stay invisible, matching Section 2's operational
        model.
        """
        system = self.system()
        delta = PublishDelta()
        names = tuple(peers) if peers is not None else tuple(self._peers)
        for name in names:
            delta.merge(publish(self._peer(name).edit_log, system.db))
        report = system.apply_delta(delta, strategy or self.strategy)
        self.exchange_reports.append(report)
        return report

    def recompute(self) -> ExchangeReport:
        report = self.system().recompute()
        self.exchange_reports.append(report)
        return report

    # -- inspection --------------------------------------------------------------------

    def system(self) -> ExchangeSystem:
        """The underlying exchange system (rebuilt on demand).

        Reconfiguring (new peers, mappings, or trust) after data has been
        loaded preserves the base data — local contributions and rejections
        carry over and the derived state is recomputed under the new
        configuration.
        """
        if self._system is not None:
            return self._system
        internal = InternalSchema(
            tuple(p.schema for p in self._peers.values()),
            tuple(self._mappings.values()),
        )
        system = ExchangeSystem(
            internal,
            policies={
                name: peer.policy for name, peer in self._peers.items()
            },
            planner=self._planner,
            encoding_style=self._encoding_style,
            perspective=self._perspective,
        )
        if self._previous_system is not None:
            from ..schema.internal import local_name, rejection_name

            carried = False
            for relation in internal.relation_names():
                old_db = self._previous_system.db
                for name_fn in (local_name, rejection_name):
                    old = old_db.get(name_fn(relation))
                    if old is not None and len(old):
                        system.db[name_fn(relation)].insert_many(old)
                        carried = True
            if carried:
                system.recompute()
            self._previous_system = None
        self._system = system
        return system

    @property
    def internal_schema(self) -> InternalSchema:
        return self.system().internal

    def peers(self) -> tuple[str, ...]:
        return tuple(self._peers)

    def mappings(self) -> tuple[SchemaMapping, ...]:
        return tuple(self._mappings.values())

    def instance(self, relation: str) -> frozenset[Row]:
        """The current local instance of ``relation`` (after last exchange)."""
        return self.system().instance(relation)

    def certain_instance(self, relation: str) -> frozenset[Row]:
        """The instance with labeled-null rows dropped (certain answers)."""
        return certain_rows(self.instance(relation))

    def query(self, text: str, certain: bool = True) -> frozenset[Row]:
        system = self.system()
        return answer_query(text, system.db, system.internal, certain=certain)

    def query_program(
        self, text: str, answer: str = "ans", certain: bool = True
    ) -> frozenset[Row]:
        """Evaluate a recursive datalog program over the peer instances.

        Bodies reference user relations; the program may define auxiliary
        intensional predicates (evaluated to fixpoint in scratch space).
        Returns the extension of the ``answer`` predicate.
        """
        from .query import answer_program

        system = self.system()
        return answer_program(
            text, system.db, system.internal, answer=answer, certain=certain
        )

    # -- provenance & trust -------------------------------------------------------------

    def provenance_graph(self) -> ProvenanceGraph:
        system = self.system()
        return build_provenance_graph(system.db, system.encoding)

    def provenance_of(
        self, relation: str, row: Iterable[object], max_depth: int = 8
    ) -> ProvenanceExpression:
        """The provenance expression of a tuple (Example 6)."""
        return self.provenance_graph().expression_for(
            relation, row, max_depth=max_depth
        )

    def evaluate_provenance(
        self,
        semiring: Semiring,
        token_value: Callable[[Token], object] | None = None,
    ) -> dict[Token, object]:
        """Solve the provenance equations of the whole system in a semiring."""
        return self.provenance_graph().evaluate(semiring, token_value)

    def trust_of(
        self, peer: str, relation: str, row: Iterable[object]
    ) -> bool:
        """Evaluate ``peer``'s trust of a tuple against stored provenance
        (Example 7's offline calculation)."""
        verdicts = evaluate_trust(
            self.provenance_graph(),
            self._peer(peer).policy,
            internal=self.internal_schema,
            extra_policies={
                name: p.policy for name, p in self._peers.items()
            },
        )
        return verdicts.get((relation, tuple(row)), False)

    # -- internals ------------------------------------------------------------------------

    def _peer(self, name: str) -> Peer:
        try:
            return self._peers[name]
        except KeyError:
            raise SchemaError(f"unknown peer {name!r}") from None

    def _owner_peer(self, relation: str) -> Peer:
        owner = self._relation_owner.get(relation)
        if owner is None:
            raise SchemaError(f"unknown relation {relation!r}")
        return self._peers[owner]

    def _invalidate(self) -> None:
        if self._system is not None:
            self._previous_system = self._system
        self._system = None

    def __repr__(self) -> str:
        return (
            f"<CDSS {self.name}: {len(self._peers)} peers, "
            f"{len(self._mappings)} mappings>"
        )
