"""Query answering over peer instances with certain-answer semantics.

Section 2.1: queries are answered using only the local peer instance
(``R__o``); labeled nulls are "internal bookkeeping (e.g., queries can join
on their equality), but tuples with labeled nulls are discarded in order to
produce certain answers".  Optionally a superset including labeled nulls can
be returned ("which may be desirable for some applications").

Queries are conjunctive queries with safe negation, written in datalog
syntax over *user* relation names, e.g. Example 3's

    ``ans(x, y) :- U(x, z), U(y, z)``
"""

from __future__ import annotations

import warnings
from typing import Iterable

from ..datalog.ast import Atom, Rule, tuple_has_labeled_null
from ..datalog.planner import Planner
from ..schema.internal import InternalSchema, output_name
from ..storage.database import Database
from ..storage.instance import Row


class QueryError(Exception):
    """Raised for malformed queries."""


def _rewrite_to_internal(rule: Rule, internal: InternalSchema) -> Rule:
    """Rewrite body atoms from user relation names to their ``R__o`` tables."""
    body = []
    for atom in rule.body:
        if atom.predicate not in internal.catalog:
            raise QueryError(
                f"query references unknown relation {atom.predicate!r}"
            )
        if internal.arity_of(atom.predicate) != atom.arity:
            raise QueryError(
                f"query uses {atom.predicate!r} with arity {atom.arity}, "
                f"schema says {internal.arity_of(atom.predicate)}"
            )
        body.append(
            Atom(output_name(atom.predicate), atom.terms, negated=atom.negated)
        )
    return Rule(rule.head, tuple(body), label=rule.label)


def answer_query(
    query: str | Rule,
    db: Database,
    internal: InternalSchema,
    certain: bool = True,
    planner: Planner | None = None,
) -> frozenset[Row]:
    """Deprecated one-shot query helper; use the prepared-query subsystem.

    A thin shim over :mod:`repro.api.query`: the query is prepared (planned
    + compiled once) and executed immediately.  With ``certain=True``
    (default), answers containing labeled nulls are discarded — the
    certain-answer semantics of Section 2.1; with ``certain=False`` the
    superset including labeled nulls is returned.  Prefer
    :meth:`CDSS.prepare <repro.core.cdss.CDSS.prepare>` (re-executable,
    parameterized, plan-cached) or :meth:`CDSS.query
    <repro.core.cdss.CDSS.query>` for one-shots.
    """
    warnings.warn(
        "answer_query is deprecated; use cdss.prepare(query).execute() or "
        "cdss.query(...) (see DESIGN.md's query-subsystem migration table)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api.query import prepare
    from ..datalog.engine import SemiNaiveEngine

    engine = SemiNaiveEngine(planner) if planner is not None else None
    answers = prepare(query, db, internal, engine=engine).execute()
    if not certain:
        answers = answers.with_nulls()
    return answers.to_rows()


def certain_rows(rows: Iterable[Row]) -> frozenset[Row]:
    """Filter labeled-null-carrying rows out of a relation instance."""
    return frozenset(
        row for row in rows if not tuple_has_labeled_null(row)
    )


def rewrite_program_to_internal(
    parsed: "object", internal: InternalSchema, answer: str
) -> "object":
    """Validate a query program and rewrite its EDB atoms to ``R__o``.

    The program's extensional predicates must be user relation names
    (resolved to their output tables); its intensional predicates are
    scratch relations and must not collide with peer relations.  Shared
    by the prepared-program subsystem (:mod:`repro.api.programs`) and the
    deprecated :func:`answer_program` shim.
    """
    from ..datalog.ast import Program

    idb = parsed.idb_predicates()
    if answer not in idb:
        raise QueryError(
            f"program does not define the answer predicate {answer!r}"
        )
    for predicate in idb:
        if predicate in internal.catalog:
            raise QueryError(
                f"query program redefines peer relation {predicate!r}"
            )
    rewritten = []
    for rule in parsed:
        body = []
        for atom in rule.body:
            if atom.predicate in idb:
                body.append(atom)
            elif atom.predicate in internal.catalog:
                if internal.arity_of(atom.predicate) != atom.arity:
                    raise QueryError(
                        f"query uses {atom.predicate!r} with arity "
                        f"{atom.arity}, schema says "
                        f"{internal.arity_of(atom.predicate)}"
                    )
                body.append(
                    Atom(
                        output_name(atom.predicate),
                        atom.terms,
                        negated=atom.negated,
                    )
                )
            else:
                raise QueryError(
                    f"query references unknown relation {atom.predicate!r}"
                )
        rewritten.append(Rule(rule.head, tuple(body), label=rule.label))
    return Program(tuple(rewritten), name="query")


def answer_program(
    program: "str | object",
    db: Database,
    internal: InternalSchema,
    answer: str = "ans",
    certain: bool = True,
    planner: Planner | None = None,
) -> frozenset[Row]:
    """Deprecated one-shot program helper; use the prepared subsystem.

    A thin shim over :func:`repro.api.programs.prepare_program`: the
    program is prepared (rewritten + validated once) and executed
    immediately, bypassing every reuse benefit — plan caching across
    executes, parameterization, warm Δ-relations.  Prefer
    :meth:`CDSS.prepare_program <repro.core.cdss.CDSS.prepare_program>`
    (re-executable) or :meth:`CDSS.query_program
    <repro.core.cdss.CDSS.query_program>` (cached per program text).
    """
    warnings.warn(
        "answer_program is deprecated; use cdss.prepare_program(...) / "
        "cdss.query_program(...) (see DESIGN.md's query-subsystem "
        "migration table)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api.programs import prepare_program

    prepared = prepare_program(
        program, db, internal, answer=answer, planner=planner
    )
    answers = prepared.execute()
    return answers.certain() if certain else answers.with_nulls()
