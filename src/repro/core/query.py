"""Query answering over peer instances with certain-answer semantics.

Section 2.1: queries are answered using only the local peer instance
(``R__o``); labeled nulls are "internal bookkeeping (e.g., queries can join
on their equality), but tuples with labeled nulls are discarded in order to
produce certain answers".  Optionally a superset including labeled nulls can
be returned ("which may be desirable for some applications").

Queries are conjunctive queries with safe negation, written in datalog
syntax over *user* relation names, e.g. Example 3's

    ``ans(x, y) :- U(x, z), U(y, z)``
"""

from __future__ import annotations

from typing import Iterable

from ..datalog.ast import Atom, Rule, tuple_has_labeled_null
from ..datalog.parser import parse_rule
from ..datalog.plan import execute_plan
from ..datalog.planner import Planner, PreparedPlanner
from ..schema.internal import InternalSchema, output_name
from ..storage.database import Database
from ..storage.instance import Instance, Row


class QueryError(Exception):
    """Raised for malformed queries."""


def _rewrite_to_internal(rule: Rule, internal: InternalSchema) -> Rule:
    """Rewrite body atoms from user relation names to their ``R__o`` tables."""
    body = []
    for atom in rule.body:
        if atom.predicate not in internal.catalog:
            raise QueryError(
                f"query references unknown relation {atom.predicate!r}"
            )
        if internal.arity_of(atom.predicate) != atom.arity:
            raise QueryError(
                f"query uses {atom.predicate!r} with arity {atom.arity}, "
                f"schema says {internal.arity_of(atom.predicate)}"
            )
        body.append(
            Atom(output_name(atom.predicate), atom.terms, negated=atom.negated)
        )
    return Rule(rule.head, tuple(body), label=rule.label)


def answer_query(
    query: str | Rule,
    db: Database,
    internal: InternalSchema,
    certain: bool = True,
    planner: Planner | None = None,
) -> frozenset[Row]:
    """Evaluate a conjunctive query against the peers' local instances.

    With ``certain=True`` (default), answers containing labeled nulls are
    discarded — the certain-answer semantics validated by "over a decade of
    use in data integration and data exchange" (Section 2.1).  With
    ``certain=False`` the superset including labeled nulls is returned.
    """
    rule = parse_rule(query) if isinstance(query, str) else query
    if not rule.body:
        raise QueryError("query must have a non-empty body")
    rule.check_safety()
    internal_rule = _rewrite_to_internal(rule, internal)
    plan = (planner or PreparedPlanner()).plan(internal_rule, db, None)

    def resolve(_index: int, atom: Atom):
        if atom.predicate in db:
            return db[atom.predicate]
        return Instance(atom.predicate, atom.arity)

    answers = {row for row, _ in execute_plan(plan, resolve)}
    if certain:
        answers = {
            row for row in answers if not tuple_has_labeled_null(row)
        }
    return frozenset(answers)


def certain_rows(rows: Iterable[Row]) -> frozenset[Row]:
    """Filter labeled-null-carrying rows out of a relation instance."""
    return frozenset(
        row for row in rows if not tuple_has_labeled_null(row)
    )


def answer_program(
    program: "str | object",
    db: Database,
    internal: InternalSchema,
    answer: str = "ans",
    certain: bool = True,
    planner: Planner | None = None,
) -> frozenset[Row]:
    """Evaluate a (possibly recursive) datalog program over peer instances.

    The program's extensional predicates are user relation names (resolved
    to their ``R__o`` tables); its intensional predicates are scratch
    relations evaluated to fixpoint without touching the exchanged state.
    The extension of ``answer`` is returned, with labeled-null rows dropped
    under certain-answer semantics.

    Example — reachability over a synonym relation::

        answer_program('''
            Reach(x, y) :- U(x, y)
            Reach(x, z) :- Reach(x, y), U(y, z)
            ans(x, y) :- Reach(x, y)
        ''', db, internal)
    """
    from ..datalog.ast import Program
    from ..datalog.engine import SemiNaiveEngine
    from ..datalog.parser import parse_program

    parsed: Program = (
        parse_program(program) if isinstance(program, str) else program  # type: ignore[assignment]
    )
    if answer not in parsed.idb_predicates():
        raise QueryError(
            f"program does not define the answer predicate {answer!r}"
        )
    idb = parsed.idb_predicates()
    for predicate in idb:
        if predicate in internal.catalog:
            raise QueryError(
                f"query program redefines peer relation {predicate!r}"
            )
    rewritten = []
    for rule in parsed:
        body = []
        for atom in rule.body:
            if atom.predicate in idb:
                body.append(atom)
            elif atom.predicate in internal.catalog:
                if internal.arity_of(atom.predicate) != atom.arity:
                    raise QueryError(
                        f"query uses {atom.predicate!r} with arity "
                        f"{atom.arity}, schema says "
                        f"{internal.arity_of(atom.predicate)}"
                    )
                body.append(
                    Atom(
                        output_name(atom.predicate),
                        atom.terms,
                        negated=atom.negated,
                    )
                )
            else:
                raise QueryError(
                    f"query references unknown relation {atom.predicate!r}"
                )
        rewritten.append(Rule(rule.head, tuple(body), label=rule.label))

    scratch = Database()
    for relation in internal.relation_names():
        instance = db.get(output_name(relation))
        if instance is not None:
            scratch.attach(instance)
    engine = SemiNaiveEngine(planner)
    from ..datalog.ast import Program as ProgramCls

    engine.run(ProgramCls(tuple(rewritten), name="query"), scratch)
    answers = scratch[answer].rows()
    if certain:
        answers = certain_rows(answers)
    return frozenset(answers)
