"""The inverse-rule datalog program of Section 4.1.3, as actual datalog.

:mod:`repro.core.derivation` implements derivation testing directly
(backward slice + grounding).  This module constructs the paper's
formulation *literally* — a datalog program run by the ordinary engine:

* ``Rchk`` relations seed the tuples whose derivation is being checked;
* inverse rules ``P'Ri(x, y) :- PRi(x, y), Rchk(x, f(x))`` use the stored
  provenance tables "to fill in the possible values ... that were projected
  away during the mapping" (Skolem patterns in the ``Rchk`` atom bind the
  labeled nulls' arguments);
* slice rules push the check down to the source tuples of each surviving
  provenance row, reaching fixpoint on the backward slice;
* a validation program then re-runs the original mappings *restricted to
  the slice* from the local-contribution tables, respecting trust
  conditions and rejections — "validate that the Rchk tuples can indeed be
  re-derived if we run the original datalog program over the R'
  instances".

The test suite cross-checks this program against the direct implementation
on randomized workloads; the direct one is what the incremental engine
uses (it avoids materializing the intermediate relations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..datalog.ast import Atom, Program, Rule, Variable
from ..datalog.engine import HeadFilter, SemiNaiveEngine
from ..provenance.relations import ProvenanceEncoding
from ..provenance.semiring import Token
from ..schema.internal import (
    LOCAL_RULE_PREFIX,
    local_name,
    rejection_name,
)
from ..storage.database import Database
from ..storage.instance import Row

CHECK_PREFIX = "__chk_"
SLICE_PROV_PREFIX = "__slice_"
VALID_LOCAL_PREFIX = "__vl_"
VALID_TRUSTED_PREFIX = "__vt_"
VALID_OUTPUT_PREFIX = "__vo_"
VALID_PROV_PREFIX = "__vp_"


def check_name(relation: str) -> str:
    return CHECK_PREFIX + relation


def valid_output_name(relation: str) -> str:
    return VALID_OUTPUT_PREFIX + relation


@dataclass(frozen=True)
class InverseRuleProgram:
    """The two-phase program: backward slice, then validation."""

    slice_program: Program
    validation_program: Program
    head_filters: dict[str, HeadFilter]


def build_inverse_program(
    encoding: ProvenanceEncoding,
    head_filters: Mapping[str, HeadFilter] | None = None,
) -> InverseRuleProgram:
    """Construct the Section 4.1.3 program for an encoding."""
    head_filters = dict(head_filters or {})
    internal = encoding.internal
    slice_rules: list[Rule] = []
    validation_rules: list[Rule] = []
    new_filters: dict[str, HeadFilter] = {}

    for table in encoding.tables:
        prov_atom = Atom(table.relation, table.variables)
        slice_prov = SLICE_PROV_PREFIX + table.relation
        slice_prov_atom = Atom(slice_prov, table.variables)
        for head in table.heads:
            # P'Ri(x, y) :- Rchk(head pattern), PRi(x, y)
            # The Rchk atom's Skolem patterns bind the projected-away
            # attributes through the labeled nulls.
            check_atom = Atom(
                check_name(head.user_relation), head.atom.terms
            )
            slice_rules.append(
                Rule(
                    slice_prov_atom,
                    (check_atom, prov_atom),
                    label=f"inv:{table.relation}:{head.index}",
                )
            )
        # Push the check down to every positive source tuple.
        for _index, atom in table.positive_body_atoms():
            user_rel = atom.predicate[: -len("__o")]
            slice_rules.append(
                Rule(
                    Atom(check_name(user_rel), atom.terms),
                    (slice_prov_atom,),
                    label=f"down:{table.relation}:{user_rel}",
                )
            )

        # Validation: re-run the mapping over the validated sources.
        valid_body = tuple(
            Atom(
                VALID_OUTPUT_PREFIX + a.predicate[: -len("__o")],
                a.terms,
                negated=a.negated,
            )
            if not a.negated
            else Atom(a.predicate, a.terms, negated=True)
            for a in table.body
        )
        valid_prov = VALID_PROV_PREFIX + table.relation
        validation_rules.append(
            Rule(
                Atom(valid_prov, table.variables),
                valid_body,
                label=f"vprov:{table.relation}",
            )
        )
        for head in table.heads:
            label = f"vtrust:{head.trust_label}"
            validation_rules.append(
                Rule(
                    Atom(
                        VALID_TRUSTED_PREFIX + head.user_relation,
                        head.atom.terms,
                    ),
                    (Atom(valid_prov, table.variables),),
                    label=label,
                )
            )
            condition = head_filters.get(head.trust_label)
            if condition is not None:
                new_filters[label] = condition

    for relation in internal.relation_names():
        arity = internal.arity_of(relation)
        variables = tuple(Variable(f"x{i}") for i in range(arity))
        # Valid locals: contributions inside the slice.
        label = f"vlocal:{relation}"
        validation_rules.append(
            Rule(
                Atom(VALID_LOCAL_PREFIX + relation, variables),
                (
                    Atom(local_name(relation), variables),
                    Atom(check_name(relation), variables),
                ),
                label=label,
            )
        )
        token_filter = head_filters.get(LOCAL_RULE_PREFIX + relation)
        if token_filter is not None:
            new_filters[label] = token_filter
        # Output-validity mirrors (lR) and (tR).
        validation_rules.append(
            Rule(
                Atom(VALID_OUTPUT_PREFIX + relation, variables),
                (Atom(VALID_LOCAL_PREFIX + relation, variables),),
                label=f"vlR:{relation}",
            )
        )
        validation_rules.append(
            Rule(
                Atom(VALID_OUTPUT_PREFIX + relation, variables),
                (
                    Atom(VALID_TRUSTED_PREFIX + relation, variables),
                    Atom(rejection_name(relation), variables, negated=True),
                ),
                label=f"vtR:{relation}",
            )
        )

    return InverseRuleProgram(
        slice_program=Program(tuple(slice_rules), name="inverse-slice"),
        validation_program=Program(
            tuple(validation_rules), name="inverse-validate"
        ),
        head_filters=new_filters,
    )


def derivable_by_inverse_rules(
    db: Database,
    encoding: ProvenanceEncoding,
    checks: Iterable[Token],
    head_filters: Mapping[str, HeadFilter] | None = None,
) -> dict[Token, bool]:
    """Run the Section 4.1.3 program and report output-derivability.

    The scratch relations are created in (and afterwards removed from) the
    given database, mirroring ORCHESTRA's use of temporary tables.
    """
    checks = [(relation, tuple(row)) for relation, row in checks]
    program = build_inverse_program(encoding, head_filters)
    internal = encoding.internal
    scratch: list[str] = []
    try:
        # Seed the Rchk relations.
        for relation in internal.relation_names():
            arity = internal.arity_of(relation)
            for prefix in (
                CHECK_PREFIX,
                VALID_LOCAL_PREFIX,
                VALID_TRUSTED_PREFIX,
                VALID_OUTPUT_PREFIX,
            ):
                name = prefix + relation
                db.ensure(name, arity)
                scratch.append(name)
        for table in encoding.tables:
            for prefix in (SLICE_PROV_PREFIX, VALID_PROV_PREFIX):
                name = prefix + table.relation
                db.ensure(name, table.arity)
                scratch.append(name)
        for relation, row in checks:
            db[check_name(relation)].insert(row)

        engine = SemiNaiveEngine(head_filters=program.head_filters)
        engine.run(program.slice_program, db)
        engine.run(program.validation_program, db)
        return {
            (relation, row): row in db[valid_output_name(relation)]
            for relation, row in checks
        }
    finally:
        for name in set(scratch):
            db.drop(name)
