"""Table statistics for the cost-based planner.

The paper's DB2 backend relies on the RDBMS query optimizer, which picks join
orders from table statistics (Section 5.1: "getting good and consistent
performance required extensive tuning, as the query optimizer occasionally
chose poor plans").  Our cost-based planner consumes the statistics computed
here: cardinalities and per-column numbers of distinct values (NDV), from
which it estimates bind-join fan-outs.

Statistics are cached per instance version so repeated planning rounds over
an unchanged table do not rescan it — and deliberately go stale *within* a
planning round, as real optimizer statistics do.
"""

from __future__ import annotations

from dataclasses import dataclass

from .instance import Instance


@dataclass(frozen=True)
class TableStats:
    """Summary statistics for one relation instance."""

    name: str
    cardinality: int
    distinct: tuple[int, ...]  # per-column NDV

    def selectivity(self, columns: tuple[int, ...]) -> float:
        """Estimated fraction of rows matching an equality probe on
        ``columns``, under the standard independence + uniformity assumptions.
        """
        if self.cardinality == 0:
            return 0.0
        fraction = 1.0
        for col in columns:
            ndv = max(1, self.distinct[col])
            fraction /= ndv
        return fraction

    def fanout(self, columns: tuple[int, ...]) -> float:
        """Estimated number of rows returned by an equality probe."""
        return self.cardinality * self.selectivity(columns)


def compute_stats(instance: Instance) -> TableStats:
    """Scan ``instance`` and compute cardinality and per-column NDV."""
    if instance.arity == 0:
        return TableStats(instance.name, len(instance), ())
    seen: list[set[object]] = [set() for _ in range(instance.arity)]
    for row in instance:
        for col, value in enumerate(row):
            seen[col].add(value)
    return TableStats(
        instance.name,
        len(instance),
        tuple(len(values) for values in seen),
    )


class StatisticsCache:
    """Version-aware cache of :class:`TableStats` keyed by relation name."""

    def __init__(self) -> None:
        self._cache: dict[str, tuple[int, TableStats]] = {}

    def stats_for(self, instance: Instance) -> TableStats:
        cached = self._cache.get(instance.name)
        if cached is not None and cached[0] == instance.version:
            return cached[1]
        stats = compute_stats(instance)
        self._cache[instance.name] = (instance.version, stats)
        return stats

    def invalidate(self, name: str | None = None) -> None:
        if name is None:
            self._cache.clear()
        else:
            self._cache.pop(name, None)
