"""The storage-backend protocol: named buckets behind one interface.

The paper's Tukwila backend keeps peer instances and provenance tables in
auxiliary Berkeley DB storage; our reproduction grew the same seam in two
steps.  PR 4's ``IndexSet`` split isolated *index maintenance* policy —
this module isolates *row storage*: everything that persists relation
contents (checkpointing, the durable node's on-disk state) talks to a
:class:`StorageBackend`, and the two implementations are

* :class:`~repro.storage.kvstore.KeyValueStore` — the historical
  in-memory B+-tree store (one tree per bucket), and
* :class:`~repro.storage.sqlite.SQLiteStore` — an on-disk sqlite3 store
  (one table per bucket), which survives process exit.

The protocol is the bucket surface the Berkeley-DB-style store always
had — ``put`` / ``get`` / ``delete`` / ``cursor`` / ``size`` / ``drop`` /
``bucket_names`` — plus the two things durability needs: a
:meth:`~StorageBackend.transaction` scope (checkpoints must be atomic:
either the old checkpoint or the new one, never a torn mix) and
:meth:`~StorageBackend.close`.  Both are no-ops for the in-memory store.

Backends may iterate cursors in different (but individually
deterministic) key orders; callers that need a specific order sort.  The
parity contract — same contents in, same contents out, labeled nulls
preserved — is property-tested in ``tests/test_storage_sqlite.py``.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

BACKEND_MEMORY = "memory"
BACKEND_SQLITE = "sqlite"
BACKENDS = (BACKEND_MEMORY, BACKEND_SQLITE)


@runtime_checkable
class StorageBackend(Protocol):
    """Named, ordered buckets of key -> value pairs."""

    def put(self, bucket: str, key: object, value: object) -> None:
        """Insert or replace ``key`` in ``bucket``."""

    def get(
        self, bucket: str, key: object, default: object = None
    ) -> object:
        """The value under ``key``, or ``default``."""

    def delete(self, bucket: str, key: object) -> bool:
        """Remove ``key``; True iff it was present."""

    def cursor(
        self, bucket: str, low: object = None, high: object = None
    ) -> Iterator[tuple[object, object]]:
        """Iterate ``(key, value)`` pairs in the backend's key order."""

    def values(self, bucket: str) -> Iterator[object]:
        """Iterate values in cursor order, without materializing keys.

        Bulk restore reads whole buckets and never looks at the keys;
        durable backends can skip decoding them (measurably half the
        recovery decode cost).
        """

    def size(self, bucket: str) -> int:
        """Number of keys in ``bucket`` (0 for a missing bucket)."""

    def drop(self, bucket: str) -> bool:
        """Remove a whole bucket; True iff it existed."""

    def bucket_names(self) -> tuple[str, ...]:
        """All bucket names, sorted."""

    def transaction(self):
        """A context manager making the enclosed writes atomic.

        Durable backends must guarantee all-or-nothing visibility after a
        crash; in-memory backends may return a no-op scope.
        """

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""


def open_backend(kind: str, path: str | None = None) -> StorageBackend:
    """Construct a backend by name (``memory`` or ``sqlite``)."""
    from .instance import StorageError

    if kind == BACKEND_MEMORY:
        from .kvstore import KeyValueStore

        return KeyValueStore()
    if kind == BACKEND_SQLITE:
        from .sqlite import SQLiteStore

        return SQLiteStore(path if path is not None else ":memory:")
    raise StorageError(
        f"unknown storage backend {kind!r}; expected one of {BACKENDS}"
    )
