"""Pluggable index maintenance for relation instances.

An :class:`IndexSet` owns the hash indexes of one :class:`~repro.storage.
instance.Instance` and decides *when* maintenance work happens.  Two
policies:

* **eager** (:class:`EagerIndexSet`) — every mutation patches every
  materialized index immediately, the classic OLTP discipline and the
  storage layer's historical behaviour;
* **deferred** (:class:`DeferredIndexSet`) — while a *deferral scope* is
  open (see :meth:`Instance.defer_maintenance
  <repro.storage.instance.Instance.defer_maintenance>`), mutations only
  append insert/delete *runs* to a log.  Each materialized index keeps a
  cursor into that log and catches up in one batched pass when it is next
  probed; a *flush barrier* (scope exit or an explicit ``flush_indexes``)
  catches every index up and truncates the log.  Outside a scope the
  deferred policy applies mutations immediately, exactly like eager.

The deferred policy is the batch-oriented maintenance lever of analytical
engines (cf. Greenplum's hybrid storage): a fixpoint computation that
inserts into a derived table round after round pays one columnar index
pass per *barrier* (or per probed index) instead of one per insert batch,
and per-row churn (delete-then-rederive) coalesces to its net effect
before any index is touched.

**Snapshot-consistency rule**: the row set (``Instance._rows``) is always
maintained eagerly; only index buckets lag.  Every probe entry point
(:meth:`IndexSet.bucket`, :meth:`IndexSet.key_count`) synchronizes the
probed index first, so a reader can never observe stale index state — not
even inside a deferral scope.  Deferral changes *when* maintenance work is
done, never *what* a probe returns.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from ..obs import tracing as _tracing

Row = tuple[object, ...]

POLICY_EAGER = "eager"
POLICY_DEFERRED = "deferred"
INDEX_POLICIES = (POLICY_EAGER, POLICY_DEFERRED)

_EMPTY_BUCKET: frozenset[Row] = frozenset()

# Deferred-log operation kinds.
_LOG_INSERT = 0
_LOG_DELETE = 1
_LOG_REBUILD = 2  # contents replaced wholesale: rebuild from the live rows


def make_index_set(policy: str, rows: set[Row]) -> "IndexSet":
    """Construct the :class:`IndexSet` for ``policy`` over the live row set.

    ``rows`` is the instance's *live* row storage (aliased, not copied):
    index builds and rebuilds read through it, which is what keeps deferred
    synchronization exact — the rows are always current.
    """
    if policy == POLICY_EAGER:
        return EagerIndexSet(rows)
    if policy == POLICY_DEFERRED:
        return DeferredIndexSet(rows)
    raise ValueError(
        f"unknown index policy {policy!r}; expected one of {INDEX_POLICIES}"
    )


class IndexSet:
    """Base class: the hash indexes of one instance, maintenance-agnostic.

    Subclasses implement the mutation notifications; probes and index
    materialization are shared.  ``_by_cols`` maps an indexed column tuple
    to ``{key tuple -> set of rows}``.
    """

    policy = "abstract"

    __slots__ = ("_rows", "_by_cols")

    def __init__(self, rows: set[Row]) -> None:
        self._rows = rows
        self._by_cols: dict[tuple[int, ...], dict[Row, set[Row]]] = {}

    # -- introspection -----------------------------------------------------

    def columns(self) -> tuple[tuple[int, ...], ...]:
        return tuple(self._by_cols.keys())

    @property
    def pending_ops(self) -> int:
        """Log entries not yet applied to every index (0 for eager)."""
        return 0

    @property
    def deferring(self) -> bool:
        return False

    # -- materialization ---------------------------------------------------

    def _build(self, cols: tuple[int, ...]) -> dict[Row, set[Row]]:
        index: dict[Row, set[Row]] = {}
        self._patch_one_insert(index, cols, self._rows)
        return index

    def ensure(self, cols: tuple[int, ...]) -> None:
        """Materialize the index on ``cols`` if absent (always current:
        it is built from the live rows)."""
        if cols not in self._by_cols:
            self._by_cols[cols] = self._build(cols)

    # -- probes ------------------------------------------------------------

    def sync(self, cols: tuple[int, ...] | None = None) -> None:
        """Bring one index (or, with ``None``, all of them) up to date."""

    def probe_count(self, cols: tuple[int, ...]) -> int:
        """Hotness counter for one index (0 under eager maintenance)."""
        return 0

    def stats(self) -> dict[str, object]:
        """Maintenance statistics (benchmarks/tests; policy-dependent)."""
        return {"policy": self.policy, "indexes": len(self._by_cols)}

    def bucket(self, cols: tuple[int, ...], key: Row) -> frozenset[Row] | set[Row]:
        """The (synchronized) index bucket for ``key``; empty if absent."""
        self.ensure(cols)
        found = self._by_cols[cols].get(key)
        return found if found is not None else _EMPTY_BUCKET

    def probe(self, cols: tuple[int, ...], key: Row) -> frozenset[Row] | set[Row]:
        """Like :meth:`bucket`, but raises ``KeyError`` for an absent index
        instead of materializing it — the executor's hot path, where the
        caller validates and builds on the (one-time) miss."""
        found = self._by_cols[cols].get(key)
        return found if found is not None else _EMPTY_BUCKET

    def key_count(self, cols: tuple[int, ...]) -> int:
        self.ensure(cols)
        return len(self._by_cols[cols])

    # -- mutation notifications (rows already applied to ``_rows``) --------

    def insert_rows(self, added: Sequence[Row]) -> None:
        raise NotImplementedError

    def delete_rows(self, removed: Sequence[Row]) -> None:
        raise NotImplementedError

    def _patch_insert(self, added: Sequence[Row]) -> None:
        for cols, index in self._by_cols.items():
            self._patch_one_insert(index, cols, added)

    @staticmethod
    def _patch_one_insert(
        index: dict[Row, set[Row]], cols: tuple[int, ...], added: Iterable[Row]
    ) -> None:
        # ``get`` + literal-set creation beats ``setdefault(key, set())``,
        # which allocates a throwaway set on every hit; single-column
        # indexes (key joins, serving lookups) skip the per-row generator.
        get = index.get
        if len(cols) == 1:
            c = cols[0]
            for row in added:
                key = (row[c],)
                bucket = get(key)
                if bucket is None:
                    index[key] = {row}
                else:
                    bucket.add(row)
        else:
            for row in added:
                key = tuple(row[c] for c in cols)
                bucket = get(key)
                if bucket is None:
                    index[key] = {row}
                else:
                    bucket.add(row)

    def _patch_delete(self, removed: Sequence[Row]) -> None:
        for cols, index in self._by_cols.items():
            self._patch_one_delete(index, cols, removed)

    @staticmethod
    def _patch_one_delete(
        index: dict[Row, set[Row]],
        cols: tuple[int, ...],
        removed: Iterable[Row],
    ) -> None:
        single = cols[0] if len(cols) == 1 else None
        for row in removed:
            key = (
                (row[single],)
                if single is not None
                else tuple(row[c] for c in cols)
            )
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]

    def _clear_buckets(self) -> None:
        # Keep the dicts (their capacity stays warm), drop the entries.
        for index in self._by_cols.values():
            index.clear()

    def drop_all(self) -> None:
        """The instance was cleared: drop every index definition."""
        self._by_cols.clear()

    def turnover(self) -> None:
        """Contents replaced wholesale; keep definitions, rebuild lazily or
        now (policy-dependent).  Called *before* the new rows land."""
        raise NotImplementedError

    # -- barriers ----------------------------------------------------------

    def begin_defer(self) -> None:
        """Enter a deferral scope (no-op for eager maintenance)."""

    def end_defer(self) -> None:
        """Leave a deferral scope; the outermost exit is a flush barrier."""

    def flush(self) -> None:
        """Apply all pending maintenance now (no-op for eager)."""

    # -- copying -----------------------------------------------------------

    def adopt(self, other: "IndexSet") -> None:
        """Carry ``other``'s index definitions into this (fresh) set.

        Buckets are copied, not rebuilt — cheaper than re-deriving every
        key tuple.  ``other`` is synchronized first so the copy is exact
        (synchronized, not barrier-flushed: a copy must carry every index
        definition, including ones a barrier would retire as cold).
        """
        other.sync(None)
        for cols, index in other._by_cols.items():
            self._by_cols[cols] = {
                key: set(bucket) for key, bucket in index.items()
            }


class EagerIndexSet(IndexSet):
    """Classic immediate maintenance: every mutation patches every index."""

    policy = POLICY_EAGER

    __slots__ = ()

    def insert_rows(self, added: Sequence[Row]) -> None:
        self._patch_insert(added)

    def delete_rows(self, removed: Sequence[Row]) -> None:
        self._patch_delete(removed)

    def turnover(self) -> None:
        self._clear_buckets()


class DeferredIndexSet(IndexSet):
    """Batched maintenance with per-index catch-up cursors.

    While ``deferring``, mutations append ``(op, rows)`` runs to ``_log``;
    ``_cursor[cols]`` records how much of the log index ``cols`` has seen.
    Synchronization replays the unseen suffix *coalesced to its net
    effect* (a row inserted and deleted in the same epoch never touches an
    index), and falls back to a wholesale rebuild when the net change
    outweighs the table — the columnar batch pass.
    """

    policy = POLICY_DEFERRED

    #: Spill threshold: coalesce the log in place once it holds more than
    #: ``max(SPILL_MIN_ROWS, SPILL_FACTOR * live rows)`` logged rows, so
    #: arbitrarily long deferral epochs keep the log O(live rows).
    SPILL_MIN_ROWS = 4096
    SPILL_FACTOR = 4

    #: An index is *hot* if it was probed since the last barrier decay;
    #: barriers settle hot rebuild-scale debt in place instead of retiring
    #: the index to its next probe.
    HOT_PROBES = 1

    __slots__ = (
        "_log",
        "_log_rows",
        "_cursor",
        "_depth",
        "_probes",
        "applied_runs",
        "rebuilds",
        "retired",
        "hot_settled",
        "spills",
        "settle_wall_seconds",
        "settle_cpu_seconds",
    )

    def __init__(self, rows: set[Row]) -> None:
        super().__init__(rows)
        self._log: list[tuple[int, tuple[Row, ...]]] = []
        self._log_rows = 0
        self._cursor: dict[tuple[int, ...], int] = {}
        self._depth = 0
        # Probe-hotness counters, decayed at each barrier (see flush).
        self._probes: dict[tuple[int, ...], int] = {}
        #: Maintenance counters (cumulative; for benchmarks and tests).
        self.applied_runs = 0
        self.rebuilds = 0
        self.retired = 0
        self.hot_settled = 0
        self.spills = 0
        # Always-on settle clocks (timed per catch-up pass, not per row):
        # the ExchangeReport "index_settle" phase reads their movement.
        self.settle_wall_seconds = 0.0
        self.settle_cpu_seconds = 0.0

    # -- introspection -----------------------------------------------------

    @property
    def pending_ops(self) -> int:
        if not self._log:
            return 0
        end = len(self._log)
        if not self._by_cols:
            return end
        return max(end - pos for pos in self._cursor.values())

    @property
    def deferring(self) -> bool:
        return self._depth > 0

    # -- materialization ---------------------------------------------------

    def ensure(self, cols: tuple[int, ...]) -> None:
        if cols not in self._by_cols:
            self._by_cols[cols] = self._build(cols)
            # Built from the live rows: already past the whole log.
            self._cursor[cols] = len(self._log)

    # -- probes ------------------------------------------------------------

    def bucket(self, cols: tuple[int, ...], key: Row) -> frozenset[Row] | set[Row]:
        self.ensure(cols)
        if self._log and self._cursor[cols] < len(self._log):
            self._sync_one(cols)
        found = self._by_cols[cols].get(key)
        return found if found is not None else _EMPTY_BUCKET

    def probe(self, cols: tuple[int, ...], key: Row) -> frozenset[Row] | set[Row]:
        # _cursor[cols] raises KeyError for an absent index (the caller
        # builds and retries); the log check keeps the common synchronized
        # case as cheap as the eager probe.
        if self._log and self._cursor[cols] < len(self._log):
            self._sync_one(cols)
        found = self._by_cols[cols].get(key)
        return found if found is not None else _EMPTY_BUCKET

    def key_count(self, cols: tuple[int, ...]) -> int:
        self.ensure(cols)
        if self._cursor[cols] < len(self._log):
            self._sync_one(cols)
        return len(self._by_cols[cols])

    def sync(self, cols: tuple[int, ...] | None = None) -> None:
        if cols is not None:
            # The targeted-sync entry (one call per probe loop, via
            # Instance.prepare_probe) doubles as the hotness signal: it
            # fires once per pipeline step / pushdown probe, not once per
            # row, so counting here costs nothing on the lookup hot path.
            self.ensure(cols)
            self._probes[cols] = self._probes.get(cols, 0) + 1
            if self._cursor[cols] < len(self._log):
                self._sync_one(cols)
            return
        for indexed in self._by_cols:
            if self._cursor[indexed] < len(self._log):
                self._sync_one(indexed)
        self._truncate_log()

    def probe_count(self, cols: tuple[int, ...]) -> int:
        return self._probes.get(cols, 0)

    def stats(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "indexes": len(self._by_cols),
            "pending_ops": self.pending_ops,
            "applied_runs": self.applied_runs,
            "rebuilds": self.rebuilds,
            "retired": self.retired,
            "hot_settled": self.hot_settled,
            "spills": self.spills,
            "settle_wall_seconds": self.settle_wall_seconds,
            "settle_cpu_seconds": self.settle_cpu_seconds,
            "probe_counts": dict(self._probes),
        }

    # -- mutation notifications --------------------------------------------

    def insert_rows(self, added: Sequence[Row]) -> None:
        if self._depth and self._by_cols:
            self._log.append((_LOG_INSERT, tuple(added)))
            self._log_rows += len(added)
            self._maybe_spill()
        else:
            self._patch_insert(added)

    def delete_rows(self, removed: Sequence[Row]) -> None:
        if self._depth and self._by_cols:
            self._log.append((_LOG_DELETE, tuple(removed)))
            self._log_rows += len(removed)
            self._maybe_spill()
        else:
            self._patch_delete(removed)

    def drop_all(self) -> None:
        self._by_cols.clear()
        self._log.clear()
        self._log_rows = 0
        self._cursor.clear()
        self._probes.clear()

    def turnover(self) -> None:
        if self._depth and self._by_cols:
            # A rebuild marker supersedes anything an index has not yet
            # seen — synchronization from here rebuilds from the live rows.
            self._log.append((_LOG_REBUILD, ()))
            self._log_rows += 1
        else:
            self._clear_buckets()

    # -- barriers ----------------------------------------------------------

    def adopt(self, other: IndexSet) -> None:
        super().adopt(other)
        for cols in self._by_cols:
            self._cursor[cols] = len(self._log)

    def begin_defer(self) -> None:
        self._depth += 1

    def end_defer(self) -> None:
        if self._depth == 0:
            raise RuntimeError("end_defer without a matching begin_defer")
        self._depth -= 1
        if self._depth == 0:
            self.flush()

    def flush(self) -> None:
        """The barrier pass: settle every index's maintenance debt.

        Indexes with a small pending suffix are patched (they stay warm
        for the reads that kept probing them).  An index whose debt is
        *rebuild-scale* — a turnover marker, or net changes outweighing
        the table — is **retired** instead: its definition is dropped and
        the next probe (if any ever comes) rebuilds it from the live rows
        at the same cost the barrier would have paid.  Cold indexes that
        nobody reads again thus cost nothing, which is the deferred
        policy's scan-what-you-read guarantee: maintenance effort is
        proportional to the indexes actually probed, not to the indexes
        that exist.

        **Hotness.**  Retirement defers the rebuild to the next probe —
        the right call for indexes nobody reads, and a first-read stall
        for the ones serving steady traffic.  Each targeted sync bumps a
        per-index probe counter; an index probed at least
        :attr:`HOT_PROBES` times since the previous barrier is *hot* and
        has rebuild-scale debt settled here, at the barrier, instead
        (``hot_settled`` counts these).  Counters halve at every barrier,
        so an index only stays hot while traffic keeps arriving —
        one-shot probes (a cold attribute lookup) decay back to cold by
        the next barrier.
        """
        self._settle_all()
        # Decay: hotness must be earned again between barriers.
        self._probes = {
            cols: count >> 1
            for cols, count in self._probes.items()
            if count > 1 and cols in self._by_cols
        }

    def _settle_all(self) -> None:
        """Settle or retire every index with pending debt; truncate."""
        if self._log:
            end = len(self._log)
            for cols in [
                c for c, pos in self._cursor.items() if pos < end
            ]:
                if self._debt_is_rebuild_scale(cols, end):
                    if self._probes.get(cols, 0) >= self.HOT_PROBES:
                        self._sync_one(cols)
                        self.hot_settled += 1
                    else:
                        del self._by_cols[cols]
                        del self._cursor[cols]
                        self._probes.pop(cols, None)
                        self.retired += 1
                else:
                    self._sync_one(cols)
        self._truncate_log()

    def _maybe_spill(self) -> None:
        """Coalesce the log in place once it outgrows the live table.

        A very long deferral epoch (a huge publish, a migration script
        holding one scope open) would otherwise retain every mutated row
        until the barrier.  Once the logged row count exceeds
        ``max(SPILL_MIN_ROWS, SPILL_FACTOR * live rows)`` the pending
        debt is settled exactly as a barrier would settle it (hot indexes
        patched or rebuilt, cold ones retired — churn nets out through
        the same coalescing paths) and the log is truncated, bounding its
        size by the live row count regardless of epoch length.
        """
        if self._log_rows <= max(
            self.SPILL_MIN_ROWS, self.SPILL_FACTOR * len(self._rows)
        ):
            return
        self.spills += 1
        self._settle_all()

    def _debt_is_rebuild_scale(self, cols: tuple[int, ...], end: int) -> bool:
        start = self._cursor[cols]
        changed = 0
        for position in range(start, end):
            op, rows = self._log[position]
            if op == _LOG_REBUILD:
                return True
            changed += len(rows)
        return changed >= len(self._rows)

    # -- synchronization core ----------------------------------------------

    def _sync_one(self, cols: tuple[int, ...]) -> None:
        """Catch one index up with the log suffix past its cursor."""
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        span = (
            _tracing.start("index-settle", pending=len(self._log))
            if _tracing.ENABLED
            else None
        )
        self._apply_suffix(cols)
        self._maybe_truncate()
        if span is not None:
            _tracing.finish(span)
        self.settle_wall_seconds += time.perf_counter() - wall0
        self.settle_cpu_seconds += time.process_time() - cpu0

    def _apply_suffix(self, cols: tuple[int, ...]) -> None:
        start = self._cursor[cols]
        log = self._log
        end = len(log)
        self._cursor[cols] = end
        self.applied_runs += end - start
        index = self._by_cols[cols]
        # One classification pass: a rebuild marker voids everything older
        # (the live rows are the only source of truth after a turnover);
        # otherwise note whether the suffix mixes inserts and deletes.
        ops = 0
        changed = 0
        for position in range(start, end):
            op, rows = log[position]
            if op == _LOG_REBUILD:
                self._rebuild(cols)
                return
            ops |= 1 << op
            changed += len(rows)
        if ops != 0b11:
            # Homogeneous suffix: effective runs are pairwise disjoint by
            # construction (a second effective insert of a row requires an
            # intervening delete, and vice versa), so apply them straight
            # through — the same total work eager would have done, in one
            # batched pass per index instead of one per mutation batch.
            if changed >= len(self._rows):
                # At least as cheap to rebuild as to patch: one tight pass
                # over the live rows (the columnar bulk-load case — e.g. a
                # table populated from empty inside the epoch, or a
                # delete-heavy suffix leaving a small table behind).
                self._rebuild(cols)
                return
            patch = (
                self._patch_one_insert if ops == 0b01 else self._patch_one_delete
            )
            for position in range(start, end):
                patch(index, cols, log[position][1])
            return
        # Mixed suffix: coalesce to the net effect first — churn (insert
        # then delete, or delete then re-insert) cancels before any bucket
        # is touched.  Rebuild wholesale when the net change outweighs the
        # table.
        net_add, net_del = self._net(start, end)
        if len(net_add) + len(net_del) > len(self._rows):
            self._rebuild(cols)
            return
        self._patch_one_insert(index, cols, net_add)
        self._patch_one_delete(index, cols, net_del)

    def _maybe_truncate(self) -> None:
        """Opportunistic truncation: drop the log as soon as every index
        has consumed it, so a long deferral epoch with round-by-round
        probes does not retain every mutated row until the barrier."""
        if self._log and min(self._cursor.values()) >= len(self._log):
            self._log.clear()
            self._log_rows = 0
            for cols in self._cursor:
                self._cursor[cols] = 0

    def _net(self, start: int, end: int) -> tuple[list[Row], list[Row]]:
        """Coalesce log runs ``[start, end)`` to their net row effect.

        Runs record *effective* mutations (rows genuinely added/removed
        against the always-current row set), so per row the first op tells
        the epoch-start state and the last op the epoch-end state: only
        first==last=='+' is a net insert, only first==last=='-' a net
        delete; anything else cancelled out within the epoch.
        """
        first: dict[Row, int] = {}
        last: dict[Row, int] = {}
        for position in range(start, end):
            op, rows = self._log[position]
            for row in rows:
                if row not in first:
                    first[row] = op
                last[row] = op
        net_add = [
            row
            for row, op in last.items()
            if op == _LOG_INSERT and first[row] == _LOG_INSERT
        ]
        net_del = [
            row
            for row, op in last.items()
            if op == _LOG_DELETE and first[row] == _LOG_DELETE
        ]
        return net_add, net_del

    def _rebuild(self, cols: tuple[int, ...]) -> None:
        self._by_cols[cols] = self._build(cols)
        self.rebuilds += 1

    def _truncate_log(self) -> None:
        """Drop the log once every index is past it."""
        if not self._log:
            return
        if self._by_cols:
            floor = min(self._cursor.values())
            if floor < len(self._log):
                return
        self._log.clear()
        self._log_rows = 0
        for cols in self._cursor:
            self._cursor[cols] = 0
