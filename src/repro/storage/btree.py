"""An in-memory B+-tree, standing in for the Oracle Berkeley DB substrate.

The paper's Tukwila backend (Section 5.2) "added operators to support local
B-Tree indexing and retrieval capabilities via Oracle Berkeley DB 4.4".  We
reproduce that substrate with a classic order-``t`` B+-tree supporting point
lookup, insertion, deletion (with rebalancing), and ordered range scans.

The tree maps keys to values; keys must be mutually comparable.  The storage
layer uses it for ordered secondary indexes and the key-value store in
:mod:`repro.storage.kvstore` builds on it directly.
"""

from __future__ import annotations

from typing import Iterator


class BTreeError(Exception):
    """Raised for invalid B+-tree operations."""


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf")

    def __init__(self, leaf: bool) -> None:
        self.keys: list[object] = []
        # Internal nodes use `children`; leaves use `values` and `next_leaf`.
        self.children: list[_Node] | None = None if leaf else []
        self.values: list[object] | None = [] if leaf else None
        self.next_leaf: _Node | None = None

    @property
    def is_leaf(self) -> bool:
        return self.values is not None


def _bisect_right(keys: list[object], key: object) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:  # type: ignore[operator]
            hi = mid
        else:
            lo = mid + 1
    return lo


def _bisect_left(keys: list[object], key: object) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:  # type: ignore[operator]
            lo = mid + 1
        else:
            hi = mid
    return lo


class BPlusTree:
    """Order-``branching`` B+-tree mapping keys to values.

    ``branching`` is the maximum number of children of an internal node; each
    node holds at most ``branching - 1`` keys and at least
    ``ceil(branching / 2) - 1`` (except the root).
    """

    def __init__(self, branching: int = 32) -> None:
        if branching < 3:
            raise BTreeError("branching factor must be at least 3")
        self._branching = branching
        self._max_keys = branching - 1
        self._min_keys = (branching + 1) // 2 - 1
        self._root: _Node = _Node(leaf=True)
        self._size = 0

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: object) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def get(self, key: object, default: object = None) -> object:
        node = self._root
        while not node.is_leaf:
            assert node.children is not None
            node = node.children[_bisect_right(node.keys, key)]
        idx = _bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            assert node.values is not None
            return node.values[idx]
        return default

    def items(self) -> Iterator[tuple[object, object]]:
        """All (key, value) pairs in ascending key order."""
        node = self._root
        while not node.is_leaf:
            assert node.children is not None
            node = node.children[0]
        while node is not None:
            assert node.values is not None
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def keys(self) -> Iterator[object]:
        for key, _ in self.items():
            yield key

    def range(
        self, low: object = None, high: object = None
    ) -> Iterator[tuple[object, object]]:
        """(key, value) pairs with ``low <= key <= high`` in order.

        ``None`` bounds are open.
        """
        node = self._root
        if low is None:
            while not node.is_leaf:
                assert node.children is not None
                node = node.children[0]
            idx = 0
        else:
            while not node.is_leaf:
                assert node.children is not None
                node = node.children[_bisect_right(node.keys, low)]
            idx = _bisect_left(node.keys, low)
        while node is not None:
            assert node.values is not None
            while idx < len(node.keys):
                key = node.keys[idx]
                if high is not None and high < key:  # type: ignore[operator]
                    return
                yield key, node.values[idx]
                idx += 1
            node = node.next_leaf
            idx = 0

    def min_key(self) -> object:
        if not self._size:
            raise BTreeError("min_key() on empty tree")
        node = self._root
        while not node.is_leaf:
            assert node.children is not None
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> object:
        if not self._size:
            raise BTreeError("max_key() on empty tree")
        node = self._root
        while not node.is_leaf:
            assert node.children is not None
            node = node.children[-1]
        return node.keys[-1]

    # -- insertion ---------------------------------------------------------

    def insert(self, key: object, value: object) -> None:
        """Insert or overwrite ``key``."""
        root = self._root
        if len(root.keys) > self._max_keys:
            raise AssertionError("root overfull before insert")
        inserted = self._insert(root, key, value)
        if inserted:
            self._size += 1
        if len(root.keys) > self._max_keys:
            # Split the root, growing the tree by one level.
            new_root = _Node(leaf=False)
            assert new_root.children is not None
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root

    def _insert(self, node: _Node, key: object, value: object) -> bool:
        if node.is_leaf:
            assert node.values is not None
            idx = _bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
                return False
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            return True
        assert node.children is not None
        idx = _bisect_right(node.keys, key)
        inserted = self._insert(node.children[idx], key, value)
        if len(node.children[idx].keys) > self._max_keys:
            self._split_child(node, idx)
        return inserted

    def _split_child(self, parent: _Node, idx: int) -> None:
        assert parent.children is not None
        child = parent.children[idx]
        mid = len(child.keys) // 2
        if child.is_leaf:
            assert child.values is not None
            right = _Node(leaf=True)
            assert right.values is not None
            right.keys = child.keys[mid:]
            right.values = child.values[mid:]
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
            right.next_leaf = child.next_leaf
            child.next_leaf = right
            parent.keys.insert(idx, right.keys[0])
            parent.children.insert(idx + 1, right)
        else:
            assert child.children is not None
            right = _Node(leaf=False)
            assert right.children is not None
            promote = child.keys[mid]
            right.keys = child.keys[mid + 1 :]
            right.children = child.children[mid + 1 :]
            child.keys = child.keys[:mid]
            child.children = child.children[: mid + 1]
            parent.keys.insert(idx, promote)
            parent.children.insert(idx + 1, right)

    # -- deletion ----------------------------------------------------------

    def delete(self, key: object) -> bool:
        """Delete ``key``; return True if it was present."""
        removed = self._delete(self._root, key)
        if removed:
            self._size -= 1
        root = self._root
        if not root.is_leaf and root.children is not None:
            if len(root.children) == 1:
                self._root = root.children[0]
        return removed

    def _delete(self, node: _Node, key: object) -> bool:
        if node.is_leaf:
            assert node.values is not None
            idx = _bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.keys.pop(idx)
                node.values.pop(idx)
                return True
            return False
        assert node.children is not None
        idx = _bisect_right(node.keys, key)
        removed = self._delete(node.children[idx], key)
        if removed and len(node.children[idx].keys) < self._min_keys:
            self._rebalance(node, idx)
        return removed

    def _rebalance(self, parent: _Node, idx: int) -> None:
        assert parent.children is not None
        child = parent.children[idx]
        left = parent.children[idx - 1] if idx > 0 else None
        right = (
            parent.children[idx + 1]
            if idx + 1 < len(parent.children)
            else None
        )
        if left is not None and len(left.keys) > self._min_keys:
            self._borrow_from_left(parent, idx, left, child)
        elif right is not None and len(right.keys) > self._min_keys:
            self._borrow_from_right(parent, idx, child, right)
        elif left is not None:
            self._merge(parent, idx - 1, left, child)
        else:
            assert right is not None
            self._merge(parent, idx, child, right)

    def _borrow_from_left(
        self, parent: _Node, idx: int, left: _Node, child: _Node
    ) -> None:
        if child.is_leaf:
            assert left.values is not None and child.values is not None
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            assert left.children is not None and child.children is not None
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(
        self, parent: _Node, idx: int, child: _Node, right: _Node
    ) -> None:
        if child.is_leaf:
            assert right.values is not None and child.values is not None
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            assert right.children is not None and child.children is not None
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(
        self, parent: _Node, left_idx: int, left: _Node, right: _Node
    ) -> None:
        assert parent.children is not None
        if left.is_leaf:
            assert left.values is not None and right.values is not None
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            assert left.children is not None and right.children is not None
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_idx)
        parent.children.pop(left_idx + 1)

    # -- invariants (used by tests) -----------------------------------------

    def check_invariants(self) -> None:
        """Verify structural invariants; raises AssertionError on violation.

        Uses explicit raises (not ``assert`` statements) so the checks stay
        in force under ``python -O`` — this method exists to *detect*
        corruption, so it must never be compiled away.
        """
        leaves_depth: set[int] = set()

        def require(condition: bool, message: str) -> None:
            if not condition:
                raise AssertionError(message)

        def walk(node: _Node, depth: int, lo: object, hi: object) -> None:
            require(node.keys == sorted(node.keys), "keys unsorted")  # type: ignore[type-var]
            for key in node.keys:
                if lo is not None:
                    require(not key < lo, "key below subtree bound")  # type: ignore[operator]
                if hi is not None:
                    require(key < hi, "key above subtree bound")  # type: ignore[operator]
            if node is not self._root:
                require(len(node.keys) >= self._min_keys, "underfull node")
            require(len(node.keys) <= self._max_keys, "overfull node")
            if node.is_leaf:
                require(node.values is not None, "leaf without values")
                require(
                    len(node.values) == len(node.keys),  # type: ignore[arg-type]
                    "leaf keys/values mismatch",
                )
                leaves_depth.add(depth)
            else:
                require(node.children is not None, "inner node without children")
                require(
                    len(node.children) == len(node.keys) + 1,  # type: ignore[arg-type]
                    "inner node children/keys mismatch",
                )
                bounds = [lo, *node.keys, hi]
                for i, child in enumerate(node.children):  # type: ignore[union-attr]
                    walk(child, depth + 1, bounds[i], bounds[i + 1])

        walk(self._root, 0, None, None)
        require(len(leaves_depth) <= 1, "leaves at differing depths")
        require(
            sum(1 for _ in self.items()) == self._size,
            "size counter diverged from contents",
        )


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
