"""A sqlite3-backed storage backend: one table per relation bucket.

This is the durable half of the storage-backend protocol
(:mod:`repro.storage.backend`) — the stand-in for the paper's Berkeley DB
auxiliary storage that actually survives process exit.  Following the
EDB/IDB-over-sqlite3 pattern of ``longlodw/pydatalog`` (SNIPPETS.md
snippet 2), every bucket becomes its own two-column table::

    CREATE TABLE "b<N>" (key TEXT PRIMARY KEY, value TEXT NOT NULL)

with a catalog table mapping bucket names (which may contain characters
sqlite identifiers cannot, e.g. ``rel::R__l``) to their table names.
Keys and values round-trip through the stable encoding of
:mod:`repro.storage.codec`, so labeled nulls — the part of a CDSS
instance a naive ``repr`` store would corrupt — come back as the same
:class:`~repro.datalog.ast.SkolemValue` objects that went in.

Cursor order is the text order of the canonical key encoding: different
from the in-memory B+-tree's tuple order, but deterministic, which is the
only ordering promise the backend protocol makes.

One connection serves the whole store.  ``check_same_thread=False`` plus
an internal lock make it safe to open on one thread and use on another
(the serving tier's writer thread), matching how the durable node uses
it; concurrent multi-thread writes are serialized by that lock.
"""

from __future__ import annotations

import sqlite3
import threading
from contextlib import contextmanager
from typing import Iterator

from .codec import dumps_value, key_text, loads_value
from .instance import StorageError

_CATALOG_SQL = (
    "CREATE TABLE IF NOT EXISTS __buckets__ ("
    "name TEXT PRIMARY KEY, tbl TEXT NOT NULL)"
)

#: A sentinel distinct from every decodable value.
_MISSING = object()


class SQLiteStore:
    """A :class:`~repro.storage.backend.StorageBackend` over sqlite3.

    ``path`` is a filesystem path (created on first use) or ``":memory:"``
    for an ephemeral store — handy in tests and for backend-parity
    property checks.  ``synchronous`` maps straight onto sqlite's PRAGMA:
    ``"full"`` fsyncs at every commit (the durable default), ``"normal"``
    and ``"off"`` trade safety for speed.
    """

    def __init__(self, path: str = ":memory:", synchronous: str = "full") -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None
        )
        if synchronous not in ("full", "normal", "off"):
            raise StorageError(
                f"unknown synchronous mode {synchronous!r}; expected "
                "'full', 'normal', or 'off'"
            )
        self._conn.execute(f"PRAGMA synchronous={synchronous.upper()}")
        self._conn.execute(_CATALOG_SQL)
        self._tables: dict[str, str] = {
            name: tbl
            for name, tbl in self._conn.execute(
                "SELECT name, tbl FROM __buckets__"
            )
        }
        self._counter = len(self._tables)
        self._depth = 0
        self._closed = False

    # -- bucket management -------------------------------------------------

    def _table(self, bucket: str, create: bool) -> str | None:
        tbl = self._tables.get(bucket)
        if tbl is not None or not create:
            return tbl
        self._counter += 1
        tbl = f"b{self._counter}"
        while tbl in self._tables.values():  # pragma: no cover - defensive
            self._counter += 1
            tbl = f"b{self._counter}"
        self._conn.execute(
            f'CREATE TABLE "{tbl}" (key TEXT PRIMARY KEY, value TEXT NOT NULL)'
        )
        self._conn.execute(
            "INSERT INTO __buckets__ (name, tbl) VALUES (?, ?)", (bucket, tbl)
        )
        self._tables[bucket] = tbl
        return tbl

    def bucket_names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tables))

    def drop(self, bucket: str) -> bool:
        with self._lock:
            tbl = self._tables.pop(bucket, None)
            if tbl is None:
                return False
            self._conn.execute(f'DROP TABLE "{tbl}"')
            self._conn.execute(
                "DELETE FROM __buckets__ WHERE name = ?", (bucket,)
            )
            return True

    # -- key/value operations ----------------------------------------------

    def put(self, bucket: str, key: object, value: object) -> None:
        with self._lock:
            tbl = self._table(bucket, create=True)
            self._conn.execute(
                f'INSERT OR REPLACE INTO "{tbl}" (key, value) VALUES (?, ?)',
                (key_text(key), dumps_value(value)),
            )

    def get(self, bucket: str, key: object, default: object = None) -> object:
        with self._lock:
            tbl = self._tables.get(bucket)
            if tbl is None:
                return default
            row = self._conn.execute(
                f'SELECT value FROM "{tbl}" WHERE key = ?', (key_text(key),)
            ).fetchone()
        return default if row is None else loads_value(row[0])

    def delete(self, bucket: str, key: object) -> bool:
        with self._lock:
            tbl = self._tables.get(bucket)
            if tbl is None:
                return False
            changed = self._conn.execute(
                f'DELETE FROM "{tbl}" WHERE key = ?', (key_text(key),)
            ).rowcount
            return changed > 0

    def cursor(
        self, bucket: str, low: object = None, high: object = None
    ) -> Iterator[tuple[object, object]]:
        with self._lock:
            tbl = self._tables.get(bucket)
            if tbl is None:
                return iter(())
            sql = f'SELECT key, value FROM "{tbl}"'
            clauses, args = [], []
            if low is not None:
                clauses.append("key >= ?")
                args.append(key_text(low))
            if high is not None:
                clauses.append("key <= ?")
                args.append(key_text(high))
            if clauses:
                sql += " WHERE " + " AND ".join(clauses)
            sql += " ORDER BY key"
            # Materialize under the lock: the caller may interleave writes
            # with iteration, and sqlite cursors do not like that.
            rows = self._conn.execute(sql, args).fetchall()
        return iter(
            [(loads_value(k), loads_value(v)) for k, v in rows]
        )

    def values(self, bucket: str) -> Iterator[object]:
        """Values in cursor (key-text) order, skipping key decode.

        Recovery restores whole buckets and never looks at the keys;
        decoding them anyway roughly doubled restore time.
        """
        with self._lock:
            tbl = self._tables.get(bucket)
            if tbl is None:
                return iter(())
            rows = self._conn.execute(
                f'SELECT value FROM "{tbl}" ORDER BY key'
            ).fetchall()
        return iter([loads_value(v) for (v,) in rows])

    def size(self, bucket: str) -> int:
        with self._lock:
            tbl = self._tables.get(bucket)
            if tbl is None:
                return 0
            return self._conn.execute(
                f'SELECT COUNT(*) FROM "{tbl}"'
            ).fetchone()[0]

    # -- durability --------------------------------------------------------

    @contextmanager
    def transaction(self):
        """All-or-nothing visibility for the enclosed writes.

        Nested scopes join the outermost transaction (sqlite has no real
        nesting and the checkpoint path only ever needs one level).
        """
        with self._lock:
            outer = self._depth == 0
            if outer:
                self._conn.execute("BEGIN IMMEDIATE")
            self._depth += 1
            try:
                yield self
            except BaseException:
                self._depth -= 1
                if outer:
                    self._conn.execute("ROLLBACK")
                    # The catalog cache may now disagree with disk.
                    self._reload_catalog()
                raise
            else:
                self._depth -= 1
                if outer:
                    self._conn.execute("COMMIT")

    def _reload_catalog(self) -> None:
        self._tables = {
            name: tbl
            for name, tbl in self._conn.execute(
                "SELECT name, tbl FROM __buckets__"
            )
        }

    def flush(self) -> None:
        """Force pending state to disk (sqlite commits eagerly; no-op)."""

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

    def __repr__(self) -> str:
        return f"<SQLiteStore {self.path}: {len(self._tables)} buckets>"
