"""Checkpointing databases into a storage backend.

ORCHESTRA persists peer instances and provenance tables in auxiliary storage
(Berkeley DB for the Tukwila backend — Section 5: "Auxiliary storage holds
and indexes provenance tables for peer instances"; "Between update exchange
operations, it maintains copies of all relations, enabling future operations
to be incremental").  This module provides that persistence for the
reproduction: a :class:`~repro.storage.database.Database` can be
checkpointed into any :class:`~repro.storage.backend.StorageBackend` — the
in-memory :class:`~repro.storage.kvstore.KeyValueStore` or the on-disk
:class:`~repro.storage.sqlite.SQLiteStore` — and restored later, preserving
labeled nulls.

The representation: one bucket per relation holding (row-key -> row), a
catalog bucket recording relation arities, an index bucket recording each
relation's materialized index definitions, and a meta bucket recording
database-level settings (the index maintenance policy).  ``restore``
mirrors the checkpoint *exactly*: relations present in the target database
but absent from the catalog are dropped (the restore-side twin of
``checkpoint``'s stale-bucket wipe), and recorded indexes are rebuilt so a
recovered instance probes the same access paths the checkpointed one did.
"""

from __future__ import annotations

from .backend import StorageBackend
from .database import Database
from .indexes import INDEX_POLICIES
from .instance import StorageError
from .kvstore import KeyValueStore, _row_key

CATALOG_BUCKET = "__catalog__"
INDEX_BUCKET = "__indexes__"
META_BUCKET = "__dbmeta__"
DATA_PREFIX = "rel::"

#: Buckets owned by the checkpoint representation (wiped on checkpoint).
_OWN_BUCKETS = (CATALOG_BUCKET, INDEX_BUCKET, META_BUCKET)


def checkpoint(
    db: Database, store: StorageBackend | None = None
) -> StorageBackend:
    """Write a full copy of ``db`` into a storage backend.

    An existing store is wiped of stale relation buckets first, so the
    result always mirrors ``db`` exactly.  The write runs inside one
    backend transaction: a crash mid-checkpoint leaves the previous
    checkpoint intact, never a torn mix.
    """
    if store is None:
        store = KeyValueStore()
    with store.transaction():
        for bucket in store.bucket_names():
            if bucket.startswith(DATA_PREFIX) or bucket in _OWN_BUCKETS:
                store.drop(bucket)
        store.put(META_BUCKET, "index_policy", db.index_policy)
        for instance in db:
            store.put(CATALOG_BUCKET, instance.name, instance.arity)
            indexed = instance.indexed_columns()
            if indexed:
                store.put(
                    INDEX_BUCKET,
                    instance.name,
                    [list(cols) for cols in sorted(indexed)],
                )
            bucket = DATA_PREFIX + instance.name
            for row in instance:
                store.put(bucket, _row_key(row), row)
    return store


def restore(
    store: StorageBackend, into: Database | None = None
) -> Database:
    """Rebuild a database from a checkpoint.

    When ``into`` is given, relations are created/verified there (useful for
    loading a checkpoint into a freshly configured exchange system) and
    relations ``into`` holds that the checkpoint catalog does not are
    dropped, so the result mirrors the checkpoint exactly; otherwise a new
    database is returned, built with the checkpointed index policy.
    Recorded index definitions are rebuilt on every restored relation.
    """
    names = [name for name, _ in store.cursor(CATALOG_BUCKET)]
    if not names:
        raise StorageError("store contains no checkpoint catalog")
    if into is not None:
        db = into
    else:
        policy = store.get(META_BUCKET, "index_policy")
        db = Database(
            index_policy=(
                policy
                if isinstance(policy, str) and policy in INDEX_POLICIES
                else "eager"
            )
        )
    for name in names:
        arity = store.get(CATALOG_BUCKET, name)
        if not isinstance(name, str) or not isinstance(arity, int):
            raise StorageError(
                f"corrupt checkpoint catalog entry: {name!r} -> {arity!r}"
            )
        instance = db.ensure(name, arity)
        instance.clear()
        instance.insert_many(store.values(DATA_PREFIX + name))  # type: ignore[arg-type]
        for columns in store.get(INDEX_BUCKET, name, ()) or ():
            instance.ensure_index(tuple(int(c) for c in columns))
    catalog = set(names)
    for name in db.relation_names():
        if name not in catalog:
            db.drop(name)
    return db


def checkpoint_equal(db: Database, store: StorageBackend) -> bool:
    """True iff ``store`` holds exactly the contents of ``db``."""
    names = {name for name, _ in store.cursor(CATALOG_BUCKET)}
    if names != set(db.relation_names()):
        return False
    for instance in db:
        bucket = DATA_PREFIX + instance.name
        if store.size(bucket) != len(instance):
            return False
        for _, row in store.cursor(bucket):
            if row not in instance:  # type: ignore[operator]
                return False
    return True
