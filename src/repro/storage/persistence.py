"""Checkpointing databases into the ordered key-value store.

ORCHESTRA persists peer instances and provenance tables in auxiliary storage
(Berkeley DB for the Tukwila backend — Section 5: "Auxiliary storage holds
and indexes provenance tables for peer instances"; "Between update exchange
operations, it maintains copies of all relations, enabling future operations
to be incremental").  This module provides that persistence for the
reproduction: a :class:`~repro.storage.database.Database` can be
checkpointed into a :class:`~repro.storage.kvstore.KeyValueStore` and
restored later, preserving labeled nulls.

The representation: one bucket per relation holding (row-key -> row), plus a
catalog bucket recording relation arities.
"""

from __future__ import annotations

from .database import Database
from .instance import Row, StorageError
from .kvstore import KeyValueStore, _row_key

CATALOG_BUCKET = "__catalog__"
DATA_PREFIX = "rel::"


def checkpoint(
    db: Database, store: KeyValueStore | None = None
) -> KeyValueStore:
    """Write a full copy of ``db`` into a key-value store.

    An existing store is wiped of stale relation buckets first, so the
    result always mirrors ``db`` exactly.
    """
    if store is None:
        store = KeyValueStore()
    for bucket in store.bucket_names():
        if bucket.startswith(DATA_PREFIX) or bucket == CATALOG_BUCKET:
            store.drop(bucket)
    for instance in db:
        store.put(CATALOG_BUCKET, instance.name, instance.arity)
        bucket = DATA_PREFIX + instance.name
        for row in instance:
            store.put(bucket, _row_key(row), row)
    return store


def restore(store: KeyValueStore, into: Database | None = None) -> Database:
    """Rebuild a database from a checkpoint.

    When ``into`` is given, relations are created/verified there (useful for
    loading a checkpoint into a freshly configured exchange system);
    otherwise a new database is returned.
    """
    db = into if into is not None else Database()
    names = [name for name, _ in store.cursor(CATALOG_BUCKET)]
    if not names:
        raise StorageError("store contains no checkpoint catalog")
    for name in names:
        arity = store.get(CATALOG_BUCKET, name)
        if not isinstance(name, str) or not isinstance(arity, int):
            raise StorageError(
                f"corrupt checkpoint catalog entry: {name!r} -> {arity!r}"
            )
        instance = db.ensure(name, arity)
        instance.clear()
        for _, row in store.cursor(DATA_PREFIX + name):
            instance.insert(row)  # type: ignore[arg-type]
    return db


def checkpoint_equal(db: Database, store: KeyValueStore) -> bool:
    """True iff ``store`` holds exactly the contents of ``db``."""
    names = {name for name, _ in store.cursor(CATALOG_BUCKET)}
    if names != set(db.relation_names()):
        return False
    for instance in db:
        bucket = DATA_PREFIX + instance.name
        if store.size(bucket) != len(instance):
            return False
        for _, row in store.cursor(bucket):
            if row not in instance:  # type: ignore[operator]
                return False
    return True
