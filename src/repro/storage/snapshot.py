"""Version-pinned database snapshots: the serving tier's read isolation.

A :class:`DatabaseSnapshot` is an immutable copy of selected relations of
a live :class:`~repro.storage.database.Database`, pinned at the database's
O(1) ``version`` counter (the PR 4 dirty-bit).  It is the storage half of
the snapshot-isolation rule the serving tier (:mod:`repro.serve`) builds
on:

* **capture happens at a quiescent point** — the serving tier copies only
  between exchanges (copy-on-publish), so a snapshot always holds a
  *consistent fixpoint*, never a torn mid-exchange state;
* **reads never touch the live catalog** — prepared queries and programs
  execute against the snapshot's private instances
  (:meth:`PreparedQuery.execute_at <repro.api.query.PreparedQuery.
  execute_at>`), so a concurrently running exchange can mutate the live
  database freely without readers observing intermediate rows or racing
  on live index maintenance;
* **indexes stay warm** — instances are copied via
  :meth:`Instance.copy <repro.storage.instance.Instance.copy>`
  (bucket-wise, synchronized), so the first probe against a snapshot hits
  the same indexes the live table had.  Probes of *new* column subsets
  still build lazily; :attr:`lock` serializes executions so concurrent
  reader threads cannot race on that lazy build.

Snapshots also carry a small result cache: the serving tier executes the
same prepared statements against the same snapshot over and over, and a
snapshot's contents by construction never change, so cached answers need
no invalidation token at all.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Iterable

from .database import Database
from .instance import Instance

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

_RESULT_CACHE_LIMIT = 4096
"""Cached answer entries per snapshot before wholesale clearing."""


class DatabaseSnapshot:
    """An immutable, version-pinned copy of selected relations.

    Create one with :meth:`Database.pin
    <repro.storage.database.Database.pin>`.  The snapshot exposes its
    relations through :attr:`db` (a private :class:`Database` that shares
    nothing mutable with the source) and records the source's
    :attr:`~repro.storage.database.Database.version` at capture time.
    """

    __slots__ = ("db", "version", "names", "lock", "_results")

    def __init__(
        self, source: Database, names: Iterable[str] | None = None
    ) -> None:
        snapshot = Database(index_policy=source.index_policy)
        selected = (
            source.relation_names() if names is None else tuple(names)
        )
        for name in selected:
            instance = source.get(name)
            if instance is None:
                continue
            copied = instance.copy()
            # Registered directly: attach() would journal the rows into
            # any live change feeds, and the snapshot must stay invisible
            # to the source's replication machinery.
            snapshot._relations[name] = copied
        self.db = snapshot
        self.version = source.version
        self.names = tuple(snapshot.relation_names())
        #: Serializes executions against this snapshot.  Copies are never
        #: row-mutated, but a probe of a never-indexed column subset still
        #: builds its index lazily; the lock makes that build (and the
        #: result-cache fill) safe under multiple reader threads.
        self.lock = threading.RLock()
        self._results: dict[tuple, object] = {}

    def instance(self, name: str) -> Instance | None:
        """The pinned copy of relation ``name`` (None if not captured)."""
        return self.db.get(name)

    def total_rows(self) -> int:
        return self.db.total_rows()

    def cached(self, key: tuple, compute: Callable[[], object]) -> object:
        """Serve ``key`` from the snapshot's result cache, else compute.

        The computation runs under :attr:`lock`; because the snapshot's
        contents never change, entries never need invalidation.  ``key``
        conventionally starts with the prepared statement object (hashed
        by identity) followed by the binding values and answer mode.
        """
        with self.lock:
            try:
                hit = self._results.get(key)
            except TypeError:  # unhashable binding values: compute uncached
                return compute()
            if hit is not None:
                return hit
            value = compute()
            if len(self._results) >= _RESULT_CACHE_LIMIT:
                self._results.clear()
            self._results[key] = value
            return value

    def __repr__(self) -> str:
        return (
            f"<DatabaseSnapshot v{self.version}: {len(self.names)} "
            f"relations, {self.total_rows()} rows>"
        )


def pin_database(
    source: Database, names: Iterable[str] | None = None
) -> DatabaseSnapshot:
    """Capture a :class:`DatabaseSnapshot` of ``source`` (see
    :meth:`Database.pin <repro.storage.database.Database.pin>`)."""
    return DatabaseSnapshot(source, names)
