"""The database catalog: a named collection of relation instances.

A :class:`Database` is the mutable state the datalog engine evaluates
against; the update-exchange engine keeps all internal relations (``R_l``,
``R_r``, ``R_i``, ``R_t``, ``R_o`` and provenance tables) in one database,
mirroring the paper's "auxiliary storage alongside the original DBMS"
(Section 4).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping

from .indexes import INDEX_POLICIES, POLICY_EAGER
from .instance import Instance, Row, StorageError
from .stats import StatisticsCache, TableStats


class UnknownRelationError(StorageError):
    """A relation name is not present in the catalog."""


class Database:
    """A catalog mapping relation names to :class:`Instance` objects.

    ``index_policy`` (``"eager"`` / ``"deferred"``, see
    :mod:`repro.storage.indexes`) is applied to every instance the catalog
    creates; :meth:`defer_maintenance` opens one deferral scope across all
    of them (relations created inside the scope are enrolled too).
    """

    def __init__(self, index_policy: str = POLICY_EAGER) -> None:
        if index_policy not in INDEX_POLICIES:
            raise StorageError(
                f"unknown index policy {index_policy!r}; expected one of "
                f"{INDEX_POLICIES}"
            )
        self.index_policy = index_policy
        self._relations: dict[str, Instance] = {}
        self._stats = StatisticsCache()
        self._version = 0
        # Row-level change feeds for replica synchronization (see
        # repro.storage.replication); almost always empty.
        self._feeds: tuple = ()
        # Origin tag stamped onto journal entries recorded while a
        # tag_changes() scope is open (the parallel executor tags merged
        # derivations with their producer-worker bitmask so the pool can
        # ship complements instead of the full delta).
        self._change_origin: object | None = None
        # Instances enrolled in each currently open deferral scope,
        # innermost last — create/attach append to every open scope so a
        # relation born mid-scope still flushes at the scope's barrier.
        self._defer_scopes: list[list[Instance]] = []

    @property
    def version(self) -> int:
        """A monotone counter that changes whenever any relation's contents
        or the catalog itself change — the invalidation token for plan and
        statistics caches.  O(1): every registered instance pushes a
        dirty-bit up through :meth:`Instance.add_watcher` instead of the
        database summing per-instance counters on every read."""
        return self._version

    def _mark_dirty(self) -> None:
        self._version += 1

    # -- catalog management -------------------------------------------------

    def create(self, name: str, arity: int, rows: Iterable[Row] = ()) -> Instance:
        """Create relation ``name``; error if it already exists."""
        if name in self._relations:
            raise StorageError(f"relation {name!r} already exists")
        instance = Instance(name, arity, index_policy=self.index_policy)
        self._relations[name] = instance
        instance.add_watcher(self._mark_dirty)
        self._enroll(instance)
        for feed in self._feeds:
            feed._record(name, "create", arity)
            instance.add_feed(feed)
        self._version += 1
        if rows:
            instance.insert_many(rows)
        return instance

    def ensure(self, name: str, arity: int) -> Instance:
        """Create relation ``name`` if missing; verify arity if present."""
        instance = self._relations.get(name)
        if instance is None:
            return self.create(name, arity)
        if instance.arity != arity:
            raise StorageError(
                f"relation {name!r} exists with arity {instance.arity}, "
                f"requested {arity}"
            )
        return instance

    def attach(self, instance: Instance) -> Instance:
        """Register an *existing* instance under its own name.

        The instance is shared, not copied — used to expose another
        database's relations (e.g. the ``R__o`` tables) to a scratch
        database for side-effect-free query evaluation.
        """
        if instance.name in self._relations:
            raise StorageError(f"relation {instance.name!r} already exists")
        self._relations[instance.name] = instance
        instance.add_watcher(self._mark_dirty)
        self._enroll(instance)
        for feed in self._feeds:
            feed._record(instance.name, "create", instance.arity)
            if len(instance):
                feed._record(instance.name, "+", tuple(instance))
            instance.add_feed(feed)
        self._version += 1
        return instance

    def _enroll(self, instance: Instance) -> None:
        """Bring a newly registered instance into every open deferral scope."""
        for scope in self._defer_scopes:
            instance._indexes.begin_defer()
            scope.append(instance)

    def drop(self, name: str) -> bool:
        self._stats.invalidate(name)
        dropped = self._relations.pop(name, None)
        if dropped is None:
            return False
        dropped.remove_watcher(self._mark_dirty)
        for feed in self._feeds:
            dropped.remove_feed(feed)
            feed._record(name, "drop", ())
        self._version += 1
        return True

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> Instance:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(f"unknown relation {name!r}") from None

    def get(self, name: str) -> Instance | None:
        return self._relations.get(name)

    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def __iter__(self) -> Iterator[Instance]:
        return iter(self._relations.values())

    # -- deferred index maintenance -----------------------------------------

    @contextmanager
    def defer_maintenance(self):
        """One deferral scope spanning every relation in the catalog.

        Under the deferred index policy, mutations inside the scope append
        to per-instance maintenance logs instead of patching indexes;
        probes synchronize the index they touch, and the outermost scope
        exit is a flush barrier.  Under the eager policy the scope is a
        no-op, so engine layers open scopes unconditionally.  Relations
        created (or attached) while the scope is open are enrolled in it.
        """
        scope = list(self._relations.values())
        for instance in scope:
            instance._indexes.begin_defer()
        self._defer_scopes.append(scope)
        try:
            yield self
        finally:
            # Scopes are context managers, so exits are strictly LIFO —
            # the scope being closed is always the innermost one.  (Not
            # list.remove: it matches by element equality and could pop a
            # different-but-equal scope list.)
            popped = self._defer_scopes.pop()
            if popped is not scope:  # pragma: no cover - defensive
                self._defer_scopes.append(popped)
                self._defer_scopes.remove(scope)
            for instance in scope:
                instance._indexes.end_defer()

    def flush_indexes(self) -> None:
        """Apply all pending index maintenance now (an explicit barrier)."""
        for instance in self._relations.values():
            instance.flush_indexes()

    def pending_index_ops(self) -> int:
        """Total unapplied maintenance-log entries across all relations."""
        return sum(
            instance.pending_index_ops()
            for instance in self._relations.values()
        )

    def index_stats(self) -> dict[str, object]:
        """Index-maintenance counters summed across every relation.

        Per-relation breakdowns stay on :meth:`Instance.index_stats`;
        this aggregate is what ``/stats``, ``/metrics``, and the
        exchange report's index-settle phase read.
        """
        totals: dict[str, object] = {
            "relations": len(self._relations),
            "indexes": 0,
            "pending_ops": 0,
            "applied_runs": 0,
            "rebuilds": 0,
            "retired": 0,
            "hot_settled": 0,
            "spills": 0,
            "settle_wall_seconds": 0.0,
            "settle_cpu_seconds": 0.0,
        }
        policy = None
        for instance in self._relations.values():
            stats = instance.index_stats()
            policy = stats.get("policy", policy)
            for key in totals:
                value = stats.get(key)
                if value is not None and key != "relations":
                    totals[key] += value
        totals["policy"] = policy if policy is not None else self.index_policy
        return totals

    # -- replication ---------------------------------------------------------

    def changefeed(self):
        """Attach a row-level change journal to every relation.

        Returns a :class:`~repro.storage.replication.ChangeFeed` whose
        :meth:`~repro.storage.replication.ChangeFeed.drain` yields the ops
        needed to bring a replica built from :meth:`export_snapshot` up to
        the current state — the delta-shipping half of the parallel
        subsystem's replication protocol.  Call ``close()`` on the feed
        when the replica dies.
        """
        from .replication import ChangeFeed

        return ChangeFeed(self)

    @contextmanager
    def tag_changes(self, origin: object):
        """Stamp every journal entry recorded inside the scope with
        ``origin``.

        Attached :class:`~repro.storage.replication.ChangeFeed` journals
        keep the tag per entry (see
        :meth:`~repro.storage.replication.ChangeFeed.drain_tagged`);
        plain :meth:`~repro.storage.replication.ChangeFeed.drain` strips
        it, so nothing downstream of the ordinary replay path changes.
        Scopes nest; the previous origin is restored on exit.
        """
        previous = self._change_origin
        self._change_origin = origin
        try:
            yield self
        finally:
            self._change_origin = previous

    def _attach_feed(self, feed) -> None:
        self._feeds += (feed,)
        for instance in self._relations.values():
            instance.add_feed(feed)

    def _detach_feed(self, feed) -> None:
        self._feeds = tuple(f for f in self._feeds if f is not feed)
        for instance in self._relations.values():
            instance.remove_feed(feed)

    def export_snapshot(self) -> dict[str, object]:
        """A picklable full-contents snapshot (see
        :func:`repro.storage.replication.export_snapshot`)."""
        from .replication import export_snapshot

        return export_snapshot(self)

    def pin(self, names: Iterable[str] | None = None):
        """Capture a version-pinned, immutable snapshot of ``names``.

        Returns a :class:`~repro.storage.snapshot.DatabaseSnapshot` whose
        instances are private copies with warm indexes; subsequent
        mutations of this database are invisible to it.  ``names``
        defaults to every relation — the serving tier pins only the
        ``R__o`` output tables its queries read.  Capture from a
        quiescent state (between exchanges) to pin a consistent fixpoint.
        """
        from .snapshot import DatabaseSnapshot

        return DatabaseSnapshot(self, names)

    # -- statistics ----------------------------------------------------------

    def stats_for(self, name: str) -> TableStats:
        return self._stats.stats_for(self[name])

    # -- convenience -----------------------------------------------------------

    def insert(self, name: str, row: Row) -> bool:
        return self[name].insert(row)

    def delete(self, name: str, row: Row) -> bool:
        return self[name].delete(row)

    def total_rows(self) -> int:
        return sum(len(inst) for inst in self._relations.values())

    def estimated_bytes(self) -> int:
        return sum(inst.estimated_bytes() for inst in self._relations.values())

    def snapshot(self) -> dict[str, frozenset[Row]]:
        """Frozen copy of the full database contents (for tests/rollback)."""
        return {name: inst.rows() for name, inst in self._relations.items()}

    def restore(self, snapshot: Mapping[str, frozenset[Row]]) -> None:
        """Restore contents saved by :meth:`snapshot`.

        Relations present in the database but absent from the snapshot are
        emptied; relations in the snapshot must already exist in the catalog.
        """
        for name, instance in self._relations.items():
            rows = snapshot.get(name)
            if rows is None:
                instance.clear()
            else:
                instance.replace(rows)

    def copy(self) -> "Database":
        """A deep copy; instances carry their index definitions and policy
        (see :meth:`Instance.copy`), so probes against the copy start warm."""
        clone = Database(index_policy=self.index_policy)
        for name, instance in self._relations.items():
            copied = instance.copy()
            clone._relations[name] = copied
            copied.add_watcher(clone._mark_dirty)
            clone._version += 1
        return clone

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}({len(inst)})"
            for name, inst in sorted(self._relations.items())
        )
        return f"<Database: {parts}>"
