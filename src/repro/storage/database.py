"""The database catalog: a named collection of relation instances.

A :class:`Database` is the mutable state the datalog engine evaluates
against; the update-exchange engine keeps all internal relations (``R_l``,
``R_r``, ``R_i``, ``R_t``, ``R_o`` and provenance tables) in one database,
mirroring the paper's "auxiliary storage alongside the original DBMS"
(Section 4).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .instance import Instance, Row, StorageError
from .stats import StatisticsCache, TableStats


class UnknownRelationError(StorageError):
    """A relation name is not present in the catalog."""


class Database:
    """A catalog mapping relation names to :class:`Instance` objects."""

    def __init__(self) -> None:
        self._relations: dict[str, Instance] = {}
        self._stats = StatisticsCache()
        self._version = 0

    @property
    def version(self) -> int:
        """A monotone counter that changes whenever any relation's contents
        or the catalog itself change — the invalidation token for plan and
        statistics caches.  O(1): every registered instance pushes a
        dirty-bit up through :meth:`Instance.add_watcher` instead of the
        database summing per-instance counters on every read."""
        return self._version

    def _mark_dirty(self) -> None:
        self._version += 1

    # -- catalog management -------------------------------------------------

    def create(self, name: str, arity: int, rows: Iterable[Row] = ()) -> Instance:
        """Create relation ``name``; error if it already exists."""
        if name in self._relations:
            raise StorageError(f"relation {name!r} already exists")
        instance = Instance(name, arity, rows)
        self._relations[name] = instance
        instance.add_watcher(self._mark_dirty)
        self._version += 1
        return instance

    def ensure(self, name: str, arity: int) -> Instance:
        """Create relation ``name`` if missing; verify arity if present."""
        instance = self._relations.get(name)
        if instance is None:
            return self.create(name, arity)
        if instance.arity != arity:
            raise StorageError(
                f"relation {name!r} exists with arity {instance.arity}, "
                f"requested {arity}"
            )
        return instance

    def attach(self, instance: Instance) -> Instance:
        """Register an *existing* instance under its own name.

        The instance is shared, not copied — used to expose another
        database's relations (e.g. the ``R__o`` tables) to a scratch
        database for side-effect-free query evaluation.
        """
        if instance.name in self._relations:
            raise StorageError(f"relation {instance.name!r} already exists")
        self._relations[instance.name] = instance
        instance.add_watcher(self._mark_dirty)
        self._version += 1
        return instance

    def drop(self, name: str) -> bool:
        self._stats.invalidate(name)
        dropped = self._relations.pop(name, None)
        if dropped is None:
            return False
        dropped.remove_watcher(self._mark_dirty)
        self._version += 1
        return True

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> Instance:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(f"unknown relation {name!r}") from None

    def get(self, name: str) -> Instance | None:
        return self._relations.get(name)

    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def __iter__(self) -> Iterator[Instance]:
        return iter(self._relations.values())

    # -- statistics ----------------------------------------------------------

    def stats_for(self, name: str) -> TableStats:
        return self._stats.stats_for(self[name])

    # -- convenience -----------------------------------------------------------

    def insert(self, name: str, row: Row) -> bool:
        return self[name].insert(row)

    def delete(self, name: str, row: Row) -> bool:
        return self[name].delete(row)

    def total_rows(self) -> int:
        return sum(len(inst) for inst in self._relations.values())

    def estimated_bytes(self) -> int:
        return sum(inst.estimated_bytes() for inst in self._relations.values())

    def snapshot(self) -> dict[str, frozenset[Row]]:
        """Frozen copy of the full database contents (for tests/rollback)."""
        return {name: inst.rows() for name, inst in self._relations.items()}

    def restore(self, snapshot: Mapping[str, frozenset[Row]]) -> None:
        """Restore contents saved by :meth:`snapshot`.

        Relations present in the database but absent from the snapshot are
        emptied; relations in the snapshot must already exist in the catalog.
        """
        for name, instance in self._relations.items():
            rows = snapshot.get(name)
            if rows is None:
                instance.clear()
            else:
                instance.replace(rows)

    def copy(self) -> "Database":
        clone = Database()
        for name, instance in self._relations.items():
            clone.create(name, instance.arity, instance)
        return clone

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}({len(inst)})"
            for name, inst in sorted(self._relations.items())
        )
        return f"<Database: {parts}>"
