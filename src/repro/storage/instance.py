"""Relation instances: set-semantics tuple stores with hash indexes.

This is the storage substrate that stands in for the RDBMS tables of the
paper's Section 5.  An :class:`Instance` stores the extension of one relation
as a set of fixed-arity tuples, and lazily builds hash indexes on the column
subsets that query plans probe.  Index maintenance is incremental: inserts
and deletes update every materialized index.

Set semantics matches the paper: "in a set-based relational model ... a tuple
is uniquely identified by its values" (Section 4.1.2), which is also what
makes tuples usable as their own provenance tokens.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

Row = tuple[object, ...]


class StorageError(Exception):
    """Base class for storage-layer errors."""


class ArityError(StorageError):
    """A row's arity does not match the relation's arity."""


class Instance:
    """The extension of a single relation, with lazy hash indexes.

    Parameters
    ----------
    name:
        Relation name (used in error messages and statistics).
    arity:
        Number of columns; every stored row must have exactly this length.
    rows:
        Optional initial contents.
    """

    __slots__ = ("name", "arity", "_rows", "_indexes", "_version")

    def __init__(
        self, name: str, arity: int, rows: Iterable[Row] = ()
    ) -> None:
        self.name = name
        self.arity = arity
        self._rows: set[Row] = set()
        self._indexes: dict[tuple[int, ...], dict[Row, set[Row]]] = {}
        self._version = 0
        for row in rows:
            self.insert(row)

    # -- basic collection protocol ---------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self._rows

    def __repr__(self) -> str:
        return f"<Instance {self.name}/{self.arity}: {len(self)} rows>"

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation (used by stats caches)."""
        return self._version

    def rows(self) -> frozenset[Row]:
        """A frozen snapshot of the current contents."""
        return frozenset(self._rows)

    # -- mutation ---------------------------------------------------------

    def _check_arity(self, row: Row) -> None:
        if len(row) != self.arity:
            raise ArityError(
                f"relation {self.name} has arity {self.arity}, "
                f"got row of length {len(row)}: {row!r}"
            )

    def insert(self, row: Sequence[object]) -> bool:
        """Insert ``row``; return True if it was new."""
        row = tuple(row)
        self._check_arity(row)
        if row in self._rows:
            return False
        self._rows.add(row)
        self._version += 1
        for cols, index in self._indexes.items():
            key = tuple(row[c] for c in cols)
            index.setdefault(key, set()).add(row)
        return True

    def insert_many(self, rows: Iterable[Sequence[object]]) -> int:
        """Insert many rows; return the number actually added."""
        added = 0
        for row in rows:
            if self.insert(row):
                added += 1
        return added

    def delete(self, row: Sequence[object]) -> bool:
        """Delete ``row``; return True if it was present."""
        row = tuple(row)
        if row not in self._rows:
            return False
        self._rows.discard(row)
        self._version += 1
        for cols, index in self._indexes.items():
            key = tuple(row[c] for c in cols)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]
        return True

    def delete_many(self, rows: Iterable[Sequence[object]]) -> int:
        removed = 0
        for row in rows:
            if self.delete(row):
                removed += 1
        return removed

    def clear(self) -> None:
        self._rows.clear()
        self._indexes.clear()
        self._version += 1

    def replace(self, rows: Iterable[Sequence[object]]) -> None:
        """Replace the whole extension (drops indexes)."""
        self.clear()
        for row in rows:
            self.insert(row)

    # -- indexes ----------------------------------------------------------

    def ensure_index(self, columns: Sequence[int]) -> None:
        """Materialize a hash index on ``columns`` if absent."""
        cols = tuple(columns)
        for c in cols:
            if not 0 <= c < self.arity:
                raise StorageError(
                    f"index column {c} out of range for {self.name}/{self.arity}"
                )
        if cols in self._indexes:
            return
        index: dict[Row, set[Row]] = {}
        for row in self._rows:
            key = tuple(row[c] for c in cols)
            index.setdefault(key, set()).add(row)
        self._indexes[cols] = index

    def lookup(
        self, columns: Sequence[int], values: Sequence[object]
    ) -> frozenset[Row]:
        """All rows whose ``columns`` equal ``values`` (index-accelerated)."""
        cols = tuple(columns)
        if not cols:
            return self.rows()
        self.ensure_index(cols)
        bucket = self._indexes[cols].get(tuple(values))
        return frozenset(bucket) if bucket else frozenset()

    def index_key_count(self, columns: Sequence[int]) -> int:
        """Number of distinct keys in the index on ``columns``."""
        cols = tuple(columns)
        self.ensure_index(cols)
        return len(self._indexes[cols])

    def indexed_columns(self) -> tuple[tuple[int, ...], ...]:
        return tuple(self._indexes.keys())

    # -- bulk helpers -----------------------------------------------------

    def select(self, predicate: Callable[[Row], bool]) -> frozenset[Row]:
        return frozenset(row for row in self._rows if predicate(row))

    def project(self, columns: Sequence[int]) -> frozenset[Row]:
        cols = tuple(columns)
        return frozenset(tuple(row[c] for c in cols) for row in self._rows)

    def copy(self, name: str | None = None) -> "Instance":
        return Instance(name or self.name, self.arity, self._rows)

    def estimated_bytes(self) -> int:
        """Rough storage footprint, mirroring the paper's "DB size" metric.

        Strings count their UTF-8 length; everything else counts a fixed
        8-byte word.  This is deliberately simple: Figure 6 only needs the
        string-vs-integer contrast and growth trend to be faithful.
        """
        total = 0
        for row in self._rows:
            for value in row:
                if isinstance(value, str):
                    total += len(value.encode("utf-8"))
                else:
                    total += 8
        return total
