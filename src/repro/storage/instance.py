"""Relation instances: set-semantics tuple stores with hash indexes.

This is the storage substrate that stands in for the RDBMS tables of the
paper's Section 5.  An :class:`Instance` stores the extension of one relation
as a set of fixed-arity tuples, and lazily builds hash indexes on the column
subsets that query plans probe.  Index maintenance is incremental: inserts
and deletes update every materialized index.

Set semantics matches the paper: "in a set-based relational model ... a tuple
is uniquely identified by its values" (Section 4.1.2), which is also what
makes tuples usable as their own provenance tokens.
"""

from __future__ import annotations

from typing import AbstractSet, Callable, Iterable, Iterator, Sequence

Row = tuple[object, ...]

_EMPTY_BUCKET: frozenset[Row] = frozenset()


class StorageError(Exception):
    """Base class for storage-layer errors."""


class ArityError(StorageError):
    """A row's arity does not match the relation's arity."""


class Instance:
    """The extension of a single relation, with lazy hash indexes.

    Parameters
    ----------
    name:
        Relation name (used in error messages and statistics).
    arity:
        Number of columns; every stored row must have exactly this length.
    rows:
        Optional initial contents.
    """

    __slots__ = ("name", "arity", "_rows", "_indexes", "_version", "_watchers")

    def __init__(
        self, name: str, arity: int, rows: Iterable[Row] = ()
    ) -> None:
        self.name = name
        self.arity = arity
        self._rows: set[Row] = set()
        self._indexes: dict[tuple[int, ...], dict[Row, set[Row]]] = {}
        self._version = 0
        self._watchers: tuple[Callable[[], None], ...] = ()
        for row in rows:
            self.insert(row)

    # -- basic collection protocol ---------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self._rows

    def __repr__(self) -> str:
        return f"<Instance {self.name}/{self.arity}: {len(self)} rows>"

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation (used by stats caches)."""
        return self._version

    def _bump(self) -> None:
        """Record one mutation: bump the version and notify watchers.

        This is the dirty-bit that keeps :attr:`Database.version` O(1): each
        owning catalog registers a watcher and maintains its own counter
        instead of summing every instance's version on read.
        """
        self._version += 1
        for notify in self._watchers:
            notify()

    def add_watcher(self, notify: Callable[[], None]) -> None:
        """Register a zero-argument callback invoked on every mutation."""
        self._watchers += (notify,)

    def remove_watcher(self, notify: Callable[[], None]) -> None:
        """Unregister a callback added with :meth:`add_watcher`."""
        self._watchers = tuple(w for w in self._watchers if w != notify)

    def rows(self) -> frozenset[Row]:
        """A frozen snapshot of the current contents."""
        return frozenset(self._rows)

    # -- mutation ---------------------------------------------------------

    def _check_arity(self, row: Row) -> None:
        if len(row) != self.arity:
            raise ArityError(
                f"relation {self.name} has arity {self.arity}, "
                f"got row of length {len(row)}: {row!r}"
            )

    def insert(self, row: Sequence[object]) -> bool:
        """Insert ``row``; return True if it was new."""
        row = tuple(row)
        self._check_arity(row)
        if row in self._rows:
            return False
        self._rows.add(row)
        self._bump()
        for cols, index in self._indexes.items():
            key = tuple(row[c] for c in cols)
            index.setdefault(key, set()).add(row)
        return True

    def insert_many(self, rows: Iterable[Sequence[object]]) -> int:
        """Insert many rows; return the number actually added.

        Index maintenance is bulk: every materialized index is patched once
        with the set of genuinely new rows, and the version bumps once.
        """
        return len(self.insert_new(rows))

    def insert_new(self, rows: Iterable[Sequence[object]]) -> list[Row]:
        """Bulk insert; return the rows that were genuinely new.

        Semantics match :meth:`insert_many` (one version bump, bulk index
        maintenance); the returned list is what semi-naive evaluation needs
        to seed the next delta round without per-row ``insert`` calls.
        """
        # Two-phase for exception safety: validate and collect first, then
        # mutate — a bad row mid-batch must not leave rows in ``_rows``
        # that the indexes have never seen.
        existing = self._rows
        arity = self.arity
        added: list[Row] = []
        batch: set[Row] = set()
        record = added.append
        seen = batch.add
        for row in rows:
            row = tuple(row)
            if row in existing or row in batch:
                continue
            if len(row) != arity:
                self._check_arity(row)
            seen(row)
            record(row)
        if not added:
            return added
        existing.update(batch)
        self._bump()
        for cols, index in self._indexes.items():
            for row in added:
                key = tuple(row[c] for c in cols)
                index.setdefault(key, set()).add(row)
        return added

    def delete(self, row: Sequence[object]) -> bool:
        """Delete ``row``; return True if it was present."""
        row = tuple(row)
        if row not in self._rows:
            return False
        self._rows.discard(row)
        self._bump()
        for cols, index in self._indexes.items():
            key = tuple(row[c] for c in cols)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]
        return True

    def delete_many(self, rows: Iterable[Sequence[object]]) -> int:
        """Delete many rows; return the number actually removed.

        Like :meth:`insert_many`, indexes are patched in one bulk pass and
        the version bumps once.
        """
        # Two-phase like insert_many: collect first, then mutate, so an
        # unhashable/bad row mid-batch cannot desynchronize the indexes.
        existing = self._rows
        removed: list[Row] = []
        batch: set[Row] = set()
        for row in rows:
            row = tuple(row)
            if row in existing and row not in batch:
                batch.add(row)
                removed.append(row)
        if not removed:
            return 0
        existing.difference_update(batch)
        self._bump()
        for cols, index in self._indexes.items():
            for row in removed:
                key = tuple(row[c] for c in cols)
                bucket = index.get(key)
                if bucket is not None:
                    bucket.discard(row)
                    if not bucket:
                        del index[key]
        return len(removed)

    def clear(self) -> None:
        self._rows.clear()
        self._indexes.clear()
        self._bump()

    def replace(self, rows: Iterable[Sequence[object]]) -> None:
        """Replace the whole extension (drops indexes)."""
        self.clear()
        for row in rows:
            self.insert(row)

    def replace_contents(self, rows: Iterable[Sequence[object]]) -> None:
        """Replace the extension, *keeping* materialized indexes.

        The diff against the current contents is applied with bulk index
        maintenance, so a relation that is repeatedly refilled (the engine's
        persistent Δ-relations) keeps its probe indexes warm instead of
        rebuilding them from scratch on every swap.
        """
        new_rows = {tuple(row) for row in rows}
        stale = self._rows - new_rows
        if stale and len(stale) == len(self._rows):
            # Complete turnover (the usual case for Δ-relations: successive
            # rounds are disjoint): keep the index dicts but skip the
            # pointless per-row removals.
            self._rows.clear()
            for index in self._indexes.values():
                index.clear()
            self._bump()
            self.insert_many(new_rows)
            return
        fresh = new_rows - self._rows
        if stale:
            self.delete_many(stale)
        if fresh:
            self.insert_many(fresh)

    # -- indexes ----------------------------------------------------------

    def ensure_index(self, columns: Sequence[int]) -> None:
        """Materialize a hash index on ``columns`` if absent."""
        cols = tuple(columns)
        for c in cols:
            if not 0 <= c < self.arity:
                raise StorageError(
                    f"index column {c} out of range for {self.name}/{self.arity}"
                )
        if cols in self._indexes:
            return
        index: dict[Row, set[Row]] = {}
        for row in self._rows:
            key = tuple(row[c] for c in cols)
            index.setdefault(key, set()).add(row)
        self._indexes[cols] = index

    def lookup(
        self, columns: Sequence[int], values: Sequence[object]
    ) -> AbstractSet[Row]:
        """All rows whose ``columns`` equal ``values`` (index-accelerated).

        Returns a **read-only view** of the live index bucket — no per-probe
        copy is made.  Treat the result as ephemeral: do not mutate this
        instance while iterating it, and materialize (``tuple(...)``) before
        any interleaved mutation.  Use :meth:`rows` for a stable snapshot.
        """
        cols = tuple(columns)
        if not cols:
            # Not on the executor hot path (it snapshots full scans), so
            # return a safe frozen copy rather than the mutable row set.
            return self.rows()
        self.ensure_index(cols)
        bucket = self._indexes[cols].get(tuple(values))
        return bucket if bucket is not None else _EMPTY_BUCKET

    def index_key_count(self, columns: Sequence[int]) -> int:
        """Number of distinct keys in the index on ``columns``."""
        cols = tuple(columns)
        self.ensure_index(cols)
        return len(self._indexes[cols])

    def indexed_columns(self) -> tuple[tuple[int, ...], ...]:
        return tuple(self._indexes.keys())

    # -- bulk helpers -----------------------------------------------------

    def select(self, predicate: Callable[[Row], bool]) -> frozenset[Row]:
        return frozenset(row for row in self._rows if predicate(row))

    def project(self, columns: Sequence[int]) -> frozenset[Row]:
        cols = tuple(columns)
        return frozenset(tuple(row[c] for c in cols) for row in self._rows)

    def copy(self, name: str | None = None) -> "Instance":
        return Instance(name or self.name, self.arity, self._rows)

    def estimated_bytes(self) -> int:
        """Rough storage footprint, mirroring the paper's "DB size" metric.

        Strings count their UTF-8 length; everything else counts a fixed
        8-byte word.  This is deliberately simple: Figure 6 only needs the
        string-vs-integer contrast and growth trend to be faithful.
        """
        total = 0
        for row in self._rows:
            for value in row:
                if isinstance(value, str):
                    total += len(value.encode("utf-8"))
                else:
                    total += 8
        return total
