"""Relation instances: set-semantics tuple stores with hash indexes.

This is the storage substrate that stands in for the RDBMS tables of the
paper's Section 5.  An :class:`Instance` stores the extension of one relation
as a set of fixed-arity tuples, and lazily builds hash indexes on the column
subsets that query plans probe.

*When* those indexes are maintained is a pluggable policy (see
:mod:`repro.storage.indexes`): under the default **eager** policy every
mutation patches every materialized index, while the **deferred** policy
accumulates insert/delete runs inside :meth:`defer_maintenance` scopes and
applies them in batched passes at probe time or at flush barriers.  The row
set itself is always maintained eagerly, and every probe synchronizes the
index it touches first — readers never observe stale index state.

Set semantics matches the paper: "in a set-based relational model ... a tuple
is uniquely identified by its values" (Section 4.1.2), which is also what
makes tuples usable as their own provenance tokens.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import AbstractSet, Callable, Iterable, Iterator, Sequence

from .indexes import POLICY_EAGER, IndexSet, make_index_set

Row = tuple[object, ...]


class StorageError(Exception):
    """Base class for storage-layer errors."""


class ArityError(StorageError):
    """A row's arity does not match the relation's arity."""


class Instance:
    """The extension of a single relation, with lazy hash indexes.

    Parameters
    ----------
    name:
        Relation name (used in error messages and statistics).
    arity:
        Number of columns; every stored row must have exactly this length.
    rows:
        Optional initial contents.
    index_policy:
        Index maintenance policy (``"eager"`` or ``"deferred"``, see
        :mod:`repro.storage.indexes`).
    """

    __slots__ = (
        "name",
        "arity",
        "_rows",
        "_indexes",
        "_version",
        "_watchers",
        "_feeds",
    )

    def __init__(
        self,
        name: str,
        arity: int,
        rows: Iterable[Row] = (),
        index_policy: str = POLICY_EAGER,
    ) -> None:
        self.name = name
        self.arity = arity
        self._rows: set[Row] = set()
        self._indexes: IndexSet = make_index_set(index_policy, self._rows)
        self._version = 0
        self._watchers: tuple[Callable[[], None], ...] = ()
        # Row-level change feeds (replica synchronization, see
        # repro.storage.replication); empty for almost every instance.
        self._feeds: tuple = ()
        for row in rows:
            self.insert(row)

    # -- basic collection protocol ---------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self._rows

    def __repr__(self) -> str:
        return f"<Instance {self.name}/{self.arity}: {len(self)} rows>"

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation (used by stats caches)."""
        return self._version

    @property
    def index_policy(self) -> str:
        """The index maintenance policy this instance was built with."""
        return self._indexes.policy

    def _bump(self) -> None:
        """Record one mutation: bump the version and notify watchers.

        This is the dirty-bit that keeps :attr:`Database.version` O(1): each
        owning catalog registers a watcher and maintains its own counter
        instead of summing every instance's version on read.
        """
        self._version += 1
        for notify in self._watchers:
            notify()

    def add_watcher(self, notify: Callable[[], None]) -> None:
        """Register a zero-argument callback invoked on every mutation."""
        self._watchers += (notify,)

    def remove_watcher(self, notify: Callable[[], None]) -> None:
        """Unregister a callback added with :meth:`add_watcher`."""
        self._watchers = tuple(w for w in self._watchers if w != notify)

    def add_feed(self, feed) -> None:
        """Attach a row-level :class:`~repro.storage.replication.ChangeFeed`."""
        if feed not in self._feeds:
            self._feeds += (feed,)

    def remove_feed(self, feed) -> None:
        """Detach a feed added with :meth:`add_feed`."""
        self._feeds = tuple(f for f in self._feeds if f is not feed)

    def _journal(self, op: str, rows: tuple) -> None:
        for feed in self._feeds:
            feed._record(self.name, op, rows)

    def rows(self) -> frozenset[Row]:
        """A frozen snapshot of the current contents."""
        return frozenset(self._rows)

    # -- mutation ---------------------------------------------------------

    def _check_arity(self, row: Row) -> None:
        if len(row) != self.arity:
            raise ArityError(
                f"relation {self.name} has arity {self.arity}, "
                f"got row of length {len(row)}: {row!r}"
            )

    def insert(self, row: Sequence[object]) -> bool:
        """Insert ``row``; return True if it was new."""
        row = tuple(row)
        self._check_arity(row)
        if row in self._rows:
            return False
        self._rows.add(row)
        self._bump()
        if self._indexes._by_cols:
            self._indexes.insert_rows((row,))
        if self._feeds:
            self._journal("+", (row,))
        return True

    def insert_many(self, rows: Iterable[Sequence[object]]) -> int:
        """Insert many rows; return the number actually added.

        Index maintenance is bulk: the set of genuinely new rows is handed
        to the index policy in one run, and the version bumps once.
        """
        return len(self.insert_new(rows))

    def insert_new(self, rows: Iterable[Sequence[object]]) -> list[Row]:
        """Bulk insert; return the rows that were genuinely new.

        Semantics match :meth:`insert_many` (one version bump, bulk index
        maintenance); the returned list is what semi-naive evaluation needs
        to seed the next delta round without per-row ``insert`` calls.
        """
        # Two-phase for exception safety: validate and collect first, then
        # mutate — a bad row mid-batch must not leave rows in ``_rows``
        # that the indexes have never seen.
        existing = self._rows
        arity = self.arity
        added: list[Row] = []
        batch: set[Row] = set()
        record = added.append
        seen = batch.add
        for row in rows:
            row = tuple(row)
            if row in existing or row in batch:
                continue
            if len(row) != arity:
                self._check_arity(row)
            seen(row)
            record(row)
        if not added:
            return added
        existing.update(batch)
        self._bump()
        if self._indexes._by_cols:
            self._indexes.insert_rows(added)
        if self._feeds:
            self._journal("+", tuple(added))
        return added

    def delete(self, row: Sequence[object]) -> bool:
        """Delete ``row``; return True if it was present."""
        row = tuple(row)
        if row not in self._rows:
            return False
        self._rows.discard(row)
        self._bump()
        if self._indexes._by_cols:
            self._indexes.delete_rows((row,))
        if self._feeds:
            self._journal("-", (row,))
        return True

    def delete_many(self, rows: Iterable[Sequence[object]]) -> int:
        """Delete many rows; return the number actually removed.

        Like :meth:`insert_many`, the genuinely removed rows reach the
        index policy as one run and the version bumps once.
        """
        return len(self.delete_existing(rows))

    def delete_existing(self, rows: Iterable[Sequence[object]]) -> list[Row]:
        """Bulk delete; return the rows that were genuinely removed.

        The deletion mirror of :meth:`insert_new`: one version bump, one
        bulk index-maintenance run, and the effective rows back to the
        caller — what the deletion-propagation algorithms need to seed
        their next frontier without per-row ``delete`` calls.
        """
        # Two-phase like insert_new: collect first, then mutate, so an
        # unhashable/bad row mid-batch cannot desynchronize the indexes.
        existing = self._rows
        removed: list[Row] = []
        batch: set[Row] = set()
        for row in rows:
            row = tuple(row)
            if row in existing and row not in batch:
                batch.add(row)
                removed.append(row)
        if not removed:
            return removed
        existing.difference_update(batch)
        self._bump()
        if self._indexes._by_cols:
            self._indexes.delete_rows(removed)
        if self._feeds:
            self._journal("-", tuple(removed))
        return removed

    def clear(self) -> None:
        self._rows.clear()
        self._indexes.drop_all()
        self._bump()
        if self._feeds:
            self._journal("clear", ())

    def replace(self, rows: Iterable[Sequence[object]]) -> None:
        """Replace the whole extension (drops indexes)."""
        self.clear()
        for row in rows:
            self.insert(row)

    def replace_contents(self, rows: Iterable[Sequence[object]]) -> None:
        """Replace the extension, *keeping* materialized indexes.

        The diff against the current contents is applied with bulk index
        maintenance, so a relation that is repeatedly refilled (the engine's
        persistent Δ-relations) keeps its probe indexes warm instead of
        rebuilding them from scratch on every swap.
        """
        new_rows = {tuple(row) for row in rows}
        stale = self._rows - new_rows
        if stale and len(stale) == len(self._rows):
            # Complete turnover (the usual case for Δ-relations: successive
            # rounds are disjoint): keep the index structures but skip the
            # pointless per-row removals.
            self._rows.clear()
            self._indexes.turnover()
            self._bump()
            if self._feeds:
                self._journal("clear", ())
            self.insert_many(new_rows)
            return
        fresh = new_rows - self._rows
        if stale:
            self.delete_many(stale)
        if fresh:
            self.insert_many(fresh)

    # -- indexes ----------------------------------------------------------

    def ensure_index(self, columns: Sequence[int]) -> None:
        """Materialize a hash index on ``columns`` if absent."""
        cols = tuple(columns)
        for c in cols:
            if not 0 <= c < self.arity:
                raise StorageError(
                    f"index column {c} out of range for {self.name}/{self.arity}"
                )
        self._indexes.ensure(cols)

    def lookup(
        self, columns: Sequence[int], values: Sequence[object]
    ) -> AbstractSet[Row]:
        """All rows whose ``columns`` equal ``values`` (index-accelerated).

        Returns a **read-only view** of the live index bucket — no per-probe
        copy is made.  Treat the result as ephemeral: do not mutate this
        instance while iterating it, and materialize (``tuple(...)``) before
        any interleaved mutation.  Use :meth:`rows` for a stable snapshot.

        Probes are snapshot-consistent under every index policy: a deferred
        index is synchronized with its pending runs before the bucket is
        read, so the result always reflects the current row set.
        """
        cols = tuple(columns)
        if not cols:
            # Not on the executor hot path (it snapshots full scans), so
            # return a safe frozen copy rather than the mutable row set.
            return self.rows()
        try:
            return self._indexes.probe(cols, tuple(values))
        except KeyError:
            # One-time miss: validate the columns and build the index.
            self.ensure_index(cols)
            return self._indexes.probe(cols, tuple(values))

    def prepare_probe(self, columns: Sequence[int]) -> None:
        """Make the index on ``columns`` current ahead of a probe loop.

        The plan executor calls this once per pipeline step, so the
        per-probe :meth:`lookup` calls that follow hit an already
        synchronized index (the per-call pending check still guards
        correctness; this just hoists the batched catch-up out of the
        environment loop).
        """
        cols = tuple(columns)
        if cols:
            self.ensure_index(cols)
            self._indexes.sync(cols)

    def index_key_count(self, columns: Sequence[int]) -> int:
        """Number of distinct keys in the index on ``columns``."""
        cols = tuple(columns)
        self.ensure_index(cols)
        return self._indexes.key_count(cols)

    def indexed_columns(self) -> tuple[tuple[int, ...], ...]:
        return self._indexes.columns()

    # -- deferred maintenance barriers -------------------------------------

    @contextmanager
    def defer_maintenance(self):
        """A deferral scope: batch index maintenance until exit.

        Under the deferred policy, mutations inside the scope only append
        to the maintenance log; each index catches up when probed, and the
        outermost scope exit is a flush barrier.  Under the eager policy
        this is a no-op, so engine code can open scopes unconditionally.
        """
        self._indexes.begin_defer()
        try:
            yield self
        finally:
            self._indexes.end_defer()

    def flush_indexes(self) -> None:
        """An explicit maintenance barrier.

        Pending runs are applied to every index whose debt is small; an
        index whose debt is rebuild-scale is retired instead and lazily
        rebuilt on its next probe (see
        :meth:`repro.storage.indexes.DeferredIndexSet.flush`).
        """
        self._indexes.flush()

    def pending_index_ops(self) -> int:
        """Maintenance-log entries some index has not yet applied."""
        return self._indexes.pending_ops

    def index_stats(self) -> dict[str, object]:
        """Maintenance statistics from the index policy (counters such as
        ``rebuilds`` / ``retired`` / ``hot_settled`` / ``spills`` and the
        per-index probe-hotness counts under the deferred policy)."""
        return self._indexes.stats()

    # -- bulk helpers -----------------------------------------------------

    def select(self, predicate: Callable[[Row], bool]) -> frozenset[Row]:
        return frozenset(row for row in self._rows if predicate(row))

    def project(self, columns: Sequence[int]) -> frozenset[Row]:
        cols = tuple(columns)
        return frozenset(tuple(row[c] for c in cols) for row in self._rows)

    def copy(self, name: str | None = None) -> "Instance":
        """A deep copy carrying the index definitions and policy.

        Indexes are copied bucket-wise (cheaper than rebuilding key
        tuples), so probes against the copy start warm — e.g. the DRed
        maintainer's pre-deletion snapshot probes the same columns the
        live database just did.
        """
        clone = Instance(
            name or self.name, self.arity, index_policy=self.index_policy
        )
        clone._rows.update(self._rows)
        if self._rows:
            clone._version = 1
        clone._indexes.adopt(self._indexes)
        return clone

    def estimated_bytes(self) -> int:
        """Rough storage footprint, mirroring the paper's "DB size" metric.

        Strings count their UTF-8 length; everything else counts a fixed
        8-byte word.  This is deliberately simple: Figure 6 only needs the
        string-vs-integer contrast and growth trend to be faithful.
        """
        total = 0
        for row in self._rows:
            for value in row:
                if isinstance(value, str):
                    total += len(value.encode("utf-8"))
                else:
                    total += 8
        return total
