"""A stable, JSON-compatible encoding of rows and column values.

Durable storage (the SQLite backend, the write-ahead log) needs to put
relation rows on disk and read them back *byte-identically* across process
restarts.  The in-memory stores never had that problem: rows are plain
Python tuples whose values are JSON scalars plus the engine's labeled
nulls (:class:`~repro.datalog.ast.SkolemValue`, whose arguments may
recursively contain further labeled nulls or tuples).

The encoding is deliberately boring:

* JSON scalars (``None``, ``bool``, ``int``, ``float``, ``str``) pass
  through unchanged — the common case costs nothing;
* a labeled null becomes ``{"$null": [function_name, [args...]]}``;
* a tuple/list value becomes ``{"$tuple": [items...]}``;
* anything else is rejected loudly (:class:`CodecError`) — silent
  ``repr`` round-trips are exactly the corruption this module exists to
  prevent.

:func:`dumps_row` / :func:`loads_row` give the serialized form (compact,
sorted keys, so equal rows always serialize to equal bytes), and
:func:`key_text` gives a canonical text key for one row or bucket key —
what the SQLite backend uses as its primary key.
"""

from __future__ import annotations

import json
from typing import Sequence

from ..datalog.ast import SkolemValue
from .instance import Row, StorageError

NULL_TAG = "$null"
TUPLE_TAG = "$tuple"


class CodecError(StorageError):
    """A value cannot be encoded for durable storage (or decoded back)."""


def encode_value(value: object) -> object:
    """One column value as a JSON-serializable object."""
    # bool first: isinstance(True, int) is True and the distinction must
    # survive the round trip.
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, SkolemValue):
        return {
            NULL_TAG: [
                value.function_name,
                [encode_value(arg) for arg in value.args],
            ]
        }
    if isinstance(value, (tuple, list)):
        return {TUPLE_TAG: [encode_value(item) for item in value]}
    raise CodecError(
        f"cannot durably encode a {type(value).__name__} value: {value!r}"
    )


def decode_value(value: object) -> object:
    """Inverse of :func:`encode_value`."""
    # json.loads only ever produces exact builtin types, so dispatching on
    # type() keeps the dominant scalar case to a single comparison — this
    # is the recovery path's hot loop.
    kind = type(value)
    if kind is dict:
        if len(value) == 1:
            if NULL_TAG in value:
                name, args = value[NULL_TAG]
                return SkolemValue(
                    str(name), tuple([decode_value(a) for a in args])
                )
            if TUPLE_TAG in value:
                return tuple([decode_value(item) for item in value[TUPLE_TAG]])
        raise CodecError(f"unrecognized encoded value: {value!r}")
    if kind is list:
        raise CodecError(f"bare lists are not valid encoded values: {value!r}")
    return value


def encode_row(row: Sequence[object]) -> list:
    return [encode_value(value) for value in row]


def decode_row(encoded: Sequence[object]) -> Row:
    return tuple(decode_value(value) for value in encoded)


def dumps_row(row: Sequence[object]) -> str:
    """A row as canonical JSON text (equal rows -> equal bytes)."""
    return json.dumps(
        encode_row(row), separators=(",", ":"), sort_keys=True
    )


def loads_row(text: str) -> Row:
    return decode_row(json.loads(text))


def dumps_value(value: object) -> str:
    """One value as canonical JSON text."""
    return json.dumps(
        encode_value(value), separators=(",", ":"), sort_keys=True
    )


def loads_value(text: str) -> object:
    return decode_value(json.loads(text))


def key_text(key: object) -> str:
    """A canonical, totally ordered text form of a bucket key.

    Bucket keys in practice are strings (catalog entries) or tuples of
    strings (:func:`repro.storage.kvstore._row_key` output); the encoding
    covers every value :func:`encode_value` does, so any row can also be
    its own key.  Equality is exact; the ordering is merely *some*
    deterministic total order (text order of the canonical JSON), which
    is all cursor iteration needs.
    """
    return dumps_value(key)
