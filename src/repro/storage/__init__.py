"""Relational storage substrate: instances, indexes, B+-tree, statistics.

The storage layer of DESIGN.md's stack — the stand-in for the RDBMS
tables and Berkeley DB storage of the paper's Section 5.
"""

from .backend import (
    BACKEND_MEMORY,
    BACKEND_SQLITE,
    BACKENDS,
    StorageBackend,
    open_backend,
)
from .btree import BPlusTree, BTreeError
from .codec import (
    CodecError,
    decode_row,
    decode_value,
    dumps_row,
    encode_row,
    encode_value,
    key_text,
    loads_row,
)
from .database import Database, UnknownRelationError
from .indexes import (
    INDEX_POLICIES,
    POLICY_DEFERRED,
    POLICY_EAGER,
    DeferredIndexSet,
    EagerIndexSet,
    IndexSet,
    make_index_set,
)
from .instance import ArityError, Instance, Row, StorageError
from .kvstore import KeyValueStore, RelationStore
from .persistence import checkpoint, checkpoint_equal, restore
from .replication import ChangeFeed, apply_ops, build_replica, export_snapshot
from .snapshot import DatabaseSnapshot, pin_database
from .sqlite import SQLiteStore
from .stats import StatisticsCache, TableStats, compute_stats
from .zset import ZSet, apply_zset, fold_ops

__all__ = [
    "ArityError",
    "BACKENDS",
    "BACKEND_MEMORY",
    "BACKEND_SQLITE",
    "BPlusTree",
    "BTreeError",
    "ChangeFeed",
    "CodecError",
    "Database",
    "DatabaseSnapshot",
    "DeferredIndexSet",
    "EagerIndexSet",
    "INDEX_POLICIES",
    "IndexSet",
    "Instance",
    "KeyValueStore",
    "POLICY_DEFERRED",
    "POLICY_EAGER",
    "RelationStore",
    "Row",
    "SQLiteStore",
    "StatisticsCache",
    "StorageBackend",
    "StorageError",
    "TableStats",
    "UnknownRelationError",
    "ZSet",
    "apply_ops",
    "apply_zset",
    "fold_ops",
    "build_replica",
    "checkpoint",
    "checkpoint_equal",
    "compute_stats",
    "decode_row",
    "decode_value",
    "dumps_row",
    "encode_row",
    "encode_value",
    "export_snapshot",
    "key_text",
    "loads_row",
    "make_index_set",
    "open_backend",
    "pin_database",
    "restore",
]
