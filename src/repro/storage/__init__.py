"""Relational storage substrate: instances, indexes, B+-tree, statistics.

The storage layer of DESIGN.md's stack — the stand-in for the RDBMS
tables and Berkeley DB storage of the paper's Section 5.
"""

from .btree import BPlusTree, BTreeError
from .database import Database, UnknownRelationError
from .indexes import (
    INDEX_POLICIES,
    POLICY_DEFERRED,
    POLICY_EAGER,
    DeferredIndexSet,
    EagerIndexSet,
    IndexSet,
    make_index_set,
)
from .instance import ArityError, Instance, Row, StorageError
from .kvstore import KeyValueStore, RelationStore
from .persistence import checkpoint, checkpoint_equal, restore
from .replication import ChangeFeed, apply_ops, build_replica, export_snapshot
from .snapshot import DatabaseSnapshot, pin_database
from .stats import StatisticsCache, TableStats, compute_stats
from .zset import ZSet, apply_zset, fold_ops

__all__ = [
    "ArityError",
    "BPlusTree",
    "BTreeError",
    "ChangeFeed",
    "Database",
    "DatabaseSnapshot",
    "DeferredIndexSet",
    "EagerIndexSet",
    "INDEX_POLICIES",
    "IndexSet",
    "Instance",
    "KeyValueStore",
    "POLICY_DEFERRED",
    "POLICY_EAGER",
    "RelationStore",
    "Row",
    "StatisticsCache",
    "StorageError",
    "TableStats",
    "UnknownRelationError",
    "ZSet",
    "apply_ops",
    "apply_zset",
    "fold_ops",
    "build_replica",
    "checkpoint",
    "checkpoint_equal",
    "compute_stats",
    "export_snapshot",
    "make_index_set",
    "pin_database",
    "restore",
]
