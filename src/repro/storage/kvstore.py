"""A Berkeley-DB-style ordered key-value store built on the B+-tree.

The paper's Tukwila backend persists relation and provenance data in Oracle
Berkeley DB (Section 5.2).  :class:`KeyValueStore` reproduces the interface
that backend relies on: named ordered buckets with put/get/delete/cursor
operations.  :class:`RelationStore` layers a relation-per-bucket encoding on
top, which the prepared (Tukwila-style) engine can use as its auxiliary
storage for provenance tables.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator

from .btree import BPlusTree

Row = tuple[object, ...]


class KeyValueStore:
    """A collection of named, ordered buckets (one B+-tree each).

    Implements the :class:`~repro.storage.backend.StorageBackend`
    protocol; :meth:`transaction` and :meth:`close` are no-ops because an
    in-memory store has neither crash atomicity to provide nor resources
    to release.
    """

    def __init__(self, branching: int = 32) -> None:
        self._branching = branching
        self._buckets: dict[str, BPlusTree] = {}

    def bucket(self, name: str) -> BPlusTree:
        """Get (or create) the bucket called ``name``."""
        tree = self._buckets.get(name)
        if tree is None:
            tree = BPlusTree(self._branching)
            self._buckets[name] = tree
        return tree

    def drop(self, name: str) -> bool:
        return self._buckets.pop(name, None) is not None

    def bucket_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._buckets))

    def put(self, bucket: str, key: object, value: object) -> None:
        self.bucket(bucket).insert(key, value)

    def get(self, bucket: str, key: object, default: object = None) -> object:
        tree = self._buckets.get(bucket)
        if tree is None:
            return default
        return tree.get(key, default)

    def delete(self, bucket: str, key: object) -> bool:
        tree = self._buckets.get(bucket)
        if tree is None:
            return False
        return tree.delete(key)

    def cursor(
        self, bucket: str, low: object = None, high: object = None
    ) -> Iterator[tuple[object, object]]:
        tree = self._buckets.get(bucket)
        if tree is None:
            return iter(())
        return tree.range(low, high)

    def values(self, bucket: str) -> Iterator[object]:
        tree = self._buckets.get(bucket)
        if tree is None:
            return iter(())
        return (value for _, value in tree.range(None, None))

    def size(self, bucket: str) -> int:
        tree = self._buckets.get(bucket)
        return 0 if tree is None else len(tree)

    @contextmanager
    def transaction(self):
        """No-op atomicity scope (backend-protocol conformance)."""
        yield self

    def close(self) -> None:
        """No-op resource release (backend-protocol conformance)."""


def _row_key(row: Row) -> tuple[str, ...]:
    """An order-preserving-enough, totally ordered encoding of a row.

    Heterogeneous Python values are not mutually comparable, so rows are
    keyed by ``(type-tag, repr)`` pairs per column.  Equality is exact, which
    is all set-semantics relation storage needs; ordering is merely *some*
    deterministic total order for the B+-tree.
    """
    return tuple(f"{type(v).__name__}:{v!r}" for v in row)


class RelationStore:
    """Relation-per-bucket storage over a :class:`KeyValueStore`.

    Rows are stored under an order-normalized key with the row itself as the
    value, giving the prepared engine deterministic full scans and cheap
    existence probes — the access pattern the paper's fixpoint operator uses.
    """

    def __init__(self, store: KeyValueStore | None = None) -> None:
        self._store = store or KeyValueStore()

    def insert(self, relation: str, row: Row) -> bool:
        key = _row_key(row)
        bucket = self._store.bucket(relation)
        existed = key in bucket
        bucket.insert(key, row)
        return not existed

    def insert_many(self, relation: str, rows: Iterable[Row]) -> int:
        return sum(1 for row in rows if self.insert(relation, row))

    def delete(self, relation: str, row: Row) -> bool:
        return self._store.delete(relation, _row_key(row))

    def contains(self, relation: str, row: Row) -> bool:
        return self._store.get(relation, _row_key(row), _MISSING) is not _MISSING

    def scan(self, relation: str) -> Iterator[Row]:
        for _, row in self._store.cursor(relation):
            yield row  # type: ignore[misc]

    def count(self, relation: str) -> int:
        return self._store.size(relation)

    def relations(self) -> tuple[str, ...]:
        return self._store.bucket_names()


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
