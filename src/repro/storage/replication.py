"""Row-level change capture for replica synchronization.

The shard-parallel evaluation subsystem (:mod:`repro.parallel`) keeps a
replicated read-only copy of the database in every worker process.  Full
re-replication per round would dwarf the evaluation work, so replicas are
kept current the way distributed engines do it (cf. Greenplum's
dispatcher): one **snapshot** when a worker session starts
(:func:`export_snapshot`), then **delta shipping** — a :class:`ChangeFeed`
attached to the live database records every row-level mutation after the
snapshot, and draining the feed yields a compact, picklable op list that
:func:`apply_ops` replays against a replica.

A feed is an ordered journal, not a diff: ops are recorded in mutation
order across all relations (``create`` / ``drop`` / ``clear`` / ``+`` /
``-``), so replay is exact even when a relation is cleared, dropped, or
re-created within one drain window.  Mutation methods already report
*effective* rows (:meth:`Instance.insert_new
<repro.storage.instance.Instance.insert_new>` /
:meth:`~repro.storage.instance.Instance.delete_existing`), so the journal
never records redundant ops and replay never disagrees with the source.

Feeds cost one attribute check per mutation batch while attached and
nothing when no feed is attached; :meth:`ChangeFeed.close` detaches
cleanly so an outlived database does not keep journaling into the void.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database
    from .instance import Instance, Row
    from .zset import ZSet

OP_INSERT = "+"
OP_DELETE = "-"
OP_CLEAR = "clear"
OP_CREATE = "create"
OP_DROP = "drop"

#: One journal entry: (relation name, op, payload).  Payload is a row
#: tuple-sequence for +/-, the arity for create, and () otherwise.
Op = tuple[str, str, object]


class ChangeFeed:
    """An ordered journal of every mutation of one database.

    Create through :meth:`Database.changefeed
    <repro.storage.database.Database.changefeed>`; relations created or
    attached while the feed is live are enrolled automatically.
    """

    __slots__ = ("_dbref", "_ops", "_closed", "__weakref__")

    def __init__(self, db: "Database") -> None:
        # Weak: a feed must never keep its database alive — replica
        # sessions are torn down *because* the source database died.
        self._dbref = weakref.ref(db)
        self._ops: list[Op] = []
        self._closed = False
        db._attach_feed(self)

    # -- recording (called by Instance/Database mutation paths) ------------

    def _record(self, name: str, op: str, payload: object) -> None:
        self._ops.append((name, op, payload))

    # -- consumption -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ops)

    def drain(self) -> list[Op]:
        """All ops recorded since the last drain (empties the journal)."""
        ops, self._ops = self._ops, []
        return ops

    def drain_zsets(self) -> dict[str, "ZSet"]:
        """Drain the journal folded into per-relation weighted Z-sets.

        The net-change view of the same window :meth:`drain` journals:
        ``+``/``-`` ops accumulate ±1 weights (an insert-then-delete
        cancels), making the feed speak the same delta type as the
        weighted maintenance core.  Raises :class:`ValueError` if the
        window contains a ``clear`` — see :func:`repro.storage.zset.fold_ops`.
        """
        from .zset import fold_ops

        return fold_ops(self.drain())

    def close(self) -> None:
        """Detach from the database; the journal stops growing."""
        if not self._closed:
            self._closed = True
            db = self._dbref()
            if db is not None:
                db._detach_feed(self)
            self._ops.clear()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{len(self._ops)} ops"
        return f"<ChangeFeed: {state}>"


def export_snapshot(db: "Database") -> dict[str, object]:
    """A picklable full copy of ``db``'s contents (rows only, no indexes).

    Replicas rebuild probe indexes lazily on first use, exactly like the
    source database did — shipping buckets would cost more than it saves.
    """
    return {
        "index_policy": db.index_policy,
        "relations": [
            (instance.name, instance.arity, list(instance))
            for instance in db
        ],
    }


def build_replica(snapshot: dict[str, object]) -> "Database":
    """Construct a fresh database from :func:`export_snapshot` output."""
    from .database import Database

    db = Database(index_policy=snapshot["index_policy"])  # type: ignore[arg-type]
    for name, arity, rows in snapshot["relations"]:  # type: ignore[union-attr]
        db.create(name, arity).insert_many(rows)
    return db


def apply_ops(db: "Database", ops: Sequence[Op]) -> None:
    """Replay drained feed ops against a replica database, in order."""
    for name, op, payload in ops:
        if op == OP_INSERT:
            db[name].insert_many(payload)  # type: ignore[arg-type]
        elif op == OP_DELETE:
            db[name].delete_many(payload)  # type: ignore[arg-type]
        elif op == OP_CLEAR:
            db[name].clear()
        elif op == OP_CREATE:
            db.ensure(name, payload)  # type: ignore[arg-type]
        elif op == OP_DROP:
            db.drop(name)
        else:  # pragma: no cover - future-proofing
            raise ValueError(f"unknown replication op {op!r}")
