"""Row-level change capture for replica synchronization.

The shard-parallel evaluation subsystem (:mod:`repro.parallel`) keeps a
replicated read-only copy of the database in every worker process.  Full
re-replication per round would dwarf the evaluation work, so replicas are
kept current the way distributed engines do it (cf. Greenplum's
dispatcher): one **snapshot** when a worker session starts
(:func:`export_snapshot`), then **delta shipping** — a :class:`ChangeFeed`
attached to the live database records every row-level mutation after the
snapshot, and draining the feed yields a compact, picklable op list that
:func:`apply_ops` replays against a replica.

A feed is an ordered journal, not a diff: ops are recorded in mutation
order across all relations (``create`` / ``drop`` / ``clear`` / ``+`` /
``-``), so replay is exact even when a relation is cleared, dropped, or
re-created within one drain window.  Mutation methods already report
*effective* rows (:meth:`Instance.insert_new
<repro.storage.instance.Instance.insert_new>` /
:meth:`~repro.storage.instance.Instance.delete_existing`), so the journal
never records redundant ops and replay never disagrees with the source.

Feeds cost one attribute check per mutation batch while attached and
nothing when no feed is attached; :meth:`ChangeFeed.close` detaches
cleanly so an outlived database does not keep journaling into the void.
"""

from __future__ import annotations

import pickle
import weakref
import zlib
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database
    from .instance import Instance, Row
    from .zset import ZSet

OP_INSERT = "+"
OP_DELETE = "-"
OP_CLEAR = "clear"
OP_CREATE = "create"
OP_DROP = "drop"

# Replication-protocol-v2 marker ops (never recorded by a feed; the
# worker pool synthesizes them when it splits a drained journal into
# per-worker complement streams — see repro.parallel.pool).  A marker
# tells a worker "apply the rows you retained for this round yourself":
# payload is (round token, rejected rows) for self-insert and
# (round token,) for self-delete.
OP_SELF_INSERT = "self+"
OP_SELF_DELETE = "self-"

# Packed-stream sentinel: a v2 MSG_APPLY ops field of the form
# ``(OPS_PACKED, blob)`` carries the op list as a zlib-compressed pickle
# instead of the plain list.  Row payloads are highly repetitive
# (adjacent provenance rows share most of their bytes), so deflate
# typically halves the frame again on top of complement shipping.  Only
# negotiated-v2 sessions ever see packed frames — protocol v1 keeps the
# plain-list wire format older workers expect.
OPS_PACKED = "z"

# Frames below this pickle size ship plain: deflate overhead (header +
# dictionary warm-up) eats the saving on tiny windows.
_PACK_MIN_BYTES = 192


def pack_ops(ops: "Sequence[Op]") -> object:
    """The wire form of a v2 op stream: packed when that is smaller.

    Returns either the stream unchanged (small or incompressible
    windows) or an ``(OPS_PACKED, blob)`` pair.  Callers that share one
    stream object across workers should pack once and share the packed
    object the same way — the transport dedups frames by object id.
    """
    blob = pickle.dumps(ops, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) < _PACK_MIN_BYTES:
        return ops
    packed = zlib.compress(blob, 6)
    if len(packed) >= len(blob):
        return ops
    return (OPS_PACKED, packed)


def unpack_ops(ops: object) -> "Sequence[Op]":
    """Invert :func:`pack_ops` (plain streams pass through)."""
    if (
        isinstance(ops, tuple)
        and len(ops) == 2
        and ops[0] == OPS_PACKED
    ):
        return pickle.loads(zlib.decompress(ops[1]))
    return ops

#: One journal entry: (relation name, op, payload).  Payload is a row
#: tuple-sequence for +/-, the arity for create, and () otherwise.
Op = tuple[str, str, object]

#: A drained entry with its origin tag: (name, op, payload, origin).
#: ``origin`` is ``None`` for ordinary mutations, or the value the
#: database's :meth:`~repro.storage.database.Database.tag_changes` scope
#: set — the worker pool tags merged derivations with a ``(round token,
#: producer-worker bitmask)`` pair so complement shipping can tell which
#: replicas already hold the rows.
TaggedOp = tuple[str, str, object, object]


class ChangeFeed:
    """An ordered journal of every mutation of one database.

    Create through :meth:`Database.changefeed
    <repro.storage.database.Database.changefeed>`; relations created or
    attached while the feed is live are enrolled automatically.
    """

    __slots__ = ("_dbref", "_ops", "_closed", "__weakref__")

    def __init__(self, db: "Database") -> None:
        # Weak: a feed must never keep its database alive — replica
        # sessions are torn down *because* the source database died.
        self._dbref = weakref.ref(db)
        # Mutable [name, op, payload(list for +/-), origin] entries; see
        # _record for the coalescing invariant.
        self._ops: list[list] = []
        self._closed = False
        db._attach_feed(self)

    # -- recording (called by Instance/Database mutation paths) ------------

    def _record(self, name: str, op: str, payload: object) -> None:
        # Entries are stored as mutable [name, op, payload, origin] lists
        # so consecutive same-kind ops on the same relation coalesce in
        # place: a bulk edit applied row by row journals one op, not N,
        # and drain materializes each payload tuple exactly once.
        db = self._dbref()
        origin = db._change_origin if db is not None else None
        ops = self._ops
        if op == OP_INSERT or op == OP_DELETE:
            if ops:
                last = ops[-1]
                if last[0] == name and last[1] == op and last[3] == origin:
                    last[2].extend(payload)
                    return
            ops.append([name, op, list(payload), origin])
        else:
            ops.append([name, op, payload, origin])

    # -- consumption -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ops)

    def drain(self) -> list[Op]:
        """All ops recorded since the last drain (empties the journal).

        Origin tags are stripped — this is the plain replay format
        :func:`apply_ops` consumes; the worker pool uses
        :meth:`drain_tagged` to keep them.
        """
        return [(name, op, payload) for name, op, payload, _ in self._drain()]

    def drain_tagged(self) -> list[TaggedOp]:
        """Like :meth:`drain`, but each entry keeps its origin tag."""
        return self._drain()

    def _drain(self) -> list[TaggedOp]:
        entries, self._ops = self._ops, []
        return [
            (
                name,
                op,
                tuple(payload) if (op == OP_INSERT or op == OP_DELETE) else payload,
                origin,
            )
            for name, op, payload, origin in entries
        ]

    def drain_zsets(self) -> dict[str, "ZSet"]:
        """Drain the journal folded into per-relation weighted Z-sets.

        The net-change view of the same window :meth:`drain` journals:
        ``+``/``-`` ops accumulate ±1 weights (an insert-then-delete
        cancels), making the feed speak the same delta type as the
        weighted maintenance core.  Raises :class:`ValueError` if the
        window contains a ``clear`` — see :func:`repro.storage.zset.fold_ops`.
        """
        from .zset import fold_ops

        return fold_ops(self.drain())

    def close(self) -> None:
        """Detach from the database; the journal stops growing."""
        if not self._closed:
            self._closed = True
            db = self._dbref()
            if db is not None:
                db._detach_feed(self)
            self._ops.clear()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{len(self._ops)} ops"
        return f"<ChangeFeed: {state}>"


def export_snapshot(db: "Database") -> dict[str, object]:
    """A picklable full copy of ``db``'s contents (rows only, no indexes).

    Replicas rebuild probe indexes lazily on first use, exactly like the
    source database did — shipping buckets would cost more than it saves.
    """
    return {
        "index_policy": db.index_policy,
        "relations": [
            (instance.name, instance.arity, list(instance))
            for instance in db
        ],
    }


def build_replica(snapshot: dict[str, object]) -> "Database":
    """Construct a fresh database from :func:`export_snapshot` output."""
    from .database import Database

    db = Database(index_policy=snapshot["index_policy"])  # type: ignore[arg-type]
    for name, arity, rows in snapshot["relations"]:  # type: ignore[union-attr]
        db.create(name, arity).insert_many(rows)
    return db


def split_op_streams(
    entries: Sequence[TaggedOp],
    workers: int,
    rejections: "dict[tuple[int, str, int], tuple]",
) -> tuple[list[list[Op]], dict[str, int]]:
    """Split one drained journal window into per-worker complement streams.

    This is the parent-side half of replication protocol v2 (see
    DESIGN.md, "Replication protocol v2").  ``entries`` come from
    :meth:`ChangeFeed.drain_tagged`; a ``(round token, producer bitmask)``
    origin on a ``+``/``-`` entry means every row in it was derived (and
    retained) by exactly the workers in the bitmask.  For worker ``w``:

    * untagged entries, and tagged entries whose mask excludes ``w``,
      ship as plain ops — the **complement**: rows some *other* worker
      produced, which ``w``'s replica cannot know;
    * the first tagged entry per ``(token, relation, op)`` whose mask
      includes ``w`` becomes a single in-stream marker
      (:data:`OP_SELF_INSERT` / :data:`OP_SELF_DELETE`) telling ``w`` to
      apply its retained rows for that round itself, minus the
      ``rejections`` the parent's trust filters or merge discarded;
      later same-key entries are dropped (the retained set covers them).

    Markers replace entries *in place*, so each stream preserves journal
    order; within one round token the tagged run is contiguous and
    single-kind, so pulling later entries' rows up to the first marker
    position commutes.  Workers outside every mask share one stream
    *object* (the full plain window), which the transport layer pickles
    once.  Returns ``(streams, counters)`` with per-worker op lists and
    ``rows_shipped`` / ``rows_retained`` / ``rows_rejected`` / ``markers``
    totals.
    """
    union_mask = 0
    for entry in entries:
        if entry[3] is not None:
            union_mask |= entry[3][1]
    plain = [(name, op, payload) for name, op, payload, _ in entries]
    plain_rows = sum(
        len(payload)
        for _, op, payload in plain
        if op == OP_INSERT or op == OP_DELETE
    )
    counters = {
        "rows_shipped": 0,
        "rows_retained": 0,
        "rows_rejected": 0,
        "markers": 0,
    }
    streams: list[list[Op]] = []
    for w in range(workers):
        if not (union_mask >> w) & 1:
            # This worker produced nothing in the window: its complement
            # is the whole window, shared (one pickle) across such workers.
            streams.append(plain)
            counters["rows_shipped"] += plain_rows
            continue
        stream: list[Op] = []
        seen: set[tuple[int, str, str]] = set()
        for name, op, payload, origin in entries:
            if origin is None or not (op == OP_INSERT or op == OP_DELETE):
                stream.append((name, op, payload))
                if op == OP_INSERT or op == OP_DELETE:
                    counters["rows_shipped"] += len(payload)
                continue
            token, mask = origin
            if not (mask >> w) & 1:
                stream.append((name, op, payload))
                counters["rows_shipped"] += len(payload)
                continue
            counters["rows_retained"] += len(payload)
            key = (token, name, op)
            if key in seen:
                continue
            seen.add(key)
            counters["markers"] += 1
            if op == OP_INSERT:
                rejected = rejections.get((token, name, w), ())
                counters["rows_rejected"] += len(rejected)
                stream.append((name, OP_SELF_INSERT, (token, rejected)))
            else:
                stream.append((name, OP_SELF_DELETE, (token,)))
        streams.append(stream)
    return streams, counters


def apply_ops(db: "Database", ops: Sequence[Op]) -> None:
    """Replay drained feed ops against a replica database, in order."""
    for name, op, payload in ops:
        if op == OP_INSERT:
            db[name].insert_many(payload)  # type: ignore[arg-type]
        elif op == OP_DELETE:
            db[name].delete_many(payload)  # type: ignore[arg-type]
        elif op == OP_CLEAR:
            db[name].clear()
        elif op == OP_CREATE:
            db.ensure(name, payload)  # type: ignore[arg-type]
        elif op == OP_DROP:
            db.drop(name)
        else:  # pragma: no cover - future-proofing
            raise ValueError(f"unknown replication op {op!r}")
