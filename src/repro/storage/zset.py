"""Weighted Z-set deltas: the unified change representation.

A **Z-set** maps rows to signed integer multiplicities (DBSP-style; cf.
``theSherwood/pydbsp``).  It is the one delta type every maintenance
path speaks: an insertion batch is a Z-set of weight ``+1`` rows, a
deletion or trust-revocation batch weight ``-1`` rows, and a mixed batch
simply carries both signs.  Because the stored relations are *sets*,
weights are normalized back to set semantics at stratum boundaries with
:meth:`ZSet.distinct` — a row is present iff its accumulated weight is
positive — which is what lets one incremental operator pass serve
inserts and retractions alike (see ``repro.core.weighted``).

The module also unifies the replication change feed with this delta
type: :func:`fold_ops` folds an ordered ``ChangeFeed`` op journal
(``repro.storage.replication``) into per-relation Z-sets, and
:func:`apply_zset` replays one against a live
:class:`~repro.storage.instance.Instance`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .instance import Instance, Row

__all__ = ["ZSet", "fold_ops", "apply_zset"]


class ZSet:
    """A finite map from rows to non-zero signed multiplicities.

    Mutating operations drop entries whose weight reaches zero, so the
    support (``len``/``iter``) is always exactly the rows with non-zero
    weight and ``bool(zset)`` is "does this delta change anything".
    """

    __slots__ = ("_weights",)

    def __init__(
        self, weights: Mapping["Row", int] | None = None
    ) -> None:
        self._weights: dict["Row", int] = {}
        if weights:
            for row, weight in weights.items():
                if weight:
                    self._weights[row] = weight

    @classmethod
    def from_rows(cls, rows: Iterable["Row"], weight: int = 1) -> "ZSet":
        """A Z-set with every row of ``rows`` at ``weight``."""
        zset = cls()
        if weight:
            add = zset.add
            for row in rows:
                add(row, weight)
        return zset

    # -- accumulation ------------------------------------------------------

    def add(self, row: "Row", weight: int = 1) -> int:
        """Accumulate ``weight`` onto ``row``; return the new weight."""
        total = self._weights.get(row, 0) + weight
        if total:
            self._weights[row] = total
        else:
            self._weights.pop(row, None)
        return total

    def merge(self, other: "ZSet") -> "ZSet":
        """In-place pointwise sum (the Z-set group operation)."""
        add = self.add
        for row, weight in other._weights.items():
            add(row, weight)
        return self

    def negate(self) -> "ZSet":
        """A new Z-set with every weight sign-flipped."""
        return ZSet({row: -w for row, w in self._weights.items()})

    # -- views -------------------------------------------------------------

    def weight(self, row: "Row") -> int:
        return self._weights.get(row, 0)

    def items(self) -> Iterator[tuple["Row", int]]:
        return iter(self._weights.items())

    def positive(self) -> list["Row"]:
        """Rows with positive weight (the insertion side)."""
        return [row for row, w in self._weights.items() if w > 0]

    def negative(self) -> list["Row"]:
        """Rows with negative weight (the retraction side)."""
        return [row for row, w in self._weights.items() if w < 0]

    def distinct(self) -> "ZSet":
        """Set-semantics normalization: positive weights clamp to ``+1``,
        the rest drop — the stratum-boundary step that keeps the stored
        relations honest sets regardless of how many derivations piled
        weight onto a row."""
        return ZSet({row: 1 for row, w in self._weights.items() if w > 0})

    # -- protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._weights)

    def __bool__(self) -> bool:
        return bool(self._weights)

    def __iter__(self) -> Iterator["Row"]:
        return iter(self._weights)

    def __contains__(self, row: object) -> bool:
        return row in self._weights

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ZSet):
            return self._weights == other._weights
        return NotImplemented

    def __repr__(self) -> str:
        positive = sum(1 for w in self._weights.values() if w > 0)
        return (
            f"<ZSet: {positive}+/{len(self._weights) - positive}- rows>"
        )

    def to_dict(self) -> dict["Row", int]:
        return dict(self._weights)


def fold_ops(ops: Iterable[tuple[str, str, object]]) -> dict[str, ZSet]:
    """Fold an ordered replication op journal into per-relation Z-sets.

    ``+``/``-`` ops accumulate ±1 per row, so an insert-then-delete of
    the same row within one window nets to nothing — the folded form is
    a diff, where the journal was a replay log.  Structural ops cannot
    be expressed as weights: ``create``/``drop`` are skipped (an empty
    relation has an empty delta), and ``clear`` raises — folding a clear
    needs the pre-clear contents, which the journal does not carry, so
    callers that may observe clears must snapshot-diff instead.
    """
    from .replication import OP_CLEAR, OP_DELETE, OP_INSERT

    deltas: dict[str, ZSet] = {}
    for name, op, payload in ops:
        if op == OP_INSERT or op == OP_DELETE:
            weight = 1 if op == OP_INSERT else -1
            zset = deltas.get(name)
            if zset is None:
                zset = deltas[name] = ZSet()
            for row in payload:  # type: ignore[attr-defined]
                zset.add(row, weight)
        elif op == OP_CLEAR:
            raise ValueError(
                f"cannot fold a {OP_CLEAR!r} op on {name!r} into a Z-set: "
                "the pre-clear contents are not in the journal"
            )
        # create/drop carry no rows: nothing to fold.
    return {name: zset for name, zset in deltas.items() if zset}


def apply_zset(instance: "Instance", delta: ZSet) -> tuple[int, int]:
    """Replay a Z-set against a live instance under set semantics.

    Positive-weight rows are inserted, negative-weight rows deleted;
    returns ``(inserted, deleted)`` *effective* counts.
    """
    inserted = instance.insert_many(delta.positive())
    deleted = instance.delete_many(delta.negative())
    return inserted, deleted
