"""Parsers for datalog rules and tgd schema mappings.

Two surface syntaxes are supported, matching the paper's notation:

* **Datalog rules** (Section 4.1.1) — ``B(i, n) :- G(i, c, n)``.  Heads may
  contain Skolem terms, written as function applications: ``U(n, f(n)) :-
  B(i, n)``.  Negated body atoms are written ``not R(x)``.

* **Tgds** (Section 2) — ``G(i, c, n) -> B(i, n)`` with optional existential
  quantification on the RHS: ``B(i, n) -> exists c . U(n, c)``.  Conjunction
  is a comma on either side; LHS atoms may be negated (tgds with safe
  negation, Section 3.1).

Lexical conventions: identifiers starting with a lowercase letter or ``_``
are variables; numbers and single/double-quoted strings are constants;
relation names may be any identifier.  Comments run from ``%`` or ``#`` to
end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .ast import (
    Atom,
    Constant,
    DatalogError,
    Program,
    Rule,
    SkolemFunction,
    SkolemTerm,
    Term,
    Variable,
)


class ParseError(DatalogError):
    """Raised on malformed rule or tgd text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>[%\#][^\n]*)
  | (?P<implies>->|:-)
  | (?P<lpar>\() | (?P<rpar>\))
  | (?P<comma>,) | (?P<period>\.)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at {pos}")
        kind = match.lastgroup
        assert kind is not None
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[_Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self._source!r}")
        self._index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.text!r} at {token.pos} "
                f"in {self._source!r}"
            )
        return token

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    def try_keyword(self, *words: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "ident" and token.text in words:
            self._index += 1
            return True
        return False


def _is_variable_name(name: str) -> bool:
    return name[0].islower() or name[0] == "_"


def _parse_term(stream: _TokenStream, allow_skolem: bool) -> Term:
    token = stream.next()
    if token.kind == "string":
        return Constant(_unquote(token.text))
    if token.kind == "number":
        text = token.text
        return Constant(float(text) if "." in text else int(text))
    if token.kind == "ident":
        following = stream.peek()
        if following is not None and following.kind == "lpar":
            if not allow_skolem:
                raise ParseError(
                    f"function term {token.text!r} at {token.pos} is only "
                    "allowed in rule heads"
                )
            stream.expect("lpar")
            args: list[Term] = []
            if stream.peek() is not None and stream.peek().kind != "rpar":  # type: ignore[union-attr]
                args.append(_parse_term(stream, allow_skolem))
                while stream.peek() is not None and stream.peek().kind == "comma":  # type: ignore[union-attr]
                    stream.expect("comma")
                    args.append(_parse_term(stream, allow_skolem))
            stream.expect("rpar")
            return SkolemTerm(SkolemFunction(token.text), tuple(args))
        if _is_variable_name(token.text):
            return Variable(token.text)
        return Constant(token.text)
    raise ParseError(f"unexpected token {token.text!r} at {token.pos}")


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


def _parse_atom(stream: _TokenStream, allow_skolem: bool) -> Atom:
    negated = stream.try_keyword("not", "NOT")
    name_token = stream.expect("ident")
    stream.expect("lpar")
    terms: list[Term] = []
    if stream.peek() is not None and stream.peek().kind != "rpar":  # type: ignore[union-attr]
        terms.append(_parse_term(stream, allow_skolem))
        while stream.peek() is not None and stream.peek().kind == "comma":  # type: ignore[union-attr]
            stream.expect("comma")
            terms.append(_parse_term(stream, allow_skolem))
    stream.expect("rpar")
    return Atom(name_token.text, tuple(terms), negated=negated)


def _parse_atom_list(stream: _TokenStream, allow_skolem: bool) -> list[Atom]:
    atoms = [_parse_atom(stream, allow_skolem)]
    while True:
        token = stream.peek()
        if token is not None and token.kind == "comma":
            stream.expect("comma")
            atoms.append(_parse_atom(stream, allow_skolem))
        elif stream.try_keyword("and", "AND"):
            atoms.append(_parse_atom(stream, allow_skolem))
        else:
            return atoms


def parse_rule(text: str, label: str | None = None) -> Rule:
    """Parse one datalog rule, e.g. ``"B(i, n) :- G(i, c, n)"``."""
    stream = _TokenStream(_tokenize(text), text)
    head = _parse_atom(stream, allow_skolem=True)
    if head.negated:
        raise ParseError(f"rule head may not be negated: {text!r}")
    body: list[Atom] = []
    if not stream.at_end() and stream.peek().kind == "implies":  # type: ignore[union-attr]
        token = stream.next()
        if token.text != ":-":
            raise ParseError(f"expected ':-' in rule, found {token.text!r}")
        body = _parse_atom_list(stream, allow_skolem=False)
    if not stream.at_end() and stream.peek().kind == "period":  # type: ignore[union-attr]
        stream.expect("period")
    if not stream.at_end():
        extra = stream.next()
        raise ParseError(f"trailing input {extra.text!r} in rule {text!r}")
    rule = Rule(head, tuple(body), label=label)
    rule.check_safety()
    return rule


def parse_program(text: str, name: str | None = None) -> Program:
    """Parse a newline- or period-separated sequence of rules.

    Rules may span lines; each rule is terminated by a period or by a line
    whose continuation does not parse as part of it.  For simplicity the
    grammar here requires one rule per line unless periods are used.
    """
    rules: list[Rule] = []
    buffer: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("%", 1)[0].split("#", 1)[0].strip()
        if not line:
            continue
        buffer.append(line)
        joined = " ".join(buffer)
        # Accumulate while the rule is visibly unfinished: unbalanced
        # parentheses, or a trailing conjunction/implication.
        if joined.count("(") != joined.count(")"):
            continue
        if joined.rstrip().endswith((",", ":-")):
            continue
        rules.append(parse_rule(joined))
        buffer = []
    if buffer:
        rules.append(parse_rule(" ".join(buffer)))
    return Program(tuple(rules), name=name)


@dataclass(frozen=True)
class ParsedTgd:
    """The raw pieces of a parsed tgd, before schema validation."""

    lhs: tuple[Atom, ...]
    rhs: tuple[Atom, ...]
    existential_vars: frozenset[Variable]


def parse_tgd(text: str) -> ParsedTgd:
    """Parse a tgd like ``"B(i, c), U(n, c) -> B(i, n)"`` or
    ``"B(i, n) -> exists c . U(n, c)"``.
    """
    stream = _TokenStream(_tokenize(text), text)
    lhs = _parse_atom_list(stream, allow_skolem=False)
    token = stream.next()
    if token.kind != "implies" or token.text != "->":
        raise ParseError(f"expected '->' in tgd, found {token.text!r}")
    existentials: set[Variable] = set()
    if stream.try_keyword("exists", "EXISTS"):
        while True:
            var_token = stream.expect("ident")
            if not _is_variable_name(var_token.text):
                raise ParseError(
                    f"existential {var_token.text!r} must be a variable name"
                )
            existentials.add(Variable(var_token.text))
            if stream.peek() is not None and stream.peek().kind == "comma":  # type: ignore[union-attr]
                stream.expect("comma")
                continue
            break
        token = stream.next()
        if token.kind != "period":
            raise ParseError(
                f"expected '.' after existential variables, found {token.text!r}"
            )
    rhs = _parse_atom_list(stream, allow_skolem=False)
    if not stream.at_end() and stream.peek().kind == "period":  # type: ignore[union-attr]
        stream.expect("period")
    if not stream.at_end():
        extra = stream.next()
        raise ParseError(f"trailing input {extra.text!r} in tgd {text!r}")
    for atom in rhs:
        if atom.negated:
            raise ParseError(f"negated RHS atom in tgd: {text!r}")
    lhs_vars: set[Variable] = set()
    for atom in lhs:
        lhs_vars |= atom.variable_set()
    # Any RHS variable not on the LHS is implicitly existential.
    for atom in rhs:
        for var in atom.variable_set():
            if var not in lhs_vars:
                existentials.add(var)
    for var in existentials:
        if var in lhs_vars:
            raise ParseError(
                f"existential variable {var!r} also occurs on the LHS: {text!r}"
            )
    return ParsedTgd(tuple(lhs), tuple(rhs), frozenset(existentials))
