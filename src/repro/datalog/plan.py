"""Physical plans for rule bodies: compiled bind-join pipelines.

A rule body is executed as a left-deep pipeline of *bind joins*: atoms are
visited in a planner-chosen order; for each partial substitution the executor
probes the next atom's relation on its already-bound columns (using the
storage layer's hash indexes) and extends the substitution with each matching
row.  Negated atoms become anti-join filters and are scheduled only once all
their variables are bound.

Because the atom order is fixed per plan, *which* columns each atom probes
and *which* positions bind new variables is static — so a :class:`RulePlan`
is compiled once (:func:`compile_plan`) into per-atom templates:

* a **probe template**: the probe column indices plus a value getter that
  reads the probe key straight out of the current environment;
* **extension ops** for the remaining positions (bind a new variable, check
  a repeated variable, or destructure a Skolem pattern);
* prebuilt row constructors for negated atoms and the head.

Substitutions are streamed through the pipeline as compact tuples
("environments") indexed by variable slot, not dicts — extending a
substitution is a tuple concatenation instead of a dict copy.  The
(row, substitution) pairs yielded by :func:`execute_plan` expose the
environment through a lazy read-only mapping for API compatibility.

This is the executor shared by both of the paper's backends; they differ
only in *how the atom order is chosen* (see :mod:`repro.datalog.planner`) —
mirroring Section 5, where the same datalog is run either through an RDBMS
optimizer or through Tukwila's fixed heuristic plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter
from typing import (
    Callable,
    Collection,
    Iterator,
    Mapping,
    Protocol,
    Sequence,
)

from .ast import (
    Atom,
    Constant,
    DatalogError,
    Rule,
    SkolemTerm,
    SkolemValue,
    Variable,
)

Row = tuple[object, ...]

Env = tuple[object, ...]
"""A compact substitution: values indexed by the plan's variable slots."""


class RowSource(Protocol):
    """What the executor needs from a relation: scan + indexed lookup.

    ``lookup`` may return a live, read-only view of an internal bucket
    (see :meth:`repro.storage.instance.Instance.lookup`); the executor
    never mutates sources mid-iteration, so no defensive copy is taken.

    Sources may additionally expose ``prepare_probe(columns)`` (see
    :meth:`repro.storage.instance.Instance.prepare_probe`): the executor
    calls it once per probe step so deferred-maintenance indexes apply
    their pending runs in one batched pass *before* the environment loop,
    instead of on the first ``lookup`` inside it.  ``lookup`` itself stays
    snapshot-consistent either way.
    """

    def __iter__(self) -> Iterator[Row]: ...

    def __contains__(self, row: Sequence[object]) -> bool: ...

    def __len__(self) -> int: ...

    def lookup(
        self, columns: Sequence[int], values: Sequence[object]
    ) -> Collection[Row]: ...


SourceResolver = Callable[[int, Atom], RowSource]
"""Maps (body atom index, atom) to the source it reads this round.

Semi-naive evaluation points one atom occurrence at a delta source and the
rest at the full instances.
"""


@dataclass(frozen=True)
class RulePlan:
    """An execution order for one rule's body atoms.

    ``order`` is a permutation of body-atom indices.  The plan is valid iff
    every negated atom appears after all its variables are bound by earlier
    positive atoms; :func:`check_plan` verifies this.

    ``params`` are *parameter variables*: variables treated as bound before
    the first atom runs.  They occupy the leading environment slots, and
    executing the plan supplies their values as the initial environment —
    this is what lets a prepared query re-bind parameters without
    recompiling (the constant slots stay in the compiled probe templates,
    only the initial environment changes).
    """

    rule: Rule
    order: tuple[int, ...]
    params: tuple[Variable, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))
        if len(set(self.params)) != len(self.params):
            raise PlanError(f"duplicate parameter variables: {self.params!r}")
        check_plan(self.rule, self.order, self.params)

    def __reduce__(self):
        # Plans are shipped to worker processes by the parallel evaluation
        # subsystem (registered by id, sent once).  Reduce to the plain
        # constructor arguments so the compiled-template cache — closures
        # stashed on the instance by compile_plan — never crosses the wire;
        # each process compiles its own copy on first execution.
        return (RulePlan, (self.rule, self.order, self.params))


class PlanError(DatalogError):
    """An invalid physical plan was constructed."""


def check_plan(
    rule: Rule,
    order: Sequence[int],
    params: Sequence[Variable] = (),
) -> None:
    if sorted(order) != list(range(len(rule.body))):
        raise PlanError(
            f"order {order!r} is not a permutation of body atoms of {rule!r}"
        )
    bound: set[Variable] = set(params)
    for index in order:
        atom = rule.body[index]
        if atom.negated:
            unbound = atom.variable_set() - bound
            if unbound:
                raise PlanError(
                    f"negated atom {atom!r} scheduled before variables "
                    f"{unbound!r} are bound in {rule!r}"
                )
        else:
            bound |= atom.variable_set()


# ---------------------------------------------------------------------------
# Probe derivation — the single code path shared by the plan compiler, the
# cost-based planner's fan-out estimates, and EXPLAIN rendering.
# ---------------------------------------------------------------------------


def probe_columns(atom: Atom, bound: Collection[Variable]) -> tuple[int, ...]:
    """Positions of ``atom`` probeable given the ``bound`` variable set:
    constants, already-bound variables, and fully bound Skolem patterns
    (which probe as their :class:`SkolemValue`).  Repeated variables are
    handled by the extension ops during row matching, so every bound
    occurrence can participate in the probe key.
    """
    columns: list[int] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            columns.append(position)
        elif isinstance(term, Variable):
            if term in bound:
                columns.append(position)
        elif _skolem_fully_bound(term, bound):
            columns.append(position)
    return tuple(columns)


def _skolem_fully_bound(
    term: SkolemTerm, bound: Collection[Variable]
) -> bool:
    return all(
        isinstance(arg, Constant)
        or (isinstance(arg, Variable) and arg in bound)
        or (isinstance(arg, SkolemTerm) and _skolem_fully_bound(arg, bound))
        for arg in term.args
    )


# ---------------------------------------------------------------------------
# Plan compilation
# ---------------------------------------------------------------------------

# Extension op kinds (positions the probe did not pin down):
_OP_BIND = 0  # (kind, position)            -> bind a new slot to row[position]
_OP_EQ_NEW = 1  # (kind, position, offset)  -> row[position] == value bound
#                                              earlier in this same atom
_OP_EQ_OLD = 2  # (kind, position, slot)    -> row[position] == env[slot]
_OP_CONST = 3  # (kind, position, value)    -> row[position] == value
_OP_PATTERN = 4  # (kind, position, pattern) -> Skolem destructuring match

# Pattern op kinds (Skolem destructuring, mirrors ast._match_term):
_P_BIND = 0  # (kind,)                -> bind a new slot to the value
_P_EQ_NEW = 1  # (kind, offset)       -> value == value bound in this atom
_P_EQ_OLD = 2  # (kind, slot)         -> value == env[slot]
_P_CONST = 3  # (kind, constant)      -> value == constant
_P_SKOLEM = 4  # (kind, name, args)   -> value is SkolemValue(name, ...);
#                                        match args recursively


def _value_getter(
    term: object, slot_of: Mapping[Variable, int]
) -> Callable[[Env], object]:
    """A closure computing ``term``'s ground value from an environment."""
    if isinstance(term, Constant):
        value = term.value
        return lambda env: value
    if isinstance(term, Variable):
        slot = slot_of[term]
        return lambda env: env[slot]
    if isinstance(term, SkolemTerm):
        name = term.function.name
        getters = tuple(_value_getter(arg, slot_of) for arg in term.args)
        return lambda env: SkolemValue(
            name, tuple(getter(env) for getter in getters)
        )
    raise PlanError(f"cannot compile term {term!r}")


def _tuple_getter(
    terms: Sequence[object], slot_of: Mapping[Variable, int]
) -> Callable[[Env], Row]:
    """A closure computing a tuple of ground term values from an environment.

    All-variable term lists — the overwhelmingly common case for probes and
    heads — compile to a C-level :func:`operator.itemgetter`.
    """
    if all(isinstance(term, Variable) for term in terms):
        slots = tuple(slot_of[term] for term in terms)
        if len(slots) == 1:
            slot = slots[0]
            return lambda env: (env[slot],)
        if slots:
            return itemgetter(*slots)
        return lambda env: ()
    getters = tuple(_value_getter(term, slot_of) for term in terms)
    return lambda env: tuple(getter(env) for getter in getters)


def _row_builder(
    atom: Atom, slot_of: Mapping[Variable, int]
) -> Callable[[Env], Row]:
    return _tuple_getter(atom.terms, slot_of)


def _compile_pattern(
    term: object, slot_of: dict[Variable, int], width: int
) -> tuple:
    if isinstance(term, Constant):
        return (_P_CONST, term.value)
    if isinstance(term, Variable):
        slot = slot_of.get(term)
        if slot is None:
            slot_of[term] = len(slot_of)
            return (_P_BIND,)
        if slot < width:
            return (_P_EQ_OLD, slot)
        return (_P_EQ_NEW, slot - width)
    if isinstance(term, SkolemTerm):
        return (
            _P_SKOLEM,
            term.function.name,
            tuple(
                _compile_pattern(arg, slot_of, width) for arg in term.args
            ),
        )
    raise PlanError(f"cannot compile pattern {term!r}")


class _Step:
    """One compiled pipeline step (a positive bind-join or an anti-join)."""

    __slots__ = (
        "index",
        "atom",
        "negated",
        "probe_cols",
        "probe_getter",
        "ops",
        "bind_positions",
        "binds_whole_row",
        "row_builder",
    )

    def __init__(self, index: int, atom: Atom) -> None:
        self.index = index
        self.atom = atom
        self.negated = atom.negated
        self.probe_cols: tuple[int, ...] = ()
        self.probe_getter: Callable[[Env], Row] | None = None
        self.ops: tuple[tuple, ...] = ()
        # Fast path: all extension ops bind fresh, distinct variables.
        self.bind_positions: tuple[int, ...] | None = None
        # Fastest path: those binds cover every column in order, so the
        # source row extends the environment verbatim (zero-copy).
        self.binds_whole_row = False
        self.row_builder: Callable[[Env], Row] | None = None


class CompiledPlan:
    """A :class:`RulePlan` with per-atom probe/extension templates."""

    __slots__ = ("plan", "steps", "head_builder", "slot_of", "slot_vars")

    def __init__(self, plan: RulePlan) -> None:
        rule = plan.rule
        self.plan = plan
        # Parameter variables occupy the leading slots, in declaration
        # order; the initial environment at execution time is the tuple of
        # their bound values (empty for parameterless plans).
        slot_of: dict[Variable, int] = {
            var: slot for slot, var in enumerate(plan.params)
        }
        steps: list[_Step] = []
        for index in plan.order:
            atom = rule.body[index]
            step = _Step(index, atom)
            if atom.negated:
                step.row_builder = _row_builder(atom, slot_of)
                steps.append(step)
                continue
            width = len(slot_of)
            step.probe_cols = probe_columns(atom, slot_of)
            if step.probe_cols:
                step.probe_getter = _tuple_getter(
                    tuple(atom.terms[col] for col in step.probe_cols),
                    slot_of,
                )
            probed = set(step.probe_cols)
            ops: list[tuple] = []
            for position, term in enumerate(atom.terms):
                if position in probed:
                    continue  # the indexed lookup guarantees equality
                if isinstance(term, Variable):
                    slot = slot_of.get(term)
                    if slot is None:
                        slot_of[term] = len(slot_of)
                        ops.append((_OP_BIND, position))
                    elif slot < width:
                        ops.append((_OP_EQ_OLD, position, slot))
                    else:
                        ops.append((_OP_EQ_NEW, position, slot - width))
                elif isinstance(term, Constant):
                    ops.append((_OP_CONST, position, term.value))
                else:
                    ops.append(
                        (
                            _OP_PATTERN,
                            position,
                            _compile_pattern(term, slot_of, width),
                        )
                    )
            step.ops = tuple(ops)
            if all(op[0] == _OP_BIND for op in ops):
                step.bind_positions = tuple(op[1] for op in ops)
                step.binds_whole_row = step.bind_positions == tuple(
                    range(atom.arity)
                )
            steps.append(step)
        self.steps = tuple(steps)
        self.head_builder = _row_builder(rule.head, slot_of)
        self.slot_of = slot_of
        self.slot_vars = tuple(
            var for var, _ in sorted(slot_of.items(), key=lambda kv: kv[1])
        )


def compile_plan(plan: RulePlan) -> CompiledPlan:
    """Compile ``plan`` (cached on the plan object)."""
    compiled = getattr(plan, "_compiled", None)
    if compiled is None:
        compiled = CompiledPlan(plan)
        object.__setattr__(plan, "_compiled", compiled)
    return compiled


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _match_pattern(
    pattern: tuple, value: object, env: Env, new: list[object]
) -> bool:
    kind = pattern[0]
    if kind == _P_BIND:
        new.append(value)
        return True
    if kind == _P_EQ_NEW:
        return new[pattern[1]] == value
    if kind == _P_EQ_OLD:
        return env[pattern[1]] == value
    if kind == _P_CONST:
        return pattern[1] == value
    # _P_SKOLEM
    if (
        not isinstance(value, SkolemValue)
        or value.function_name != pattern[1]
        or len(value.args) != len(pattern[2])
    ):
        return False
    return all(
        _match_pattern(sub, arg, env, new)
        for sub, arg in zip(pattern[2], value.args)
    )


def _extend(env: Env, row: Row, ops: tuple[tuple, ...]) -> Env | None:
    new: list[object] = []
    for op in ops:
        kind = op[0]
        if kind == _OP_BIND:
            new.append(row[op[1]])
        elif kind == _OP_EQ_NEW:
            if new[op[2]] != row[op[1]]:
                return None
        elif kind == _OP_EQ_OLD:
            if env[op[2]] != row[op[1]]:
                return None
        elif kind == _OP_CONST:
            if op[2] != row[op[1]]:
                return None
        else:  # _OP_PATTERN
            if not _match_pattern(op[2], row[op[1]], env, new):
                return None
    return env + tuple(new)


class PlanSubstitution(Mapping):
    """Read-only variable->value view over a compact environment tuple."""

    __slots__ = ("_slot_of", "_env")

    def __init__(self, slot_of: Mapping[Variable, int], env: Env) -> None:
        self._slot_of = slot_of
        self._env = env

    def __getitem__(self, var: Variable) -> object:
        return self._env[self._slot_of[var]]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._slot_of)

    def __len__(self) -> int:
        return len(self._slot_of)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{var!r}: {value!r}" for var, value in self.items()
        )
        return f"{{{inner}}}"


def _extend_all(
    envs: list[Env], rows: Collection[Row], step: _Step
) -> list[Env]:
    """Cross ``envs`` with ``rows`` through the step's extension template.

    Used on the full-scan path, where every environment sees the same rows.
    """
    binds = step.bind_positions
    if binds is not None:
        if step.binds_whole_row:
            if envs == [()]:
                return list(rows)
            return [env + row for env in envs for row in rows]
        extensions = [tuple(row[p] for p in binds) for row in rows]
        return [env + extension for env in envs for extension in extensions]
    next_envs: list[Env] = []
    ops = step.ops
    for env in envs:
        for row in rows:
            extended = _extend(env, row, ops)
            if extended is not None:
                next_envs.append(extended)
    return next_envs


def _run_pipeline(
    compiled: CompiledPlan, resolve: SourceResolver, init_env: Env = ()
) -> list[Env]:
    """Push environments through every compiled step; the pipeline core.

    ``init_env`` pre-binds the plan's parameter slots (see
    :attr:`RulePlan.params`)."""
    envs: list[Env] = [init_env]
    for step in compiled.steps:
        source = resolve(step.index, step.atom)
        if step.negated:
            build = step.row_builder
            envs = [env for env in envs if build(env) not in source]
        elif step.probe_cols:
            cols = step.probe_cols
            probe = step.probe_getter
            # Deferred-maintenance sources catch their probe index up in
            # one batched pass before the loop (snapshot consistency is
            # guaranteed by lookup either way; this hoists the sync).
            prepare = getattr(source, "prepare_probe", None)
            if prepare is not None:
                prepare(cols)
            lookup = source.lookup
            next_envs: list[Env] = []
            binds = step.bind_positions
            if binds is not None:
                # (binds never covers the whole row here: probed columns
                # are excluded from the bind template by construction.)
                for env in envs:
                    for row in lookup(cols, probe(env)):
                        next_envs.append(
                            env + tuple(row[p] for p in binds)
                        )
            else:
                ops = step.ops
                for env in envs:
                    for row in lookup(cols, probe(env)):
                        extended = _extend(env, row, ops)
                        if extended is not None:
                            next_envs.append(extended)
            envs = next_envs
        else:
            # Snapshot the scan: sources may expose live views.
            envs = _extend_all(envs, tuple(source), step)
        if not envs:
            break
    return envs


def _init_env(plan: RulePlan, params: Sequence[object]) -> Env:
    """Validate and shape parameter values into the initial environment."""
    if len(params) != len(plan.params):
        raise PlanError(
            f"plan expects {len(plan.params)} parameter values "
            f"({', '.join(v.name for v in plan.params) or 'none'}), "
            f"got {len(params)}"
        )
    return tuple(params)


def run_plan(
    plan: RulePlan,
    resolve: SourceResolver,
    row_filter: Callable[[Row], bool] | None = None,
    params: Sequence[object] = (),
) -> list[Row]:
    """Run a rule plan to a materialized list of head rows.

    The engine's hot path: no generator machinery and no substitution
    objects are created.  ``row_filter`` (if given) drops head rows before
    they are collected — this is where trust conditions are applied during
    update exchange (Section 4.2).  ``params`` supplies one value per
    :attr:`RulePlan.params` variable, in order.
    """
    compiled = compile_plan(plan)
    envs = _run_pipeline(compiled, resolve, _init_env(plan, params))
    head_builder = compiled.head_builder
    if row_filter is None:
        return [head_builder(env) for env in envs]
    return [
        row for row in map(head_builder, envs) if row_filter(row)
    ]


def execute_plan(
    plan: RulePlan,
    resolve: SourceResolver,
    head_filter: Callable[[Row, Mapping[Variable, object]], bool] | None = None,
    params: Sequence[object] = (),
) -> Iterator[tuple[Row, Mapping[Variable, object]]]:
    """Run a rule plan, yielding (head row, substitution) pairs.

    ``head_filter`` (if given) drops derivations before they are yielded.
    The substitution is a lazy read-only mapping over the plan's compact
    environment; it stays valid after the generator advances.  ``params``
    supplies one value per :attr:`RulePlan.params` variable, in order.
    Callers that only need the head rows should prefer :func:`run_plan`.
    """
    compiled = compile_plan(plan)
    head_builder = compiled.head_builder
    slot_of = compiled.slot_of
    for env in _run_pipeline(compiled, resolve, _init_env(plan, params)):
        head_row = head_builder(env)
        subst = PlanSubstitution(slot_of, env)
        if head_filter is None or head_filter(head_row, subst):
            yield head_row, subst
