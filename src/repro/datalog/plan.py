"""Physical plans for rule bodies: bind-join pipelines.

A rule body is executed as a left-deep pipeline of *bind joins*: atoms are
visited in a planner-chosen order; for each partial substitution the executor
probes the next atom's relation on its already-bound columns (using the
storage layer's hash indexes) and extends the substitution with each matching
row.  Negated atoms become anti-join filters and are scheduled only once all
their variables are bound.

This is the executor shared by both of the paper's backends; they differ
only in *how the atom order is chosen* (see :mod:`repro.datalog.planner`) —
mirroring Section 5, where the same datalog is run either through an RDBMS
optimizer or through Tukwila's fixed heuristic plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Protocol, Sequence

from .ast import (
    Atom,
    Constant,
    DatalogError,
    Rule,
    SkolemTerm,
    Variable,
    instantiate_atom,
    match_atom,
)

Row = tuple[object, ...]


class RowSource(Protocol):
    """What the executor needs from a relation: scan + indexed lookup."""

    def __iter__(self) -> Iterator[Row]: ...

    def __contains__(self, row: Sequence[object]) -> bool: ...

    def __len__(self) -> int: ...

    def lookup(
        self, columns: Sequence[int], values: Sequence[object]
    ) -> frozenset[Row]: ...


SourceResolver = Callable[[int, Atom], RowSource]
"""Maps (body atom index, atom) to the source it reads this round.

Semi-naive evaluation points one atom occurrence at a delta source and the
rest at the full instances.
"""


@dataclass(frozen=True)
class RulePlan:
    """An execution order for one rule's body atoms.

    ``order`` is a permutation of body-atom indices.  The plan is valid iff
    every negated atom appears after all its variables are bound by earlier
    positive atoms; :func:`check_plan` verifies this.
    """

    rule: Rule
    order: tuple[int, ...]

    def __post_init__(self) -> None:
        check_plan(self.rule, self.order)


class PlanError(DatalogError):
    """An invalid physical plan was constructed."""


def check_plan(rule: Rule, order: Sequence[int]) -> None:
    if sorted(order) != list(range(len(rule.body))):
        raise PlanError(
            f"order {order!r} is not a permutation of body atoms of {rule!r}"
        )
    bound: set[Variable] = set()
    for index in order:
        atom = rule.body[index]
        if atom.negated:
            unbound = atom.variable_set() - bound
            if unbound:
                raise PlanError(
                    f"negated atom {atom!r} scheduled before variables "
                    f"{unbound!r} are bound in {rule!r}"
                )
        else:
            bound |= atom.variable_set()


def bound_columns(
    atom: Atom, bound: set[Variable]
) -> tuple[tuple[int, ...], tuple[object, ...] | None]:
    """Columns of ``atom`` probeable given the ``bound`` variable set.

    Returns (columns, constants) where ``constants`` is the tuple of constant
    values for constant columns, or None when values depend on the current
    substitution.  Repeated variables are handled by ``match_atom`` during
    row matching, so only the first occurrence matters for probing.
    """
    cols: list[int] = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            cols.append(position)
        elif isinstance(term, Variable) and term in bound:
            cols.append(position)
    return tuple(cols), None


def execute_plan(
    plan: RulePlan,
    resolve: SourceResolver,
    head_filter: Callable[[Row, Mapping[Variable, object]], bool] | None = None,
) -> Iterator[tuple[Row, dict[Variable, object]]]:
    """Run a rule plan, yielding (head row, substitution) pairs.

    ``head_filter`` (if given) drops derivations before they are yielded —
    this is where trust conditions are applied during update exchange
    (Section 4.2: "we simply apply the associated trust conditions to ensure
    that we only derive new trusted tuples").
    """
    rule = plan.rule
    substitutions: list[dict[Variable, object]] = [{}]
    for index in plan.order:
        atom = rule.body[index]
        source = resolve(index, atom)
        if atom.negated:
            substitutions = [
                subst
                for subst in substitutions
                if instantiate_atom(atom, subst) not in source
            ]
            continue
        next_substitutions: list[dict[Variable, object]] = []
        for subst in substitutions:
            probe_cols: list[int] = []
            probe_vals: list[object] = []
            for position, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    probe_cols.append(position)
                    probe_vals.append(term.value)
                elif isinstance(term, Variable) and term in subst:
                    probe_cols.append(position)
                    probe_vals.append(subst[term])
                elif isinstance(term, SkolemTerm) and all(
                    isinstance(a, Constant)
                    or (isinstance(a, Variable) and a in subst)
                    for a in term.args
                ):
                    # A fully bound Skolem pattern probes as its value.
                    probe_cols.append(position)
                    probe_vals.append(
                        instantiate_atom(Atom("_", (term,)), subst)[0]
                    )
            if probe_cols:
                candidates: Sequence[Row] | frozenset[Row] = source.lookup(
                    probe_cols, probe_vals
                )
            else:
                candidates = tuple(source)
            for row in candidates:
                extended = match_atom(atom, row, subst)
                if extended is not None:
                    next_substitutions.append(extended)
        substitutions = next_substitutions
        if not substitutions:
            return
    for subst in substitutions:
        head_row = instantiate_atom(rule.head, subst)
        if head_filter is None or head_filter(head_row, subst):
            yield head_row, subst
