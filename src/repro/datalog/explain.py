"""EXPLAIN facilities: render plans and programs for inspection.

The paper's Section 5.1 experience — "the query optimizer occasionally
chose poor plans in executing the rules" and required "extensive tuning" —
is exactly the situation where an operator needs to *see* the plan.  This
module renders rule plans as bind-join pipelines (with the probe columns
each step will use) and whole programs with their stratification, both as
plain text.
"""

from __future__ import annotations

from ..storage.database import Database
from .ast import Program, Rule, SkolemTerm, Variable
from .plan import RulePlan, probe_columns
from .planner import Planner, PreparedPlanner
from .stratify import stratify


def explain_plan(plan: RulePlan, db: Database | None = None) -> str:
    """Render one rule plan as a numbered bind-join pipeline.

    Each step shows the atom, whether it is a scan / indexed probe /
    anti-join, which columns are bound when it runs, and (when a database is
    supplied) the current cardinality of the relation it reads.
    """
    rule = plan.rule
    lines = [f"plan for {rule!r}"]
    if plan.params:
        names = ", ".join(v.name for v in plan.params)
        lines.append(f"  parameters (bound at execute): {names}")
    # Parameter variables occupy pre-bound environment slots, so they are
    # probeable from the first step on — mirror the compiler's view.
    bound: set[Variable] = set(plan.params)
    for step, index in enumerate(plan.order, start=1):
        atom = rule.body[index]
        # Shares the executor's probe-derivation code path, so EXPLAIN
        # output shows exactly the columns the compiled plan will probe.
        probe_cols = probe_columns(atom, bound)
        if atom.negated:
            kind = "anti-join"
        elif probe_cols:
            kind = f"index probe on columns {list(probe_cols)}"
        else:
            kind = "full scan"
        size = ""
        if db is not None and atom.predicate in db:
            size = f" [{len(db[atom.predicate])} rows]"
        lines.append(f"  {step}. {atom!r}: {kind}{size}")
        if not atom.negated:
            bound |= atom.variable_set()
    head_skolems = [
        term for term in rule.head.terms if isinstance(term, SkolemTerm)
    ]
    if head_skolems:
        names = ", ".join(t.function.name for t in head_skolems)
        lines.append(f"  => emit {rule.head!r} (labeled nulls via {names})")
    else:
        lines.append(f"  => emit {rule.head!r}")
    return "\n".join(lines)


def explain_program(
    program: Program,
    db: Database | None = None,
    planner: Planner | None = None,
) -> str:
    """Render a whole program: strata, rules, and each rule's plan."""
    planner = planner or PreparedPlanner()
    scratch = db if db is not None else Database()
    stratification = stratify(program)
    lines = [
        f"program {program.name or '(anonymous)'}: "
        f"{len(program)} rules, {len(stratification)} strata"
    ]
    for number, stratum in enumerate(stratification.strata):
        lines.append(f"stratum {number}:")
        for rule in stratum:
            plan = planner.plan(rule, scratch, None)
            plan_text = explain_plan(plan, db)
            lines.extend("  " + line for line in plan_text.splitlines())
    return "\n".join(lines)


def explain_rule(
    rule: Rule, db: Database | None = None, planner: Planner | None = None
) -> str:
    """Plan and explain one rule against a database."""
    planner = planner or PreparedPlanner()
    scratch = db if db is not None else Database()
    return explain_plan(planner.plan(rule, scratch, None), db)
