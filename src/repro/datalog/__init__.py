"""Datalog with Skolem functions: AST, parser, planners, and engines.

The query layer of DESIGN.md's stack — the language and evaluation
machinery that update exchange compiles schema mappings into (paper
Sections 4.1.1 and 5).
"""

from .ast import (
    Atom,
    Constant,
    DatalogError,
    Program,
    Rule,
    SafetyError,
    SkolemFunction,
    SkolemTerm,
    SkolemValue,
    Variable,
    is_labeled_null,
    make_atom,
    tuple_has_labeled_null,
)
from .engine import (
    EvaluationResult,
    IncrementalUnsoundError,
    NaiveEngine,
    SemiNaiveEngine,
    ensure_idb_relations,
)
from .parser import ParseError, ParsedTgd, parse_program, parse_rule, parse_tgd
from .plan import (
    CompiledPlan,
    PlanError,
    RulePlan,
    compile_plan,
    execute_plan,
    probe_columns,
    run_plan,
)
from .planner import CostBasedPlanner, Planner, PreparedPlanner
from .stratify import Stratification, StratificationError, stratify

__all__ = [
    "Atom",
    "CompiledPlan",
    "Constant",
    "CostBasedPlanner",
    "DatalogError",
    "EvaluationResult",
    "IncrementalUnsoundError",
    "NaiveEngine",
    "ParseError",
    "ParsedTgd",
    "PlanError",
    "Planner",
    "PreparedPlanner",
    "Program",
    "Rule",
    "RulePlan",
    "SafetyError",
    "SemiNaiveEngine",
    "SkolemFunction",
    "SkolemTerm",
    "SkolemValue",
    "Stratification",
    "StratificationError",
    "Variable",
    "compile_plan",
    "ensure_idb_relations",
    "execute_plan",
    "is_labeled_null",
    "make_atom",
    "parse_program",
    "parse_rule",
    "parse_tgd",
    "probe_columns",
    "run_plan",
    "stratify",
    "tuple_has_labeled_null",
]
