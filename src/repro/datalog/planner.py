"""Join-order planners: the two backends of Section 5.

* :class:`CostBasedPlanner` — stands in for the **DB2 / SQL backend**
  (Section 5.1).  Every evaluation round it consults fresh table statistics
  and greedily orders body atoms by estimated bind-join fan-out, exactly the
  behaviour of an RDBMS optimizer re-planning each generated SQL statement.
  The recurring statistics scans model the round-trip/optimization overhead
  the paper observed; the payoff is better orders on large/bulk loads.

* :class:`PreparedPlanner` — stands in for the **Tukwila backend**
  (Section 5.2).  Each (rule, delta-position) pair is compiled *once* into a
  fixed plan using a static heuristic — the delta occurrence first ("updates
  are assumed to be small compared to the size of the database"), then
  connected atoms by arity — and cached as a prepared statement, giving "no
  round-trips" and consistent performance on small update loads.

Both planners always schedule the delta atom (if any) first: semi-naive
evaluation requires each derivation to use at least one delta tuple, and
starting from the delta makes the remaining probes index-driven.
"""

from __future__ import annotations

from typing import Protocol

from ..storage.database import Database
from .ast import Rule, Variable
from .plan import RulePlan, probe_columns


class Planner(Protocol):
    """Chooses a body-atom order for a rule evaluation round."""

    def plan(
        self,
        rule: Rule,
        db: Database,
        delta_index: int | None,
        params: tuple[Variable, ...] = (),
    ) -> RulePlan:
        """Plan ``rule``, optionally pinning one body atom to a delta.

        ``params`` are parameter variables (prepared-query constant slots):
        bound before the first atom runs, so they count as probeable when
        ordering atoms and the resulting :class:`RulePlan` carries them.
        """
        ...

    def invalidate(self) -> None:
        """Forget cached plans (after schema changes)."""

    def plan_cache_token(self, db: Database) -> object:
        """A value that must be unchanged for a memoized plan to be reused.

        The engine memoizes ``plan(...)`` per (rule, delta occurrence) and
        compares this token on every hit: planners whose plans are
        data-independent return a constant (bumped by :meth:`invalidate`),
        statistics-driven planners return ``db.version`` so any data change
        forces a re-plan."""
        ...


def _schedulable_negations(
    rule: Rule, remaining: set[int], bound: set[Variable]
) -> list[int]:
    """Negated atoms in ``remaining`` whose variables are all bound."""
    ready = []
    for index in sorted(remaining):
        atom = rule.body[index]
        if atom.negated and atom.variable_set() <= bound:
            ready.append(index)
    return ready


def _finish_order(
    rule: Rule,
    order: list[int],
    remaining: set[int],
    bound: set[Variable],
    choose: "callable[[set[int], set[Variable]], int]",
) -> tuple[int, ...]:
    """Complete an order by alternating negation-filters and chosen atoms."""
    while remaining:
        for index in _schedulable_negations(rule, remaining, bound):
            order.append(index)
            remaining.discard(index)
        if not remaining:
            break
        positive = {
            i for i in remaining if not rule.body[i].negated
        }
        if not positive:
            # Only negations left but some are unbound — rule is unsafe;
            # Rule.check_safety would have caught this earlier.
            raise AssertionError(f"unschedulable negations in {rule!r}")
        index = choose(positive, bound)
        order.append(index)
        remaining.discard(index)
        bound |= rule.body[index].variable_set()
    return tuple(order)


class PreparedPlanner:
    """Static heuristic planner with per-(rule, delta) plan caching."""

    def __init__(self) -> None:
        self._cache: dict[
            tuple[Rule, int | None, tuple[Variable, ...]], RulePlan
        ] = {}
        self._epoch = 0
        self.plans_built = 0  # instrumentation for benchmarks/tests

    def invalidate(self) -> None:
        self._cache.clear()
        self._epoch += 1

    def plan_cache_token(self, db: Database) -> object:
        # Prepared plans are data-independent: stay valid until invalidated.
        return self._epoch

    def plan(
        self,
        rule: Rule,
        db: Database,
        delta_index: int | None,
        params: tuple[Variable, ...] = (),
    ) -> RulePlan:
        key = (rule, delta_index, params)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        plan = self._build(rule, delta_index, params)
        self._cache[key] = plan
        self.plans_built += 1
        return plan

    def _build(
        self,
        rule: Rule,
        delta_index: int | None,
        params: tuple[Variable, ...],
    ) -> RulePlan:
        order: list[int] = []
        remaining = set(range(len(rule.body)))
        bound: set[Variable] = set(params)
        if delta_index is not None:
            order.append(delta_index)
            remaining.discard(delta_index)
            bound |= rule.body[delta_index].variable_set()

        def choose(candidates: set[int], current: set[Variable]) -> int:
            # Prefer atoms connected to the bound variables (index-probeable),
            # then fewer free variables, then smaller arity, then position.
            def score(index: int) -> tuple[int, int, int, int]:
                atom = rule.body[index]
                connected = 0 if (atom.variable_set() & current) else 1
                if not current and not order:
                    connected = 0  # first atom: nothing is connected yet
                free = len(atom.variable_set() - current)
                return (connected, free, atom.arity, index)

            return min(candidates, key=score)

        return RulePlan(
            rule, _finish_order(rule, order, remaining, bound, choose), params
        )


class CostBasedPlanner:
    """Statistics-driven greedy planner, re-planning every round."""

    def __init__(self) -> None:
        self.plans_built = 0

    def invalidate(self) -> None:  # stateless: nothing cached
        return None

    def plan_cache_token(self, db: Database) -> object:
        # Statistics-driven plans go stale with the data: re-plan on any
        # database change (the paper's per-statement optimizer round-trip).
        return db.version

    def plan(
        self,
        rule: Rule,
        db: Database,
        delta_index: int | None,
        params: tuple[Variable, ...] = (),
    ) -> RulePlan:
        self.plans_built += 1
        order: list[int] = []
        remaining = set(range(len(rule.body)))
        bound: set[Variable] = set(params)
        if delta_index is not None:
            order.append(delta_index)
            remaining.discard(delta_index)
            bound |= rule.body[delta_index].variable_set()

        def estimated_fanout(index: int, current: set[Variable]) -> float:
            atom = rule.body[index]
            if atom.predicate not in db:
                return 0.0
            stats = db.stats_for(atom.predicate)
            return stats.fanout(probe_columns(atom, current))

        def choose(candidates: set[int], current: set[Variable]) -> int:
            return min(
                candidates,
                key=lambda i: (estimated_fanout(i, current), i),
            )

        return RulePlan(
            rule, _finish_order(rule, order, remaining, bound, choose), params
        )
