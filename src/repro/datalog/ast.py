"""Core abstract syntax for datalog with Skolem functions.

The paper (Section 4.1.1) compiles schema mappings (tgds) into a version of
datalog *extended with Skolem functions*: each existentially quantified
variable on the RHS of a tgd becomes a Skolem term over the variables shared
between the LHS and RHS.  Evaluating such a term produces a *labeled null*
(:class:`SkolemValue`) — the placeholder values of canonical universal
solutions.

This module defines the term/atom/rule/program data model shared by the
parser, the planners, and the evaluation engine.  All types are immutable and
hashable so they can be used as dictionary keys and set members, which the
semi-naive engine relies on heavily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence


class DatalogError(Exception):
    """Base class for errors raised by the datalog subsystem."""


class SafetyError(DatalogError):
    """A rule violates the datalog safety conditions."""


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Variable:
    """A datalog variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant term wrapping an arbitrary hashable Python value."""

    value: object

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class SkolemFunction:
    """A named Skolem function.

    The paper requires *a separate Skolem function for each existentially
    quantified variable in each tgd* (Section 4.1.1); callers encode this by
    minting one :class:`SkolemFunction` per (mapping, variable) pair, e.g.
    ``f_m3_c``.
    """

    name: str

    def __call__(self, *args: object) -> "SkolemValue":
        return SkolemValue(self.name, tuple(args))

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SkolemTerm:
    """An application of a Skolem function to argument terms.

    Skolem terms may appear only in rule heads; during head instantiation the
    engine evaluates them to :class:`SkolemValue` labeled nulls.
    """

    function: SkolemFunction
    args: tuple["Term", ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.function.name}({inner})"


Term = Variable | Constant | SkolemTerm


@dataclass(frozen=True)
class SkolemValue:
    """A labeled null: the ground value produced by a Skolem function.

    Two labeled nulls are equal iff they were produced by the same Skolem
    function applied to the same arguments — exactly the placeholder-value
    semantics of Section 4.1.1.  Labeled nulls are ordinary values to the
    engine (joins may test them for equality) but are filtered out when
    producing *certain answers* (Section 2.1).
    """

    function_name: str
    args: tuple[object, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.function_name}({inner})"


def is_labeled_null(value: object) -> bool:
    """Return True if ``value`` is a labeled null (Skolem value)."""
    return isinstance(value, SkolemValue)


def tuple_has_labeled_null(row: Sequence[object]) -> bool:
    """Return True if any component of ``row`` is a labeled null."""
    return any(isinstance(v, SkolemValue) for v in row)


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    """A (possibly negated) predicate applied to terms.

    Negated atoms are only legal in rule bodies, and only when every variable
    they mention also occurs in a positive body atom (*safe negation*,
    Section 3.1).
    """

    predicate: str
    terms: tuple[Term, ...]
    negated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> tuple[Variable, ...]:
        """All variables occurring in the atom, in order, with duplicates."""
        out: list[Variable] = []
        for term in self.terms:
            out.extend(_term_variables(term))
        return tuple(out)

    def variable_set(self) -> frozenset[Variable]:
        return frozenset(self.variables())

    def negate(self) -> "Atom":
        return Atom(self.predicate, self.terms, negated=not self.negated)

    def with_predicate(self, predicate: str) -> "Atom":
        return Atom(predicate, self.terms, negated=self.negated)

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        prefix = "not " if self.negated else ""
        return f"{prefix}{self.predicate}({inner})"


def _term_variables(term: Term) -> Iterator[Variable]:
    if isinstance(term, Variable):
        yield term
    elif isinstance(term, SkolemTerm):
        for arg in term.args:
            yield from _term_variables(arg)


# ---------------------------------------------------------------------------
# Substitutions
# ---------------------------------------------------------------------------

Substitution = Mapping[Variable, object]


def apply_term(term: Term, subst: Substitution) -> object:
    """Evaluate ``term`` under ``subst``, producing a ground value.

    Skolem terms evaluate to :class:`SkolemValue` labeled nulls.  Raises
    :class:`KeyError` if a variable is unbound.
    """
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        return subst[term]
    if isinstance(term, SkolemTerm):
        args = tuple(apply_term(arg, subst) for arg in term.args)
        return SkolemValue(term.function.name, args)
    raise TypeError(f"unknown term type: {term!r}")


def instantiate_atom(atom: Atom, subst: Substitution) -> tuple[object, ...]:
    """Ground an atom's terms under a substitution into a data row."""
    return tuple(apply_term(t, subst) for t in atom.terms)


def match_atom(
    atom: Atom, row: Sequence[object], subst: dict[Variable, object]
) -> dict[Variable, object] | None:
    """Try to extend ``subst`` so that ``atom`` matches ``row``.

    Returns the extended substitution (a new dict) on success, ``None`` on
    mismatch.  Skolem terms in body atoms act as *patterns*: they match only
    labeled nulls produced by the same Skolem function, and matching binds
    their argument variables from the null's arguments.  This is what makes
    the inverse rules of Section 4.1.3 directly expressible — "fill in the
    possible values ... that were projected away during the mapping".
    """
    result = dict(subst)
    for term, value in zip(atom.terms, row, strict=True):
        if not _match_term(term, value, result):
            return None
    return result


def _match_term(
    term: Term, value: object, result: dict[Variable, object]
) -> bool:
    if isinstance(term, Constant):
        return term.value == value
    if isinstance(term, Variable):
        bound = result.get(term, _UNBOUND)
        if bound is _UNBOUND:
            result[term] = value
            return True
        return bound == value
    if isinstance(term, SkolemTerm):
        if not isinstance(value, SkolemValue):
            return False
        if value.function_name != term.function.name:
            return False
        if len(value.args) != len(term.args):
            return False
        return all(
            _match_term(arg_term, arg_value, result)
            for arg_term, arg_value in zip(term.args, value.args)
        )
    raise DatalogError(f"unknown term type: {term!r}")


class _Unbound:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unbound>"


_UNBOUND = _Unbound()


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """A datalog rule ``head :- body``.

    ``label`` carries the provenance mapping name (e.g. ``"m1"``) for rules
    generated from schema mappings; it is how the provenance machinery knows
    which unary mapping function annotates derivations through this rule.
    """

    head: Atom
    body: tuple[Atom, ...]
    label: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if self.head.negated:
            raise SafetyError(f"negated head in rule: {self!r}")

    @property
    def positive_body(self) -> tuple[Atom, ...]:
        return tuple(a for a in self.body if not a.negated)

    @property
    def negative_body(self) -> tuple[Atom, ...]:
        return tuple(a for a in self.body if a.negated)

    def body_predicates(self) -> frozenset[str]:
        return frozenset(a.predicate for a in self.body)

    def variables(self) -> frozenset[Variable]:
        out: set[Variable] = set(self.head.variable_set())
        for atom in self.body:
            out |= atom.variable_set()
        return frozenset(out)

    def check_safety(self) -> None:
        """Raise :class:`SafetyError` unless the rule is safe.

        Safety: every head variable and every variable of a negated body atom
        must occur in some positive body atom (tgds *with safe negation*,
        Section 3.1).
        """
        positive_vars: set[Variable] = set()
        for atom in self.positive_body:
            positive_vars |= atom.variable_set()
        for var in self.head.variable_set():
            if var not in positive_vars:
                raise SafetyError(
                    f"head variable {var!r} not bound by a positive body "
                    f"atom in rule {self!r}"
                )
        for atom in self.negative_body:
            for var in atom.variable_set():
                if var not in positive_vars:
                    raise SafetyError(
                        f"variable {var!r} of negated atom {atom!r} not "
                        f"bound by a positive body atom in rule {self!r}"
                    )

    def rename_apart(self, suffix: str) -> "Rule":
        """Return a copy with every variable renamed with ``suffix``."""
        mapping = {v: Variable(f"{v.name}{suffix}") for v in self.variables()}
        return Rule(
            head=_rename_atom(self.head, mapping),
            body=tuple(_rename_atom(a, mapping) for a in self.body),
            label=self.label,
        )

    def __repr__(self) -> str:
        body = ", ".join(repr(a) for a in self.body)
        tag = f" [{self.label}]" if self.label else ""
        return f"{self.head!r} :- {body}{tag}"


def _rename_term(term: Term, mapping: Mapping[Variable, Variable]) -> Term:
    if isinstance(term, Variable):
        return mapping.get(term, term)
    if isinstance(term, SkolemTerm):
        return SkolemTerm(
            term.function, tuple(_rename_term(a, mapping) for a in term.args)
        )
    return term


def _rename_atom(atom: Atom, mapping: Mapping[Variable, Variable]) -> Atom:
    return Atom(
        atom.predicate,
        tuple(_rename_term(t, mapping) for t in atom.terms),
        negated=atom.negated,
    )


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Program:
    """An ordered collection of rules forming a datalog program."""

    rules: tuple[Rule, ...]
    name: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def check_safety(self) -> None:
        for rule in self.rules:
            rule.check_safety()

    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by some rule head."""
        return frozenset(rule.head.predicate for rule in self.rules)

    def edb_predicates(self) -> frozenset[str]:
        """Predicates used in bodies but never defined by a head."""
        idb = self.idb_predicates()
        out: set[str] = set()
        for rule in self.rules:
            for atom in rule.body:
                if atom.predicate not in idb:
                    out.add(atom.predicate)
        return frozenset(out)

    def predicates(self) -> frozenset[str]:
        out: set[str] = set()
        for rule in self.rules:
            out.add(rule.head.predicate)
            for atom in rule.body:
                out.add(atom.predicate)
        return frozenset(out)

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.head.predicate == predicate)

    def extend(self, rules: Iterable[Rule]) -> "Program":
        return Program(self.rules + tuple(rules), name=self.name)

    def __repr__(self) -> str:
        title = self.name or "program"
        lines = "\n".join(f"  {rule!r}" for rule in self.rules)
        return f"<{title}:\n{lines}\n>"


def make_atom(predicate: str, *terms: Term | str | object) -> Atom:
    """Convenience constructor: strings become variables if they start with
    a lowercase letter or ``_``; other plain values become constants.

    Intended for tests and examples; production code builds atoms directly.
    """
    converted: list[Term] = []
    for term in terms:
        if isinstance(term, (Variable, Constant, SkolemTerm)):
            converted.append(term)
        elif isinstance(term, str) and term[:1].isalpha() and term[0].islower():
            converted.append(Variable(term))
        else:
            converted.append(Constant(term))
    return Atom(predicate, tuple(converted))
