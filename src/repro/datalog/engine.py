"""Stratified semi-naive datalog evaluation with Skolem functions.

This is the fixpoint engine at the heart of update exchange (Section 4.1.1:
"This basic methodology produces a program for recomputing CDSS instances,
given a datalog engine with fixpoint capabilities").  It supports:

* stratified safe negation (needed by the internal mappings of Section 3.1),
* Skolem terms in rule heads producing labeled nulls (Section 4.1.1),
* per-rule head filters, which is how trust conditions are enforced during
  derivation (Sections 3.3 and 4.2),
* full fixpoint computation (:meth:`SemiNaiveEngine.run`) and incremental
  insertion propagation from externally supplied deltas
  (:meth:`SemiNaiveEngine.run_insertions` — the insertion delta rules of
  Section 4.2),
* shard-parallel evaluation of delta-driven stratum rounds across a
  worker-process pool (``workers > 1``, see :mod:`repro.parallel`;
  ``workers=1`` — the default — is the unchanged sequential path and the
  two produce identical fixpoints, provenance included), and
* a deliberately naive reference evaluator (:class:`NaiveEngine`) used by the
  test suite to cross-check the semi-naive implementation.

The engine is parameterized by a :class:`~repro.datalog.planner.Planner`,
which is where the paper's two backends (DB2-style cost-based vs.
Tukwila-style prepared plans) differ.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from ..storage.database import Database
from ..storage.instance import Instance
from .ast import Atom, DatalogError, Program, Rule
from .plan import Row, RowSource, RulePlan, run_plan
from .planner import Planner, PreparedPlanner
from .stratify import Stratification, stratify

HeadFilter = Callable[[Row], bool]
"""Predicate over a derived head row; False rejects the derivation."""

_PLAN_CACHE_LIMIT = 10_000
"""Entries the engine plan cache may hold before it is wholesale cleared
(each entry pins its Rule object; real programs sit far below this)."""


class IncrementalUnsoundError(DatalogError):
    """Insertion deltas would flow through a negated atom.

    Incremental *insertion* is only sound for positive propagation; the
    update-exchange layer routes changes to negated relations (the rejection
    tables ``R_r``) through the deletion machinery instead.
    """


@dataclass
class EvaluationResult:
    """Statistics from one engine run.

    ``rounds`` counts rule-evaluation passes actually performed: for a full
    evaluation, the initial naive pass plus every delta-driven pass; for an
    incremental run, only the delta-driven passes (a stratum whose rules are
    untouched by the seed contributes zero rounds).
    """

    rounds: int = 0
    inserted: dict[str, int] = field(default_factory=dict)
    rule_applications: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    parallel_rounds: int = 0
    # Always-on stratum-evaluation clocks (cheap: two perf_counter and
    # two process_time calls per stratum, not per round or rule).
    eval_wall_seconds: float = 0.0
    eval_cpu_seconds: float = 0.0

    @property
    def total_inserted(self) -> int:
        return sum(self.inserted.values())

    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of plan requests served from the engine's plan cache."""
        probes = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / probes if probes else 0.0

    def counters(self) -> dict[str, int]:
        """The scalar counters as a dict — the single key list shared by
        exchange reports and benchmarks."""
        return {
            "rounds": self.rounds,
            "rule_applications": self.rule_applications,
            "tuples_inserted": self.total_inserted,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "parallel_rounds": self.parallel_rounds,
            "eval_wall_seconds": self.eval_wall_seconds,
            "eval_cpu_seconds": self.eval_cpu_seconds,
        }

    @staticmethod
    def counters_delta(
        before: Mapping[str, int], after: Mapping[str, int]
    ) -> dict[str, float]:
        """Counter movement between two :meth:`counters` snapshots, with the
        derived plan-cache hit rate."""
        delta: dict[str, float] = {
            key: after[key] - before.get(key, 0) for key in after
        }
        probes = delta["plan_cache_hits"] + delta["plan_cache_misses"]
        delta["plan_cache_hit_rate"] = (
            delta["plan_cache_hits"] / probes if probes else 0.0
        )
        return delta

    def _record(self, predicate: str, count: int) -> None:
        if count:
            self.inserted[predicate] = self.inserted.get(predicate, 0) + count

    def _absorb(self, other: "EvaluationResult") -> None:
        """Accumulate ``other`` into this result (for cumulative stats)."""
        self.rounds += other.rounds
        self.rule_applications += other.rule_applications
        self.plan_cache_hits += other.plan_cache_hits
        self.plan_cache_misses += other.plan_cache_misses
        self.parallel_rounds += other.parallel_rounds
        self.eval_wall_seconds += other.eval_wall_seconds
        self.eval_cpu_seconds += other.eval_cpu_seconds
        for predicate, count in other.inserted.items():
            self._record(predicate, count)


def ensure_idb_relations(program: Program, db: Database) -> None:
    """Create any missing IDB relations, with arity taken from rule heads."""
    for rule in program:
        db.ensure(rule.head.predicate, rule.head.arity)


def _check_head_arities(program: Program) -> None:
    arities: dict[str, int] = {}
    for rule in program:
        for atom in [rule.head, *rule.body]:
            known = arities.get(atom.predicate)
            if known is None:
                arities[atom.predicate] = atom.arity
            elif known != atom.arity:
                raise DatalogError(
                    f"predicate {atom.predicate!r} used with arities "
                    f"{known} and {atom.arity}"
                )


def _engine_samples(engine: "SemiNaiveEngine"):
    """Metrics collector: surface an engine's cumulative counters.

    Registered per engine via weakref (see :mod:`repro.obs.metrics`);
    samples from every live engine in the process are summed into one
    series per counter at scrape time.
    """
    stats = engine.stats
    sample = _metrics.Sample
    kind = _metrics.KIND_COUNTER
    yield sample("repro_engine_rounds_total", kind, "", (), stats.rounds)
    yield sample(
        "repro_engine_rule_applications_total",
        kind,
        "",
        (),
        stats.rule_applications,
    )
    yield sample(
        "repro_engine_tuples_inserted_total",
        kind,
        "",
        (),
        stats.total_inserted,
    )
    yield sample(
        "repro_engine_plan_cache_hits_total",
        kind,
        "",
        (),
        stats.plan_cache_hits,
    )
    yield sample(
        "repro_engine_plan_cache_misses_total",
        kind,
        "",
        (),
        stats.plan_cache_misses,
    )
    yield sample(
        "repro_engine_parallel_rounds_total",
        kind,
        "",
        (),
        stats.parallel_rounds,
    )
    yield sample(
        "repro_engine_eval_seconds_total",
        kind,
        "",
        (),
        stats.eval_wall_seconds,
    )


class DeltaPool:
    """Persistent, reusable Δ-relations keyed by (predicate, arity).

    Contents are replaced diff-wise (:meth:`Instance.replace_contents`)
    so materialized probe indexes are maintained incrementally instead of
    rebuilt every round.  Shared by the engine, the DRed maintainer (via
    :meth:`SemiNaiveEngine.delta_instance`), and the parallel subsystem's
    worker replicas — one implementation, identical Δ-index maintenance
    everywhere.
    """

    __slots__ = ("_instances",)

    def __init__(self) -> None:
        self._instances: dict[tuple[str, int], Instance] = {}

    def instance(
        self, predicate: str, arity: int, rows: Iterable[Row]
    ) -> Instance:
        key = (predicate, arity)
        delta = self._instances.get(key)
        if delta is None:
            delta = Instance(f"Δ{predicate}", arity, rows)
            self._instances[key] = delta
        else:
            delta.replace_contents(rows)
        return delta


class SemiNaiveEngine:
    """Stratified semi-naive fixpoint evaluator."""

    def __init__(
        self,
        planner: Planner | None = None,
        head_filters: Mapping[str, HeadFilter] | None = None,
        workers: int | None = 1,
        start_method: str | None = None,
    ) -> None:
        self.planner: Planner = planner if planner is not None else PreparedPlanner()
        self.head_filters: dict[str, HeadFilter] = dict(head_filters or {})
        # Shard-parallel evaluation (see repro.parallel): workers > 1 routes
        # delta-driven stratum rounds through a persistent worker pool;
        # workers=1 is the unchanged sequential path.  None resolves the
        # REPRO_WORKERS environment default.
        if workers is None or workers != 1:
            from ..parallel import resolve_workers

            workers = resolve_workers(workers)
        self.workers: int = workers
        self._start_method = start_method
        self._parallel = None  # lazily constructed ParallelExecutor
        self._parallel_closed = False
        # Planners without a token fall back to the database version
        # (conservative: any change re-plans).
        self._token_fn = getattr(self.planner, "plan_cache_token", None)
        # (id(rule), delta_index) -> (rule, plan, cache token).  The rule is
        # stored to pin its id; the token (from the planner, or the database
        # version for planners without one) invalidates stale plans.
        # id-keying avoids hashing Rule trees on the hot path, at the cost
        # of zero hits for structurally equal but freshly parsed rules —
        # _PLAN_CACHE_LIMIT bounds growth for callers that re-parse
        # programs into a long-lived engine.
        self._plan_cache: dict[
            tuple[int, int | None], tuple[Rule, RulePlan, object]
        ] = {}
        # Persistent per-predicate delta relations, reused across rounds and
        # runs so their probe indexes stay warm.
        self._delta_pool = DeltaPool()
        #: Cumulative statistics across every run of this engine.
        self.stats = EvaluationResult()
        #: The :class:`EvaluationResult` of the most recent run.
        self.last_result: EvaluationResult | None = None
        _metrics.REGISTRY.register(self, _engine_samples)

    # -- helpers -----------------------------------------------------------

    def _executor(self):
        """The parallel executor, spawned on first use (None if workers=1,
        after :meth:`close`, or after a pool failure permanently fell back
        to sequential)."""
        if self.workers <= 1 or self._parallel_closed:
            return None
        executor = self._parallel
        if executor is None:
            from ..parallel import ParallelExecutor

            executor = ParallelExecutor(self.workers, self._start_method)
            self._parallel = executor
        return executor if executor.available else None

    def parallel_stats(self) -> dict | None:
        """Replication + transport counters of the parallel subsystem.

        ``None`` until a parallel executor exists (workers=1, or no
        parallel round has run yet); afterwards the executor's
        :meth:`~repro.parallel.executor.ParallelExecutor.stats` snapshot,
        including protocol version, complement-shipping row counts, and
        the per-message-tag byte/pickle-time breakdown.
        """
        if self._parallel is None:
            return None
        return self._parallel.stats()

    def close(self) -> None:
        """Release the worker pool and stay sequential (idempotent).

        Also prevents a *later* lazy spawn: a closed engine never starts
        a new pool, even if no parallel round had run yet."""
        self._parallel_closed = True
        if self._parallel is not None:
            self._parallel.close()

    def invalidate_plans(self) -> None:
        """Drop all cached plans (and the planner's own cache)."""
        self._plan_cache.clear()
        self.planner.invalidate()

    def _plan_for(
        self,
        rule: Rule,
        db: Database,
        delta_index: int | None,
        result: EvaluationResult,
        params: tuple = (),
    ) -> RulePlan:
        """Memoized ``planner.plan`` per (rule, delta occurrence).

        A cached plan is reused only while the planner's cache token is
        unchanged: prepared planners issue a constant token (their plans are
        data-independent), the cost-based planner issues the database
        version (re-planning whenever the data changed, exactly its round-
        trip-per-statement behaviour).  ``params`` are parameter variables
        (prepared-query constant slots) passed through to the planner.
        """
        token_fn = self._token_fn
        token = token_fn(db) if token_fn is not None else db.version
        key = (id(rule), delta_index)
        entry = self._plan_cache.get(key)
        if entry is not None and entry[2] == token:
            result.plan_cache_hits += 1
            return entry[1]
        if params:
            plan = self.planner.plan(rule, db, delta_index, params)
        else:
            # Legacy two-planner call shape, kept so planner objects that
            # predate parameter support keep working for ordinary rules.
            plan = self.planner.plan(rule, db, delta_index)
        if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
            self._plan_cache.clear()
        self._plan_cache[key] = (rule, plan, token)
        result.plan_cache_misses += 1
        return plan

    def cached_plan(
        self,
        rule: Rule,
        db: Database,
        delta_index: int | None = None,
        params: tuple = (),
    ) -> RulePlan:
        """Public entry to the engine-level plan cache.

        Used by the prepared-query subsystem and the DRed maintainer, which
        plan outside a full engine run; cache hits/misses accrue directly to
        the engine's cumulative :attr:`stats`.
        """
        result = EvaluationResult()
        plan = self._plan_for(rule, db, delta_index, result, params)
        self.stats.plan_cache_hits += result.plan_cache_hits
        self.stats.plan_cache_misses += result.plan_cache_misses
        return plan

    def delta_instance(
        self, predicate: str, arity: int, rows: set[Row]
    ) -> Instance:
        """The reusable Δ-relation for ``predicate``, swapped to ``rows``
        (see :class:`DeltaPool`).  Public so the DRed maintainer shares
        the same persistent Δ pool."""
        return self._delta_pool.instance(predicate, arity, rows)

    def _finish(self, result: EvaluationResult) -> EvaluationResult:
        self.last_result = result
        self.stats._absorb(result)
        return result

    def _filter_for(self, rule: Rule) -> HeadFilter | None:
        if rule.label is None:
            return None
        return self.head_filters.get(rule.label)

    def _evaluate_rule(
        self,
        rule: Rule,
        db: Database,
        delta_index: int | None,
        delta_source: RowSource | None,
        result: EvaluationResult,
    ) -> list[Row]:
        """Evaluate one rule (optionally with a delta occurrence), returning
        the fully materialized list of derived head rows."""
        plan = self._plan_for(rule, db, delta_index, result)
        result.rule_applications += 1

        def resolve(index: int, atom: Atom) -> RowSource:
            if index == delta_index and delta_source is not None:
                return delta_source
            if atom.predicate in db:
                return db[atom.predicate]
            return _EMPTY_SOURCE

        if not _tracing.ENABLED:
            return run_plan(plan, resolve, self._filter_for(rule))
        span = _tracing.start(
            "rule-evaluation",
            head=rule.head.predicate,
            delta_index=delta_index,
        )
        rows = run_plan(plan, resolve, self._filter_for(rule))
        span.rows = len(rows)
        _tracing.finish(span)
        return rows

    # -- full evaluation -----------------------------------------------------

    def run(self, program: Program, db: Database) -> EvaluationResult:
        """Evaluate ``program`` to fixpoint over ``db`` (inserting tuples)."""
        program.check_safety()
        _check_head_arities(program)
        ensure_idb_relations(program, db)
        stratification = stratify(program)
        result = EvaluationResult()
        relevant = self._body_predicates(program)
        for stratum in stratification.strata:
            self._run_stratum(
                list(stratum), db, result, seed=None, relevant=relevant
            )
        return self._finish(result)

    def run_insertions(
        self,
        program: Program,
        db: Database,
        inserted: Mapping[str, Iterable[Row]],
    ) -> dict[str, set[Row]]:
        """Propagate externally inserted tuples to fixpoint.

        ``inserted`` maps predicate names to rows that have *already been
        inserted* into ``db``.  Returns every newly derived row per
        predicate (not including the seed rows).  Raises
        :class:`IncrementalUnsoundError` if the deltas could reach a negated
        atom occurrence (see class docstring).
        """
        program.check_safety()
        _check_head_arities(program)
        ensure_idb_relations(program, db)
        stratification = stratify(program)
        self._check_insertion_soundness(program, set(inserted))

        all_new: dict[str, set[Row]] = {
            pred: set(map(tuple, rows)) for pred, rows in inserted.items()
        }
        derived: dict[str, set[Row]] = {}
        result = EvaluationResult()
        relevant = self._body_predicates(program)
        for stratum in stratification.strata:
            seed = {pred: set(rows) for pred, rows in all_new.items() if rows}
            new_in_stratum = self._run_stratum(
                list(stratum), db, result, seed=seed, relevant=relevant
            )
            for pred, rows in new_in_stratum.items():
                all_new.setdefault(pred, set()).update(rows)
                derived.setdefault(pred, set()).update(rows)
        self._finish(result)
        return derived

    def _check_insertion_soundness(
        self, program: Program, delta_preds: set[str]
    ) -> None:
        # Predicates transitively derivable from the deltas.
        reachable = set(delta_preds)
        changed = True
        while changed:
            changed = False
            for rule in program:
                if rule.head.predicate in reachable:
                    continue
                if any(
                    not atom.negated and atom.predicate in reachable
                    for atom in rule.body
                ):
                    reachable.add(rule.head.predicate)
                    changed = True
        for rule in program:
            for atom in rule.body:
                if atom.negated and atom.predicate in reachable:
                    raise IncrementalUnsoundError(
                        f"insertion delta reaches negated atom {atom!r} in "
                        f"rule {rule!r}; route this change through the "
                        "deletion machinery instead"
                    )

    # -- stratum loop ---------------------------------------------------------

    @staticmethod
    def _body_predicates(program: Program) -> frozenset[str]:
        """Every predicate some rule body reads — what worker replicas
        must receive deltas for (head-only relations stay parent-side)."""
        return frozenset(
            atom.predicate for rule in program for atom in rule.body
        )

    def _run_stratum(
        self,
        rules: list[Rule],
        db: Database,
        result: EvaluationResult,
        seed: dict[str, set[Row]] | None,
        relevant: frozenset[str] | None = None,
    ) -> dict[str, set[Row]]:
        """Run one stratum to fixpoint.

        ``seed=None`` means full evaluation (a naive first pass seeds the
        deltas); otherwise ``seed`` supplies the initial deltas and only
        delta-driven derivations run.  Returns all rows newly inserted by
        this stratum.

        Round accounting is exact: the initial naive pass counts as one
        round, and each delta-driven pass as one more.  Deltas for
        predicates no rule body in this stratum reads are dropped up front,
        so a stratum untouched by the seed contributes zero rounds.

        The whole stratum runs inside one index-maintenance deferral scope
        (a no-op under the eager policy): derived-table inserts only append
        maintenance runs, indexes the stratum actually probes catch up in
        batched passes, and the scope exit is the flush barrier — so the
        database leaves every stratum with fully synchronized indexes.
        """
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        span = (
            _tracing.start("stratum", rules=len(rules))
            if _tracing.ENABLED
            else None
        )
        try:
            with db.defer_maintenance():
                new_total = self._run_stratum_deferred(
                    rules, db, result, seed, relevant
                )
            if span is not None:
                span.rows = sum(len(rows) for rows in new_total.values())
            return new_total
        finally:
            if span is not None:
                _tracing.finish(span)
            result.eval_wall_seconds += time.perf_counter() - wall0
            result.eval_cpu_seconds += time.process_time() - cpu0

    def _run_stratum_deferred(
        self,
        rules: list[Rule],
        db: Database,
        result: EvaluationResult,
        seed: dict[str, set[Row]] | None,
        relevant: frozenset[str] | None = None,
    ) -> dict[str, set[Row]]:
        new_total: dict[str, set[Row]] = {}
        delta_sets: dict[str, set[Row]] = {}
        body_preds = {
            atom.predicate
            for rule in rules
            for atom in rule.body
            if not atom.negated
        }

        def stratum_relevant(
            deltas: dict[str, set[Row]]
        ) -> dict[str, set[Row]]:
            return {
                pred: rows
                for pred, rows in deltas.items()
                if rows and pred in body_preds
            }

        rounds = 0
        if seed is None:
            rounds = 1 if rules else 0
            for rule in rules:
                rows = self._evaluate_rule(rule, db, None, None, result)
                added = db[rule.head.predicate].insert_new(rows)
                if added:
                    delta_sets.setdefault(
                        rule.head.predicate, set()
                    ).update(added)
            for pred, rows in delta_sets.items():
                new_total.setdefault(pred, set()).update(rows)
            delta_sets = stratum_relevant(delta_sets)
        else:
            delta_sets = stratum_relevant(
                {pred: set(rows) for pred, rows in seed.items()}
            )

        while delta_sets:
            rounds += 1
            round_span = (
                _tracing.start("round", number=rounds)
                if _tracing.ENABLED
                else None
            )
            next_deltas: dict[str, set[Row]] | None = None
            if self.workers > 1:
                next_deltas = self._run_parallel_round(
                    rules, db, delta_sets, result, relevant
                )
            if next_deltas is None:
                next_deltas = self._run_sequential_round(
                    rules, db, delta_sets, result
                )
            if round_span is not None:
                round_span.rows = sum(
                    len(rows) for rows in next_deltas.values()
                )
                _tracing.finish(round_span)
            for pred, rows in next_deltas.items():
                new_total.setdefault(pred, set()).update(rows)
            delta_sets = stratum_relevant(next_deltas)

        result.rounds += rounds
        for pred, rows in new_total.items():
            result._record(pred, len(rows))
        return new_total

    def _run_sequential_round(
        self,
        rules: list[Rule],
        db: Database,
        delta_sets: dict[str, set[Row]],
        result: EvaluationResult,
    ) -> dict[str, set[Row]]:
        """One delta-driven pass over the stratum's rules, in process."""
        deltas = {
            pred: self.delta_instance(
                pred,
                db[pred].arity if pred in db else len(next(iter(rows))),
                rows,
            )
            for pred, rows in delta_sets.items()
        }
        next_deltas: dict[str, set[Row]] = {}
        for rule in rules:
            for index, atom in enumerate(rule.body):
                if atom.negated:
                    continue
                delta_source = deltas.get(atom.predicate)
                if delta_source is None:
                    continue
                rows = self._evaluate_rule(
                    rule, db, index, delta_source, result
                )
                added = db[rule.head.predicate].insert_new(rows)
                if added:
                    next_deltas.setdefault(
                        rule.head.predicate, set()
                    ).update(added)
        return next_deltas

    def _run_parallel_round(
        self,
        rules: list[Rule],
        db: Database,
        delta_sets: dict[str, set[Row]],
        result: EvaluationResult,
        relevant: frozenset[str] | None = None,
    ) -> dict[str, set[Row]] | None:
        """One delta-driven pass evaluated across the worker pool.

        Every (rule, Δ-occurrence) task runs against the round-start
        replica state; mid-round insertions — which the sequential loop's
        later rules may observe through full-relation reads — arrive one
        round later as Δ-seeds instead, so the fixpoint (and every
        provenance row) is identical while ``rounds`` may differ.
        Returns ``None`` on pool failure (the caller re-runs this same
        round sequentially: nothing has been inserted yet).
        """
        executor = self._executor()
        if executor is None:
            return None
        tasks: list = []
        for rule in rules:
            for index, atom in enumerate(rule.body):
                if atom.negated:
                    continue
                rows = delta_sets.get(atom.predicate)
                if not rows:
                    continue
                plan = self._plan_for(rule, db, index, result)
                tasks.append(
                    (
                        plan,
                        index,
                        list(rows),
                        rule.head.predicate,
                        self._filter_for(rule),
                    )
                )
        if not tasks:
            return {}
        next_deltas = executor.run_insertion_round(db, tasks, relevant)
        if next_deltas is None:
            return None
        result.rule_applications += len(tasks)
        result.parallel_rounds += 1
        return next_deltas


class NaiveEngine:
    """Reference evaluator: repeat full rule passes until no change.

    Quadratically slower than :class:`SemiNaiveEngine` but trivially correct;
    the property-based tests check both engines agree on random programs.
    """

    def __init__(
        self,
        planner: Planner | None = None,
        head_filters: Mapping[str, HeadFilter] | None = None,
    ) -> None:
        self._inner = SemiNaiveEngine(planner, head_filters)

    def run(self, program: Program, db: Database) -> EvaluationResult:
        program.check_safety()
        _check_head_arities(program)
        ensure_idb_relations(program, db)
        stratification = stratify(program)
        result = EvaluationResult()
        for stratum in stratification.strata:
            rules = list(stratum)
            changed = True
            while changed:
                changed = False
                result.rounds += 1
                for rule in rules:
                    rows = self._inner._evaluate_rule(
                        rule, db, None, None, result
                    )
                    target = db[rule.head.predicate]
                    for row in rows:
                        if target.insert(row):
                            result._record(rule.head.predicate, 1)
                            changed = True
        return self._inner._finish(result)


class _EmptySource:
    """A permanently empty relation (for predicates absent from the db)."""

    __slots__ = ()

    def __iter__(self):
        return iter(())

    def __contains__(self, row: object) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def lookup(self, columns, values) -> frozenset[Row]:
        return frozenset()


#: The shared empty row source (public: evaluation-adjacent code such as
#: the parallel workers resolves absent predicates to it too).
EMPTY_SOURCE = _EmptySource()
_EMPTY_SOURCE = EMPTY_SOURCE
