"""Stratified semi-naive datalog evaluation with Skolem functions.

This is the fixpoint engine at the heart of update exchange (Section 4.1.1:
"This basic methodology produces a program for recomputing CDSS instances,
given a datalog engine with fixpoint capabilities").  It supports:

* stratified safe negation (needed by the internal mappings of Section 3.1),
* Skolem terms in rule heads producing labeled nulls (Section 4.1.1),
* per-rule head filters, which is how trust conditions are enforced during
  derivation (Sections 3.3 and 4.2),
* full fixpoint computation (:meth:`SemiNaiveEngine.run`) and incremental
  insertion propagation from externally supplied deltas
  (:meth:`SemiNaiveEngine.run_insertions` — the insertion delta rules of
  Section 4.2), and
* a deliberately naive reference evaluator (:class:`NaiveEngine`) used by the
  test suite to cross-check the semi-naive implementation.

The engine is parameterized by a :class:`~repro.datalog.planner.Planner`,
which is where the paper's two backends (DB2-style cost-based vs.
Tukwila-style prepared plans) differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..storage.database import Database
from ..storage.instance import Instance
from .ast import Atom, DatalogError, Program, Rule
from .plan import Row, RowSource, execute_plan
from .planner import Planner, PreparedPlanner
from .stratify import Stratification, stratify

HeadFilter = Callable[[Row], bool]
"""Predicate over a derived head row; False rejects the derivation."""


class IncrementalUnsoundError(DatalogError):
    """Insertion deltas would flow through a negated atom.

    Incremental *insertion* is only sound for positive propagation; the
    update-exchange layer routes changes to negated relations (the rejection
    tables ``R_r``) through the deletion machinery instead.
    """


@dataclass
class EvaluationResult:
    """Statistics from one engine run."""

    rounds: int = 0
    inserted: dict[str, int] = field(default_factory=dict)
    rule_applications: int = 0

    @property
    def total_inserted(self) -> int:
        return sum(self.inserted.values())

    def _record(self, predicate: str, count: int) -> None:
        if count:
            self.inserted[predicate] = self.inserted.get(predicate, 0) + count


def ensure_idb_relations(program: Program, db: Database) -> None:
    """Create any missing IDB relations, with arity taken from rule heads."""
    for rule in program:
        db.ensure(rule.head.predicate, rule.head.arity)


def _check_head_arities(program: Program) -> None:
    arities: dict[str, int] = {}
    for rule in program:
        for atom in [rule.head, *rule.body]:
            known = arities.get(atom.predicate)
            if known is None:
                arities[atom.predicate] = atom.arity
            elif known != atom.arity:
                raise DatalogError(
                    f"predicate {atom.predicate!r} used with arities "
                    f"{known} and {atom.arity}"
                )


class SemiNaiveEngine:
    """Stratified semi-naive fixpoint evaluator."""

    def __init__(
        self,
        planner: Planner | None = None,
        head_filters: Mapping[str, HeadFilter] | None = None,
    ) -> None:
        self.planner: Planner = planner if planner is not None else PreparedPlanner()
        self.head_filters: dict[str, HeadFilter] = dict(head_filters or {})

    # -- helpers -----------------------------------------------------------

    def _filter_for(self, rule: Rule) -> Callable[[Row, object], bool] | None:
        if rule.label is None:
            return None
        head_filter = self.head_filters.get(rule.label)
        if head_filter is None:
            return None
        return lambda row, _subst: head_filter(row)

    def _evaluate_rule(
        self,
        rule: Rule,
        db: Database,
        delta_index: int | None,
        delta_source: RowSource | None,
        result: EvaluationResult,
    ) -> list[Row]:
        """Evaluate one rule (optionally with a delta occurrence), returning
        the fully materialized list of derived head rows."""
        plan = self.planner.plan(rule, db, delta_index)
        result.rule_applications += 1

        def resolve(index: int, atom: Atom) -> RowSource:
            if index == delta_index and delta_source is not None:
                return delta_source
            if atom.predicate in db:
                return db[atom.predicate]
            return _EMPTY_SOURCE

        head_filter = self._filter_for(rule)
        return [
            row for row, _ in execute_plan(plan, resolve, head_filter)
        ]

    # -- full evaluation -----------------------------------------------------

    def run(self, program: Program, db: Database) -> EvaluationResult:
        """Evaluate ``program`` to fixpoint over ``db`` (inserting tuples)."""
        program.check_safety()
        _check_head_arities(program)
        ensure_idb_relations(program, db)
        stratification = stratify(program)
        result = EvaluationResult()
        for stratum in stratification.strata:
            self._run_stratum(list(stratum), db, result, seed=None)
        return result

    def run_insertions(
        self,
        program: Program,
        db: Database,
        inserted: Mapping[str, Iterable[Row]],
    ) -> dict[str, set[Row]]:
        """Propagate externally inserted tuples to fixpoint.

        ``inserted`` maps predicate names to rows that have *already been
        inserted* into ``db``.  Returns every newly derived row per
        predicate (not including the seed rows).  Raises
        :class:`IncrementalUnsoundError` if the deltas could reach a negated
        atom occurrence (see class docstring).
        """
        program.check_safety()
        _check_head_arities(program)
        ensure_idb_relations(program, db)
        stratification = stratify(program)
        self._check_insertion_soundness(program, set(inserted))

        all_new: dict[str, set[Row]] = {
            pred: set(map(tuple, rows)) for pred, rows in inserted.items()
        }
        derived: dict[str, set[Row]] = {}
        result = EvaluationResult()
        for stratum in stratification.strata:
            seed = {pred: set(rows) for pred, rows in all_new.items() if rows}
            new_in_stratum = self._run_stratum(
                list(stratum), db, result, seed=seed
            )
            for pred, rows in new_in_stratum.items():
                all_new.setdefault(pred, set()).update(rows)
                derived.setdefault(pred, set()).update(rows)
        return derived

    def _check_insertion_soundness(
        self, program: Program, delta_preds: set[str]
    ) -> None:
        # Predicates transitively derivable from the deltas.
        reachable = set(delta_preds)
        changed = True
        while changed:
            changed = False
            for rule in program:
                if rule.head.predicate in reachable:
                    continue
                if any(
                    not atom.negated and atom.predicate in reachable
                    for atom in rule.body
                ):
                    reachable.add(rule.head.predicate)
                    changed = True
        for rule in program:
            for atom in rule.body:
                if atom.negated and atom.predicate in reachable:
                    raise IncrementalUnsoundError(
                        f"insertion delta reaches negated atom {atom!r} in "
                        f"rule {rule!r}; route this change through the "
                        "deletion machinery instead"
                    )

    # -- stratum loop ---------------------------------------------------------

    def _run_stratum(
        self,
        rules: list[Rule],
        db: Database,
        result: EvaluationResult,
        seed: dict[str, set[Row]] | None,
    ) -> dict[str, set[Row]]:
        """Run one stratum to fixpoint.

        ``seed=None`` means full evaluation (a naive first pass seeds the
        deltas); otherwise ``seed`` supplies the initial deltas and only
        delta-driven derivations run.  Returns all rows newly inserted by
        this stratum.
        """
        new_total: dict[str, set[Row]] = {}
        delta_sets: dict[str, set[Row]] = {}

        if seed is None:
            for rule in rules:
                rows = self._evaluate_rule(rule, db, None, None, result)
                target = db[rule.head.predicate]
                for row in rows:
                    if target.insert(row):
                        delta_sets.setdefault(rule.head.predicate, set()).add(row)
            for pred, rows in delta_sets.items():
                new_total.setdefault(pred, set()).update(rows)
        else:
            delta_sets = {pred: set(rows) for pred, rows in seed.items()}

        rounds = 0
        while delta_sets:
            rounds += 1
            deltas = {
                pred: Instance(f"Δ{pred}", db[pred].arity if pred in db else len(next(iter(rows))), rows)
                for pred, rows in delta_sets.items()
                if rows
            }
            next_deltas: dict[str, set[Row]] = {}
            for rule in rules:
                for index, atom in enumerate(rule.body):
                    if atom.negated:
                        continue
                    delta_source = deltas.get(atom.predicate)
                    if delta_source is None:
                        continue
                    rows = self._evaluate_rule(
                        rule, db, index, delta_source, result
                    )
                    target = db[rule.head.predicate]
                    for row in rows:
                        if target.insert(row):
                            next_deltas.setdefault(
                                rule.head.predicate, set()
                            ).add(row)
            for pred, rows in next_deltas.items():
                new_total.setdefault(pred, set()).update(rows)
            delta_sets = next_deltas

        result.rounds += max(rounds, 1 if rules else 0)
        for pred, rows in new_total.items():
            result._record(pred, len(rows))
        return new_total


class NaiveEngine:
    """Reference evaluator: repeat full rule passes until no change.

    Quadratically slower than :class:`SemiNaiveEngine` but trivially correct;
    the property-based tests check both engines agree on random programs.
    """

    def __init__(
        self,
        planner: Planner | None = None,
        head_filters: Mapping[str, HeadFilter] | None = None,
    ) -> None:
        self._inner = SemiNaiveEngine(planner, head_filters)

    def run(self, program: Program, db: Database) -> EvaluationResult:
        program.check_safety()
        _check_head_arities(program)
        ensure_idb_relations(program, db)
        stratification = stratify(program)
        result = EvaluationResult()
        for stratum in stratification.strata:
            rules = list(stratum)
            changed = True
            while changed:
                changed = False
                result.rounds += 1
                for rule in rules:
                    rows = self._inner._evaluate_rule(
                        rule, db, None, None, result
                    )
                    target = db[rule.head.predicate]
                    for row in rows:
                        if target.insert(row):
                            result._record(rule.head.predicate, 1)
                            changed = True
        return result


class _EmptySource:
    """A permanently empty relation (for predicates absent from the db)."""

    def __iter__(self):
        return iter(())

    def __contains__(self, row: object) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def lookup(self, columns, values) -> frozenset[Row]:
        return frozenset()


_EMPTY_SOURCE = _EmptySource()
