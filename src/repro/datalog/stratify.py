"""Stratification of datalog programs with (safe) negation.

The internal mappings of Section 3.1 contain negation — e.g. rule (tR):
``Rt(x) and not Rr(x) -> Ro(x)`` — but only over relations that are not
recursively defined through the negation.  This module computes a
stratification: an ordered partition of the IDB predicates such that

* positive dependencies stay within or point to earlier strata, and
* negative dependencies point strictly to earlier strata.

Programs where a predicate depends negatively on itself through a cycle are
rejected with :class:`StratificationError`.  Strongly connected components
are found with Tarjan's algorithm (iterative, to avoid recursion limits on
large mapping networks).
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import DatalogError, Program, Rule


class StratificationError(DatalogError):
    """The program is not stratifiable (negation through recursion)."""


@dataclass(frozen=True)
class Stratification:
    """An ordered partition of a program's rules into strata."""

    strata: tuple[tuple[Rule, ...], ...]
    predicate_stratum: dict[str, int]

    def __len__(self) -> int:
        return len(self.strata)


def _dependency_edges(
    program: Program,
) -> tuple[set[tuple[str, str]], set[tuple[str, str]]]:
    """Return (positive, negative) edge sets: head depends on body."""
    idb = program.idb_predicates()
    positive: set[tuple[str, str]] = set()
    negative: set[tuple[str, str]] = set()
    for rule in program:
        for atom in rule.body:
            if atom.predicate not in idb:
                continue
            edge = (rule.head.predicate, atom.predicate)
            if atom.negated:
                negative.add(edge)
            else:
                positive.add(edge)
    return positive, negative


def _tarjan_sccs(
    nodes: list[str], successors: dict[str, list[str]]
) -> list[list[str]]:
    """Strongly connected components in reverse topological order."""
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for start in nodes:
        if start in index_of:
            continue
        work: list[tuple[str, int]] = [(start, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = successors.get(node, [])
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index_of:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def stratify(program: Program) -> Stratification:
    """Compute a stratification of ``program``.

    Raises :class:`StratificationError` if some predicate depends negatively
    on itself (directly or through a cycle).
    """
    idb = sorted(program.idb_predicates())
    positive, negative = _dependency_edges(program)
    successors: dict[str, list[str]] = {p: [] for p in idb}
    for head, dep in sorted(positive | negative):
        successors[head].append(dep)

    sccs = _tarjan_sccs(idb, successors)  # reverse topological order
    component_of: dict[str, int] = {}
    for comp_id, members in enumerate(sccs):
        for member in members:
            component_of[member] = comp_id

    # Negative edges within one SCC are unstratifiable.
    for head, dep in negative:
        if component_of[head] == component_of[dep]:
            raise StratificationError(
                f"predicate {head!r} depends negatively on {dep!r} within a "
                "recursive cycle; the program is not stratifiable"
            )

    # Longest-path layering over the component DAG: a component's stratum is
    # 1 + max over dependencies (strictly greater across negative edges,
    # greater-or-equal across positive ones).  Components arrive in reverse
    # topological order, so dependencies are processed first.
    stratum_of_component: dict[int, int] = {}
    for comp_id, members in enumerate(sccs):
        level = 0
        for member in members:
            for dep in successors.get(member, []):
                dep_comp = component_of[dep]
                if dep_comp == comp_id:
                    continue
                dep_level = stratum_of_component[dep_comp]
                if (member, dep) in negative:
                    level = max(level, dep_level + 1)
                else:
                    level = max(level, dep_level)
        stratum_of_component[comp_id] = level

    predicate_stratum = {
        pred: stratum_of_component[component_of[pred]] for pred in idb
    }
    if predicate_stratum:
        count = max(predicate_stratum.values()) + 1
    else:
        count = 0
    buckets: list[list[Rule]] = [[] for _ in range(count)]
    for rule in program:
        buckets[predicate_stratum[rule.head.predicate]].append(rule)
    return Stratification(
        strata=tuple(tuple(bucket) for bucket in buckets),
        predicate_stratum=predicate_stratum,
    )
