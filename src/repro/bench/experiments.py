"""Experiment drivers reproducing every figure of the paper's Section 6.

Each ``figN_*`` function regenerates the corresponding figure's data series
at a configurable scale (the defaults are laptop-sized; the paper's absolute
sizes ran on a 2007 Xeon server against DB2).  The *shape* of each result —
who wins, by roughly what factor, where crossovers fall — is what the
reproduction targets; each driver's docstring states the expected shape,
and the corresponding ``benchmarks/bench_figN_*.py`` asserts it.

Engine naming: the paper's **DB2** backend maps to
:class:`~repro.datalog.planner.CostBasedPlanner` (statistics-driven,
re-planning per round) and **Tukwila** to
:class:`~repro.datalog.planner.PreparedPlanner` (fixed heuristic prepared
plans) — see the engine-substitution table in DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..core import STRATEGY_DRED, STRATEGY_INCREMENTAL, STRATEGY_RECOMPUTE
from ..core.cdss import CDSS
from ..datalog.planner import CostBasedPlanner, Planner, PreparedPlanner
from ..workload import CDSSWorkloadGenerator, WorkloadConfig
from .harness import ExperimentResult, timed

ENGINE_DB2 = "DB2"
ENGINE_TUKWILA = "Tukwila"

ENGINES: dict[str, Callable[[], Planner]] = {
    ENGINE_DB2: CostBasedPlanner,
    ENGINE_TUKWILA: PreparedPlanner,
}


def _populated(
    peers: int,
    base_per_peer: int,
    dataset: str = "integer",
    engine: str = ENGINE_TUKWILA,
    seed: int = 0,
    extra_cycles: int = 0,
    topology: str = "chain",
    strategy: str = STRATEGY_INCREMENTAL,
) -> tuple[CDSSWorkloadGenerator, CDSS]:
    """A freshly built and populated CDSS for one experiment cell."""
    generator = CDSSWorkloadGenerator(
        WorkloadConfig(
            peers=peers,
            dataset=dataset,
            seed=seed,
            extra_cycles=extra_cycles,
            topology=topology,
        )
    )
    cdss = generator.build_cdss(
        planner=ENGINES[engine](), strategy=strategy
    )
    generator.populate(cdss, base_per_peer)
    return generator, cdss


# ---------------------------------------------------------------------------
# Figure 4 — Deletion alternatives
# ---------------------------------------------------------------------------


def fig4_deletion_alternatives(
    base_per_peer: int = 200,
    ratios: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    peers: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Complete recomputation vs. incremental (PropagateDelete) vs. DRed,
    across deletion ratios — the paper's Figure 4 (5 peers, full mappings,
    2000 base tuples per peer at paper scale)."""
    result = ExperimentResult(
        "fig4",
        "deletion alternatives: time (s) vs. ratio of deletions to base data",
    )
    for ratio in ratios:
        count = max(1, int(base_per_peer * ratio))
        for strategy in (
            STRATEGY_RECOMPUTE,
            STRATEGY_INCREMENTAL,
            STRATEGY_DRED,
        ):
            generator, cdss = _populated(
                peers, base_per_peer, seed=seed, strategy=strategy
            )
            generator.record_deletions(
                cdss, generator.deletions(per_peer=count)
            )
            report, seconds = timed(cdss.update_exchange)
            result.add(
                {"ratio": ratio, "strategy": strategy},
                seconds=seconds,
                deleted=float(report.deleted),
            )
    return result


# ---------------------------------------------------------------------------
# Figures 5 & 6 — Time to join the system; initial instance sizes
# ---------------------------------------------------------------------------


def fig5_time_to_join(
    peer_counts: Sequence[int] = (2, 5, 10),
    base_per_peer: int = 100,
    datasets: Sequence[str] = ("integer", "string"),
    engines: Sequence[str] = (ENGINE_DB2, ENGINE_TUKWILA),
    seed: int = 0,
) -> ExperimentResult:
    """Time for the initial full computation when a peer joins (Figure 5)."""
    result = ExperimentResult(
        "fig5", "time to join system (s) vs. number of peers"
    )
    for dataset in datasets:
        for engine in engines:
            for peers in peer_counts:
                generator = CDSSWorkloadGenerator(
                    WorkloadConfig(peers=peers, dataset=dataset, seed=seed)
                )
                cdss = generator.build_cdss(planner=ENGINES[engine]())
                generator.record_insertions(
                    cdss, generator.insertions(base_per_peer)
                )
                _, seconds = timed(cdss.update_exchange)
                result.add(
                    {"peers": peers, "dataset": dataset, "engine": engine},
                    seconds=seconds,
                )
    return result


def fig6_instance_size(
    peer_counts: Sequence[int] = (2, 5, 10),
    base_per_peer: int = 100,
    seed: int = 0,
) -> ExperimentResult:
    """Initial instance sizes: #tuples and DB bytes, string vs. integer
    (Figure 6)."""
    result = ExperimentResult(
        "fig6", "initial instance size vs. number of peers"
    )
    for peers in peer_counts:
        tuples_by_dataset: dict[str, int] = {}
        for dataset in ("integer", "string"):
            _, cdss = _populated(peers, base_per_peer, dataset, seed=seed)
            system = cdss.system()
            tuples_by_dataset[dataset] = system.total_tuples()
            result.add(
                {"peers": peers, "dataset": dataset},
                tuples=float(system.total_tuples()),
                bytes=float(system.estimated_bytes()),
            )
        # The tuple count is dataset-independent (same data shape) — the
        # paper plots a single "#tuples" series.  A real raise, so the
        # sanity check survives ``python -O`` benchmark runs.
        if tuples_by_dataset["integer"] != tuples_by_dataset["string"]:
            raise RuntimeError(
                "tuple counts should not depend on the dataset variant: "
                f"{tuples_by_dataset!r}"
            )
    return result


# ---------------------------------------------------------------------------
# Figures 7, 8, 9 — Incremental insertion / deletion scalability
# ---------------------------------------------------------------------------


def _insertion_scalability(
    dataset: str,
    peer_counts: Sequence[int],
    base_per_peer: int,
    fractions: Sequence[float],
    engines: Sequence[str],
    seed: int,
    name: str,
    description: str,
) -> ExperimentResult:
    result = ExperimentResult(name, description)
    for engine in engines:
        for peers in peer_counts:
            for fraction in fractions:
                generator, cdss = _populated(
                    peers, base_per_peer, dataset, engine, seed=seed
                )
                count = max(1, int(base_per_peer * fraction))
                generator.record_insertions(
                    cdss, generator.insertions(per_peer=count)
                )
                _, seconds = timed(cdss.update_exchange)
                result.add(
                    {
                        "peers": peers,
                        "engine": engine,
                        "fraction": fraction,
                    },
                    seconds=seconds,
                )
    return result


def fig7_insertions_string(
    peer_counts: Sequence[int] = (2, 5, 10),
    base_per_peer: int = 100,
    fractions: Sequence[float] = (0.01, 0.10),
    engines: Sequence[str] = (ENGINE_DB2, ENGINE_TUKWILA),
    seed: int = 0,
) -> ExperimentResult:
    """Incremental insertion scalability on the string dataset (Figure 7)."""
    return _insertion_scalability(
        "string",
        peer_counts,
        base_per_peer,
        fractions,
        engines,
        seed,
        "fig7",
        "incremental insertions (string dataset): time (s) vs. peers",
    )


def fig8_insertions_integer(
    peer_counts: Sequence[int] = (2, 5, 10, 20),
    base_per_peer: int = 100,
    fractions: Sequence[float] = (0.01, 0.10),
    engines: Sequence[str] = (ENGINE_DB2, ENGINE_TUKWILA),
    seed: int = 0,
) -> ExperimentResult:
    """Incremental insertion scalability on the integer dataset (Figure 8)."""
    return _insertion_scalability(
        "integer",
        peer_counts,
        base_per_peer,
        fractions,
        engines,
        seed,
        "fig8",
        "incremental insertions (integer dataset): time (s) vs. peers",
    )


def fig9_deletions(
    peer_counts: Sequence[int] = (2, 5, 10, 20),
    base_per_peer: int = 100,
    fractions: Sequence[float] = (0.01, 0.10),
    datasets: Sequence[str] = ("integer", "string"),
    seed: int = 0,
) -> ExperimentResult:
    """Incremental deletion scalability (Figure 9; DB2 engine only in the
    paper, since the Tukwila backend lacked deletions)."""
    result = ExperimentResult(
        "fig9", "incremental deletions: time (s) vs. peers"
    )
    for dataset in datasets:
        for peers in peer_counts:
            for fraction in fractions:
                generator, cdss = _populated(
                    peers, base_per_peer, dataset, ENGINE_DB2, seed=seed
                )
                count = max(1, int(base_per_peer * fraction))
                generator.record_deletions(
                    cdss, generator.deletions(per_peer=count)
                )
                _, seconds = timed(cdss.update_exchange)
                result.add(
                    {
                        "peers": peers,
                        "dataset": dataset,
                        "fraction": fraction,
                    },
                    seconds=seconds,
                )
    return result


# ---------------------------------------------------------------------------
# Figure 10 — Effect of cycles
# ---------------------------------------------------------------------------


def fig10_cycles(
    cycle_counts: Sequence[int] = (0, 1, 2, 3),
    peers: int = 5,
    base_per_peer: int = 40,
    insert_per_peer: int = 4,
    engines: Sequence[str] = (ENGINE_DB2, ENGINE_TUKWILA),
    seed: int = 0,
) -> ExperimentResult:
    """Insertion cost and fixpoint size as mapping cycles are added
    (Figure 10: 5 peers, ~2 neighbours each, manually added cycles)."""
    result = ExperimentResult(
        "fig10", "effect of cycles: time (s) and fixpoint #tuples"
    )
    for cycles in cycle_counts:
        for engine in engines:
            generator, cdss = _populated(
                peers,
                base_per_peer,
                "integer",
                engine,
                seed=seed,
                extra_cycles=cycles,
                topology="pairs",
            )
            generator.record_insertions(
                cdss, generator.insertions(per_peer=insert_per_peer)
            )
            _, seconds = timed(cdss.update_exchange)
            result.add(
                {"cycles": cycles, "engine": engine},
                seconds=seconds,
                tuples=float(cdss.system().total_tuples()),
            )
    return result


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------


def ablation_encoding(
    peers: int = 4,
    base_per_peer: int = 80,
    seed: int = 0,
) -> ExperimentResult:
    """Composite mapping tables vs. per-rule provenance tables (the
    alternative the paper compared in Section 5 'Provenance storage')."""
    from ..provenance import ENCODING_COMPOSITE, ENCODING_PER_RULE

    result = ExperimentResult(
        "ablation-encoding", "provenance encoding styles: join time (s)"
    )
    for style in (ENCODING_COMPOSITE, ENCODING_PER_RULE):
        generator = CDSSWorkloadGenerator(
            WorkloadConfig(peers=peers, dataset="integer", seed=seed)
        )
        cdss = generator.build_cdss(encoding_style=style)
        generator.record_insertions(
            cdss, generator.insertions(base_per_peer)
        )
        _, seconds = timed(cdss.update_exchange)
        tables = len(cdss.system().encoding.tables)
        result.add(
            {"style": style},
            seconds=seconds,
            prov_tables=float(tables),
        )
    return result


def ablation_planner(
    peers: int = 5,
    base_per_peer: int = 150,
    small_update: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Prepared vs. cost-based planning on bulk loads vs. small updates —
    the Section 5.1/5.2 trade-off behind Figures 5, 7 and 8."""
    result = ExperimentResult(
        "ablation-planner", "planner trade-off: bulk load vs. small update"
    )
    for engine in (ENGINE_DB2, ENGINE_TUKWILA):
        generator, cdss = _populated(
            peers, base_per_peer, "integer", engine, seed=seed
        )
        bulk_seconds = cdss.exchange_reports[-1].seconds
        generator.record_insertions(
            cdss, generator.insertions(per_peer=small_update)
        )
        _, small_seconds = timed(cdss.update_exchange)
        result.add(
            {"engine": engine, "phase": "bulk"}, seconds=bulk_seconds
        )
        result.add(
            {"engine": engine, "phase": "small"}, seconds=small_seconds
        )
    return result
