"""Benchmark harness and figure-reproduction drivers (paper Section 6)."""

from .experiments import (
    ENGINE_DB2,
    ENGINE_TUKWILA,
    ENGINES,
    ablation_encoding,
    ablation_planner,
    fig4_deletion_alternatives,
    fig5_time_to_join,
    fig6_instance_size,
    fig7_insertions_string,
    fig8_insertions_integer,
    fig9_deletions,
    fig10_cycles,
)
from .harness import ExperimentResult, Measurement, monotone_nondecreasing, timed

__all__ = [
    "ENGINES",
    "ENGINE_DB2",
    "ENGINE_TUKWILA",
    "ExperimentResult",
    "Measurement",
    "ablation_encoding",
    "ablation_planner",
    "fig10_cycles",
    "fig4_deletion_alternatives",
    "fig5_time_to_join",
    "fig6_instance_size",
    "fig7_insertions_string",
    "fig8_insertions_integer",
    "fig9_deletions",
    "monotone_nondecreasing",
    "timed",
]
