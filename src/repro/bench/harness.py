"""Measurement harness shared by the figure-reproduction benchmarks.

Provides small structured containers for experiment results plus ASCII table
rendering, so every ``benchmarks/bench_figN_*.py`` prints the same rows or
series the paper's figure reports.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable


def efficiency_snapshot() -> dict[str, object]:
    """Work-per-resource accounting for ``BENCH_*.json`` files.

    The greenness literature (PAPERS.md, "Beyond Performance") argues
    latency alone hides resource cost; every benchmark series therefore
    records process CPU seconds (:func:`time.process_time`), peak RSS
    (``resource.getrusage``; kilobytes on Linux), and cumulative GC
    collections alongside its wall-clock metrics.  Call once at the end
    of a run — the values are process-cumulative, so deltas between two
    snapshots bound one phase.
    """
    peak_rss_kb: int | None = None
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        peak = usage.ru_maxrss
        # ru_maxrss is bytes on macOS, kilobytes on Linux.
        peak_rss_kb = peak // 1024 if sys.platform == "darwin" else peak
    except (ImportError, OSError):  # pragma: no cover - non-POSIX
        pass
    gc_stats = gc.get_stats()
    tracemalloc_peak_kb: int | None = None
    try:
        import tracemalloc

        if tracemalloc.is_tracing():
            _, traced_peak = tracemalloc.get_traced_memory()
            tracemalloc_peak_kb = traced_peak // 1024
    except ImportError:  # pragma: no cover - tracemalloc is stdlib
        pass
    return {
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "process_cpu_seconds": time.process_time(),
        "peak_rss_kb": peak_rss_kb,
        "gc_collections": sum(s["collections"] for s in gc_stats),
        # Allocation churn: gen-0 collections approximate how often the
        # young generation filled; allocated_blocks is the live count.
        "gc_gen0_collections": gc_stats[0]["collections"] if gc_stats else 0,
        "allocated_blocks": sys.getallocatedblocks(),
        # Only populated when the caller started tracemalloc (it is far
        # too slow to turn on by default inside benchmarks).
        "tracemalloc_peak_kb": tracemalloc_peak_kb,
    }


def rows_per_cpu_second(rows: float, cpu_seconds: float) -> float:
    """Rows of useful output per CPU second (0 when unmeasurably fast)."""
    return rows / cpu_seconds if cpu_seconds > 0 else 0.0


def phase_efficiency_table(
    phases: dict[str, dict[str, float]], title: str = "phase efficiency"
) -> str:
    """Per-phase work-per-resource summary as an aligned ASCII table.

    ``phases`` maps phase name to a dict with ``rows`` and
    ``cpu_seconds`` (``wall_seconds`` optional); the table adds the
    derived ``rows_per_cpu_s`` column.  Benchmarks print this at the end
    of a run so every series closes with a resource-efficiency readout.
    """
    headers = ("phase", "rows", "wall_s", "cpu_s", "rows_per_cpu_s")
    rows = []
    for phase, values in phases.items():
        count = float(values.get("rows", 0.0))
        cpu = float(values.get("cpu_seconds", 0.0))
        wall = float(values.get("wall_seconds", 0.0))
        rows.append(
            (
                phase,
                f"{count:.0f}",
                f"{wall:.4f}",
                f"{cpu:.4f}",
                f"{rows_per_cpu_second(count, cpu):.0f}",
            )
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        f"== {title} ==",
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def efficiency_footer() -> str:
    """One-line cumulative resource readout for the end of a bench run."""
    snapshot = efficiency_snapshot()
    return (
        f"[efficiency] cpu={snapshot['process_cpu_seconds']:.2f}s"
        f" peak_rss={snapshot['peak_rss_kb']}kB"
        f" gc_gen0={snapshot['gc_gen0_collections']}"
        f" allocated_blocks={snapshot['allocated_blocks']}"
    )


@dataclass(frozen=True)
class Measurement:
    """One data point of an experiment: parameters -> metrics."""

    params: dict[str, object]
    metrics: dict[str, float]

    def param(self, key: str) -> object:
        return self.params[key]

    def metric(self, key: str) -> float:
        return self.metrics[key]


@dataclass
class ExperimentResult:
    """All measurements of one figure reproduction."""

    name: str
    description: str
    measurements: list[Measurement] = field(default_factory=list)

    def add(self, params: dict[str, object], **metrics: float) -> Measurement:
        measurement = Measurement(dict(params), dict(metrics))
        self.measurements.append(measurement)
        return measurement

    def series(
        self, x: str, y: str, **fixed: object
    ) -> list[tuple[object, float]]:
        """(x, y) points for the measurements matching ``fixed`` params."""
        points = []
        for m in self.measurements:
            if all(m.params.get(k) == v for k, v in fixed.items()):
                points.append((m.params[x], m.metrics[y]))
        return sorted(points, key=lambda p: (str(type(p[0])), p[0]))

    def value(self, y: str, **fixed: object) -> float:
        matches = [
            m.metrics[y]
            for m in self.measurements
            if all(m.params.get(k) == v for k, v in fixed.items())
        ]
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} measurements match {fixed!r} in {self.name}"
            )
        return matches[0]

    def to_table(self) -> str:
        """Render all measurements as an aligned ASCII table."""
        if not self.measurements:
            return f"{self.name}: (no measurements)"
        param_keys = sorted(
            {k for m in self.measurements for k in m.params}
        )
        metric_keys = sorted(
            {k for m in self.measurements for k in m.metrics}
        )
        headers = param_keys + metric_keys
        rows = []
        for m in self.measurements:
            row = [str(m.params.get(k, "")) for k in param_keys]
            for k in metric_keys:
                value = m.metrics.get(k)
                row.append("" if value is None else f"{value:.4f}")
            rows.append(row)
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows))
            for i in range(len(headers))
        ]
        lines = [
            f"== {self.name}: {self.description} ==",
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)

    def print_table(self) -> None:
        print()
        print(self.to_table())
        print(efficiency_footer())

    def to_json_dict(self) -> dict[str, object]:
        """A JSON-serializable view (for ``BENCH_*.json`` perf-trajectory
        files).  Every series carries an ``efficiency`` block (CPU
        seconds, peak RSS, GC work) next to its wall-clock metrics."""
        return {
            "format": "repro/experiment-result@1",
            "name": self.name,
            "description": self.description,
            "efficiency": efficiency_snapshot(),
            "measurements": [
                {"params": dict(m.params), "metrics": dict(m.metrics)}
                for m in self.measurements
            ],
        }

    def write_json(self, path: str | Path) -> Path:
        """Write :meth:`to_json_dict` to ``path``; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_json_dict(), indent=2) + "\n")
        return path


def timed(fn: Callable[[], object]) -> tuple[object, float]:
    """Run ``fn`` once, returning (result, wall seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def monotone_nondecreasing(values: Iterable[float], slack: float = 0.0) -> bool:
    """True if the sequence never drops by more than ``slack`` (relative).

    Benchmarks use this for qualitative shape assertions ("time grows with
    #peers") while tolerating measurement noise.
    """
    values = list(values)
    for previous, current in zip(values, values[1:]):
        if current < previous * (1.0 - slack):
            return False
    return True
