"""repro — a complete reproduction of *Update Exchange with Mappings and
Provenance* (Green, Karvounarakis, Ives, Tannen; VLDB 2007 / UPenn TR
MS-CIS-07-26): the ORCHESTRA collaborative data sharing system.

Quickstart::

    from repro import CDSS

    cdss = CDSS("bio")
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    cdss.insert("G", (3, 5, 2))
    cdss.update_exchange()
    print(cdss.instance("B"))          # {(3, 2)}
    print(cdss.provenance_of("B", (3, 2)))

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from .core import (
    CDSS,
    STRATEGY_DRED,
    STRATEGY_INCREMENTAL,
    STRATEGY_RECOMPUTE,
    ExchangeSystem,
)
from .provenance import (
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    TropicalSemiring,
    TrustCondition,
    TrustPolicy,
    WhySemiring,
)
from .schema import PeerSchema, RelationSchema, SchemaMapping

__version__ = "1.0.0"

__all__ = [
    "BooleanSemiring",
    "CDSS",
    "CountingSemiring",
    "ExchangeSystem",
    "LineageSemiring",
    "PeerSchema",
    "RelationSchema",
    "STRATEGY_DRED",
    "STRATEGY_INCREMENTAL",
    "STRATEGY_RECOMPUTE",
    "SchemaMapping",
    "TropicalSemiring",
    "TrustCondition",
    "TrustPolicy",
    "WhySemiring",
    "__version__",
]
