"""repro — a complete reproduction of *Update Exchange with Mappings and
Provenance* (Green, Karvounarakis, Ives, Tannen; VLDB 2007 / UPenn TR
MS-CIS-07-26): the ORCHESTRA collaborative data sharing system.

Quickstart (the peer-centric v2 API)::

    from repro import CDSS

    cdss = CDSS("bio")
    pgus = cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    pbio = cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    with pgus.batch() as tx:
        tx.insert("G", (3, 5, 2))
    cdss.update_exchange()
    B = pbio.relation("B")
    print(sorted(B))                   # [(3, 2)]
    print(B.provenance((3, 2)))

Whole systems round-trip through declarative JSON specs::

    cdss.to_spec().save("bio.json")    # python -m repro run bio.json

See DESIGN.md for the API layering (including the old-facade migration
table) and the docstrings in :mod:`repro.bench.experiments` for the
paper-figure reproductions.
"""

from .api import (
    AnswerSet,
    Batch,
    BatchError,
    DurabilitySpec,
    EditSpec,
    MappingSpec,
    PeerHandle,
    PeerSpec,
    PreparedProgram,
    PreparedQuery,
    Query,
    RelationSpec,
    RelationView,
    SpecError,
    SystemSpec,
    TrustScope,
    col,
    param,
)
from .core import (
    CDSS,
    STRATEGY_DRED,
    STRATEGY_INCREMENTAL,
    STRATEGY_RECOMPUTE,
    STRATEGY_UNIFIED,
    ExchangeSystem,
)
from .durability import DurableNode, WriteAheadLog
from .storage import SQLiteStore, ZSet
from .provenance import (
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    TropicalSemiring,
    TrustCondition,
    TrustPolicy,
    WhySemiring,
)
from .schema import PeerSchema, RelationSchema, SchemaMapping

__version__ = "2.0.0"

__all__ = [
    "AnswerSet",
    "Batch",
    "BatchError",
    "BooleanSemiring",
    "CDSS",
    "CountingSemiring",
    "DurabilitySpec",
    "DurableNode",
    "EditSpec",
    "ExchangeSystem",
    "LineageSemiring",
    "MappingSpec",
    "PeerHandle",
    "PreparedProgram",
    "PeerSchema",
    "PeerSpec",
    "PreparedQuery",
    "Query",
    "RelationSchema",
    "RelationSpec",
    "RelationView",
    "SQLiteStore",
    "STRATEGY_DRED",
    "STRATEGY_INCREMENTAL",
    "STRATEGY_RECOMPUTE",
    "STRATEGY_UNIFIED",
    "SchemaMapping",
    "ZSet",
    "SpecError",
    "SystemSpec",
    "TropicalSemiring",
    "TrustCondition",
    "TrustPolicy",
    "TrustScope",
    "WhySemiring",
    "WriteAheadLog",
    "__version__",
    "col",
    "param",
]
