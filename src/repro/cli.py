"""Command-line interface: run specs, queries, the paper's experiments.

Usage::

    python -m repro quickstart            # the paper's running example
    python -m repro run bio.json          # execute a declarative SystemSpec
    python -m repro query bio.json 'ans(x, y) :- U(x, z), U(y, z)'
    python -m repro serve bio.json --port 8080   # HTTP+JSON serving tier
    python -m repro serve bio.json --data-dir n/ # durable, crash-recoverable
    python -m repro stats http://127.0.0.1:8080 --watch  # live stat deltas
    python -m repro run bio.json --verbose --trace t.jsonl  # phase timings
    python -m repro fig4 --scale 0.5      # reproduce one figure
    python -m repro all --scale 0.25      # every figure + ablations
    python -m repro list                  # what is available

``run`` loads a :class:`~repro.api.spec.SystemSpec` JSON document (as
written by ``cdss.to_spec().save(path)``), performs one update exchange,
and prints every relation's local instance.  ``query`` does the same but
then answers one conjunctive query through the prepared-query subsystem
(modes: certain / with-nulls / annotated; ``--param name=value`` binds
parameterized variables).

Each figure command regenerates the corresponding data series from
Section 6 and prints it as a table (the docstrings in
:mod:`repro.bench.experiments` describe the shapes the series should
exhibit).  ``--scale`` multiplies the default workload sizes.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .bench import (
    ablation_encoding,
    ablation_planner,
    fig4_deletion_alternatives,
    fig5_time_to_join,
    fig6_instance_size,
    fig7_insertions_string,
    fig8_insertions_integer,
    fig9_deletions,
    fig10_cycles,
)
from .bench.harness import ExperimentResult


def _scaled(n: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(n * scale))


def _run_fig4(scale: float) -> ExperimentResult:
    return fig4_deletion_alternatives(base_per_peer=_scaled(120, scale))


def _run_fig5(scale: float) -> ExperimentResult:
    return fig5_time_to_join(base_per_peer=_scaled(80, scale))


def _run_fig6(scale: float) -> ExperimentResult:
    return fig6_instance_size(base_per_peer=_scaled(80, scale))


def _run_fig7(scale: float) -> ExperimentResult:
    return fig7_insertions_string(base_per_peer=_scaled(80, scale))


def _run_fig8(scale: float) -> ExperimentResult:
    return fig8_insertions_integer(base_per_peer=_scaled(80, scale))


def _run_fig9(scale: float) -> ExperimentResult:
    return fig9_deletions(base_per_peer=_scaled(80, scale))


def _run_fig10(scale: float) -> ExperimentResult:
    return fig10_cycles(
        base_per_peer=_scaled(30, scale), insert_per_peer=_scaled(4, scale)
    )


def _run_ablation_encoding(scale: float) -> ExperimentResult:
    return ablation_encoding(base_per_peer=_scaled(60, scale))


def _run_ablation_planner(scale: float) -> ExperimentResult:
    return ablation_planner(base_per_peer=_scaled(120, scale))


EXPERIMENTS: dict[str, tuple[str, Callable[[float], ExperimentResult]]] = {
    "fig4": ("deletion alternatives (incremental / DRed / recompute)", _run_fig4),
    "fig5": ("time to join the system", _run_fig5),
    "fig6": ("initial instance sizes", _run_fig6),
    "fig7": ("incremental insertions, string dataset", _run_fig7),
    "fig8": ("incremental insertions, integer dataset", _run_fig8),
    "fig9": ("incremental deletions", _run_fig9),
    "fig10": ("effect of mapping cycles", _run_fig10),
    "ablation-encoding": (
        "composite vs. per-rule provenance tables",
        _run_ablation_encoding,
    ),
    "ablation-planner": (
        "cost-based vs. prepared planning",
        _run_ablation_planner,
    ),
}


def _quickstart() -> None:
    """Inline version of examples/quickstart.py for `python -m repro`."""
    from . import CDSS

    cdss = CDSS("bioinformatics")
    cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    cdss.add_peer("PBioSQL", {"B": ("id", "nam")})
    cdss.add_peer("PuBio", {"U": ("nam", "can")})
    cdss.add_mapping("m1", "G(i, c, n) -> B(i, n)")
    cdss.add_mapping("m2", "G(i, c, n) -> U(n, c)")
    cdss.add_mapping("m3", "B(i, n) -> exists c . U(n, c)")
    cdss.add_mapping("m4", "B(i, c), U(n, c) -> B(i, n)")
    with cdss.batch() as tx:
        tx.insert("G", (1, 2, 3))
        tx.insert("G", (3, 5, 2))
        tx.insert("B", (3, 5))
        tx.insert("U", (2, 5))
    report = cdss.update_exchange()
    print(f"update exchange: {report.inserted} tuples in {report.seconds:.4f}s")
    for relation in ("G", "B", "U"):
        print(f"  {relation}: {sorted(cdss.relation(relation), key=repr)}")
    print(f"Pv(B(3,2)) = {cdss.relation('B').provenance((3, 2))}")
    print(
        "certain answers to ans(x,y) :- U(x,z), U(y,z):",
        sorted(cdss.query("ans(x, y) :- U(x, z), U(y, z)")),
    )


def _load_spec(path: str, index_policy: str | None, workers: int | None):
    """Load a SystemSpec, optionally overriding engine options."""
    from dataclasses import replace

    from .api.spec import SystemSpec

    spec = SystemSpec.load(path)
    if index_policy is not None:
        spec = replace(spec, index_policy=index_policy)
    if workers is not None:
        spec = replace(spec, workers=workers)
    return spec


def _print_phase_table(report) -> None:
    """Render ``ExchangeReport.phases`` as a wall/CPU-seconds table."""
    print("phase          wall_s      cpu_s")
    for phase, clocks in report.phases.items():
        print(
            f"{phase:<12} {clocks.get('wall_seconds', 0.0):>9.4f}  "
            f"{clocks.get('cpu_seconds', 0.0):>9.4f}"
        )
    print(f"{'total':<12} {report.seconds:>9.4f}  {report.cpu_seconds:>9.4f}")


def _run_spec(
    path: str,
    strategy: str | None,
    index_policy: str | None,
    workers: int | None,
    verbose: bool = False,
    trace: str | None = None,
) -> int:
    """Execute a declarative SystemSpec JSON: build, exchange, print."""
    from . import CDSS, SpecError
    from .datalog.ast import DatalogError  # covers ParseError, SafetyError
    from .schema import SchemaError

    if trace is not None:
        from .obs import tracing

        tracing.enable(trace)
    try:
        cdss = CDSS.from_spec(_load_spec(path, index_policy, workers))
        # Schema validation (e.g. weak acyclicity) fires lazily on first use.
        report = cdss.update_exchange(strategy=strategy)
    except (OSError, SpecError, DatalogError, SchemaError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        f"{cdss!r}: update exchange ({report.strategy}) derived "
        f"{report.inserted} tuples in {report.seconds:.4f}s"
    )
    if verbose:
        _print_phase_table(report)
    for peer in cdss.peer_handles():
        print(f"{peer.name}:")
        for relation in peer.relations():
            rows = sorted(peer.relation(relation), key=repr)
            print(f"  {relation}: {rows}")
    if trace is not None:
        print(f"trace written to {trace}")
    return 0


def _parse_param_value(text: str) -> object:
    """CLI parameter literal: int / float when they parse, else string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _run_query(
    path: str,
    text: str,
    mode: str,
    params: list[str],
    strategy: str | None,
    index_policy: str | None,
    workers: int | None,
) -> int:
    """Build a CDSS from a spec, exchange, and answer one query."""
    from . import CDSS, SpecError
    from .core.query import QueryError
    from .datalog.ast import DatalogError  # covers ParseError, SafetyError
    from .schema import SchemaError

    bindings: dict[str, object] = {}
    for item in params:
        name, eq, value = item.partition("=")
        if not eq or not name:
            print(
                f"error: --param expects NAME=VALUE, got {item!r}",
                file=sys.stderr,
            )
            return 1
        bindings[name] = _parse_param_value(value)
    try:
        cdss = CDSS.from_spec(_load_spec(path, index_policy, workers))
        cdss.update_exchange(strategy=strategy)
        prepared = cdss.prepare(text, params=tuple(bindings))
        answers = prepared.execute(**bindings)
        if mode == "with-nulls":
            answers = answers.with_nulls()
        if mode == "annotated":
            for row, annotation in answers.annotated().items():
                print(f"{row!r}  <-  {annotation!r}")
        else:
            for row in sorted(answers, key=repr):
                print(repr(row))
    except (OSError, SpecError, DatalogError, SchemaError, QueryError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Boot the serving tier (`python -m repro serve spec.json --port N`)."""
    from . import CDSS, SpecError
    from .datalog.ast import DatalogError
    from .schema import SchemaError
    from .serve import run as serve_run
    from .storage.instance import StorageError

    if args.trace is not None:
        from .obs import tracing

        tracing.enable(args.trace)
    try:
        spec = _load_spec(args.spec, args.index_policy, args.workers)
        durability = spec.durability
        data_dir = args.data_dir or (
            durability.path if durability is not None else None
        )
        node = None
        if data_dir is not None:
            from .durability import DurableNode

            fsync = args.fsync or (
                durability.fsync if durability is not None else "always"
            )
            checkpoint_every = args.checkpoint_every
            if checkpoint_every is None:
                checkpoint_every = (
                    durability.checkpoint_every
                    if durability is not None
                    else 0
                )
            # Recover the node if the directory exists, else initialize
            # it (spec edits land in the initial checkpoint).
            node = DurableNode.launch(
                spec,
                data_dir,
                fsync=fsync,
                checkpoint_every=checkpoint_every,
            )
            cdss = node.cdss
            if not args.no_exchange and not node.recovered:
                # Fresh node: publish the spec's seed edits so the first
                # pinned snapshot is a consistent fixpoint.  A recovered
                # node restarts exactly as it crashed — staged-but-
                # unpublished edits stay staged.
                node.publish(strategy=args.strategy)
        else:
            cdss = CDSS.from_spec(spec)
            if not args.no_exchange:
                # Start from a consistent fixpoint: the first pinned
                # snapshot must already reflect the spec's seed data.
                cdss.update_exchange(strategy=args.strategy)
        serve_run(
            cdss,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            timeout=args.timeout,
            readers=args.readers,
            duration=args.duration,
            node=node,
        )
    except (OSError, SpecError, DatalogError, SchemaError, StorageError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        pass
    return 0


def _flatten_stats(stats: object, prefix: str = "") -> dict[str, object]:
    """Flatten a nested stats document into dotted scalar keys."""
    flat: dict[str, object] = {}
    if isinstance(stats, dict):
        for key in sorted(stats):
            flat.update(_flatten_stats(stats[key], f"{prefix}{key}."))
    else:
        flat[prefix[:-1]] = stats
    return flat


def _run_stats(args: argparse.Namespace) -> int:
    """`repro stats URL [--watch]`: print a node's stats, then deltas."""
    import time as _time

    from .obs.schema import normalize
    from .serve.client import ServeClient, ServeHTTPError

    try:
        with ServeClient.from_url(args.url, timeout=10.0) as client:
            previous = _flatten_stats(normalize(client.stats()))
            width = max(len(k) for k in previous) if previous else 0
            for key, value in previous.items():
                if isinstance(value, float):
                    value = round(value, 6)
                print(f"{key:<{width}}  {value}")
            if not args.watch:
                return 0
            while True:
                _time.sleep(args.interval)
                current = _flatten_stats(normalize(client.stats()))
                deltas = []
                for key, value in current.items():
                    before = previous.get(key)
                    if value == before:
                        continue
                    if isinstance(value, (int, float)) and isinstance(
                        before, (int, float)
                    ):
                        change = value - before
                        deltas.append(
                            f"{key} {round(value, 6)} ({change:+.6g})"
                        )
                    else:
                        deltas.append(f"{key} {value}")
                stamp = _time.strftime("%H:%M:%S")
                if deltas:
                    print(f"-- {stamp}")
                    for line in deltas:
                        print(f"  {line}")
                else:
                    print(f"-- {stamp} (no change)")
                previous = current
    except (ConnectionError, OSError, ServeHTTPError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Update Exchange with Mappings and Provenance' "
            "(VLDB 2007) — run the paper's running example or regenerate "
            "its experimental figures."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("quickstart", help="run the paper's running example")
    run_cmd = sub.add_parser(
        "run", help="build and exchange a CDSS from a SystemSpec JSON"
    )
    run_cmd.add_argument("spec", help="path to a spec JSON file")
    run_cmd.add_argument(
        "--strategy",
        choices=("unified", "incremental", "dred", "recompute"),
        default=None,
        help="override the spec's maintenance strategy",
    )
    run_cmd.add_argument(
        "--index-policy",
        choices=("eager", "deferred"),
        default=None,
        help="override the spec's storage index-maintenance policy",
    )
    run_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="override the spec's evaluation worker count (1 = sequential)",
    )
    run_cmd.add_argument(
        "--verbose",
        action="store_true",
        help="print per-phase wall/CPU seconds of the exchange",
    )
    run_cmd.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="export exchange trace spans as JSONL to PATH",
    )
    query_cmd = sub.add_parser(
        "query",
        help="answer a conjunctive query over a SystemSpec's instances",
    )
    query_cmd.add_argument("spec", help="path to a spec JSON file")
    query_cmd.add_argument(
        "text", help="datalog query, e.g. 'ans(x, y) :- U(x, z), U(y, z)'"
    )
    query_cmd.add_argument(
        "--mode",
        choices=("certain", "with-nulls", "annotated"),
        default="certain",
        help="answer mode (default: certain answers, labeled nulls dropped)",
    )
    query_cmd.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="bind a query parameter (variable NAME); repeatable",
    )
    query_cmd.add_argument(
        "--strategy",
        choices=("unified", "incremental", "dred", "recompute"),
        default=None,
        help="override the spec's maintenance strategy",
    )
    query_cmd.add_argument(
        "--index-policy",
        choices=("eager", "deferred"),
        default=None,
        help="override the spec's storage index-maintenance policy",
    )
    query_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="override the spec's evaluation worker count (1 = sequential)",
    )
    serve_cmd = sub.add_parser(
        "serve",
        help="serve a SystemSpec over HTTP+JSON (snapshot-isolated reads)",
    )
    serve_cmd.add_argument("spec", help="path to a spec JSON file")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port (0 picks a free port; the actual URL is printed)",
    )
    serve_cmd.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="admission: concurrent executions before queueing (default 64)",
    )
    serve_cmd.add_argument(
        "--max-queue",
        type=int,
        default=128,
        metavar="N",
        help="admission: queued requests before 503 rejection (default 128)",
    )
    serve_cmd.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request execution timeout (default 30s)",
    )
    serve_cmd.add_argument(
        "--readers",
        type=int,
        default=4,
        metavar="N",
        help="reader thread-pool size (default 4)",
    )
    serve_cmd.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="auto-shutdown after this many seconds (default: run forever)",
    )
    serve_cmd.add_argument(
        "--no-exchange",
        action="store_true",
        help="skip the initial update exchange before serving",
    )
    serve_cmd.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help=(
            "serve durably from this node directory: recover it if it "
            "exists, else initialize it from the spec (overrides the "
            "spec's durability.path)"
        ),
    )
    serve_cmd.add_argument(
        "--fsync",
        choices=("always", "never"),
        default=None,
        help="write-ahead-log fsync policy (default: spec's, else always)",
    )
    serve_cmd.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "checkpoint after every N publishes (0 = only on graceful "
            "shutdown; default: spec's durability setting)"
        ),
    )
    serve_cmd.add_argument(
        "--strategy",
        choices=("unified", "incremental", "dred", "recompute"),
        default=None,
        help="maintenance strategy for the initial exchange",
    )
    serve_cmd.add_argument(
        "--index-policy",
        choices=("eager", "deferred"),
        default=None,
        help="override the spec's storage index-maintenance policy",
    )
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="override the spec's evaluation worker count (1 = sequential)",
    )
    serve_cmd.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="export publish trace spans as JSONL to PATH",
    )
    stats_cmd = sub.add_parser(
        "stats",
        help="print a serving node's /stats (normalized); --watch for deltas",
    )
    stats_cmd.add_argument("url", help="node URL, e.g. http://127.0.0.1:8080")
    stats_cmd.add_argument(
        "--watch",
        action="store_true",
        help="keep polling and print per-tick counter deltas",
    )
    stats_cmd.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="polling interval with --watch (default 2s)",
    )
    sub.add_parser("list", help="list available experiments")
    for name, (description, _) in EXPERIMENTS.items():
        cmd = sub.add_parser(name, help=description)
        cmd.add_argument(
            "--scale",
            type=float,
            default=1.0,
            help="workload size multiplier (default 1.0)",
        )
    all_cmd = sub.add_parser("all", help="run every experiment")
    all_cmd.add_argument("--scale", type=float, default=1.0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "quickstart":
        _quickstart()
        return 0
    if args.command == "run":
        return _run_spec(
            args.spec,
            args.strategy,
            args.index_policy,
            args.workers,
            verbose=args.verbose,
            trace=args.trace,
        )
    if args.command == "query":
        return _run_query(
            args.spec,
            args.text,
            args.mode,
            args.param,
            args.strategy,
            args.index_policy,
            args.workers,
        )
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "list":
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:<20} {description}")
        return 0
    if args.command == "all":
        for name, (_, runner) in EXPERIMENTS.items():
            runner(args.scale).print_table()
        return 0
    _, runner = EXPERIMENTS[args.command]
    runner(args.scale).print_table()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
