"""A write-ahead log of committed edits and exchanged deltas.

ORCHESTRA's reconciliation algorithm assumes each participant can recover
its state after disconnection without redoing the world's work (Section 5:
updates are archived so peers can catch up incrementally).  The durable
node reproduces that property with the classic redo-log discipline: every
committed publish (and every staged edit batch) is appended here — framed,
checksummed, fsynced — *before* it mutates in-memory state, so a crash at
any instant leaves a prefix of the log on disk and recovery replays exactly
the tail the latest checkpoint has not absorbed.

Frame format (one record per line, JSON-lines so the log greps cleanly)::

    <crc32 of payload, 8 hex chars> <payload>\n
    payload = {"seq": N, "kind": "...", "body": {...}}

A torn tail — the half-written record a crash mid-``write`` leaves behind —
fails the checksum (or does not parse at all) and cleanly ends replay;
everything before it is intact because records are appended strictly in
``seq`` order and fsynced per the policy.

The log is segmented: each :class:`WriteAheadLog` open (and each
:meth:`rotate`) starts a new ``wal-<N>.log`` file, and rotation after a
checkpoint prunes segments wholly covered by it.  Appending never touches
an old segment, so a torn tail can only ever be the last line of the
newest file.

Fsync policy: ``"always"`` fsyncs every append (group-committed per
``append`` call — the durable default), ``"never"`` leaves flushing to the
OS (fast, loses the tail on power failure, still torn-tail safe).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from ..storage.instance import StorageError

FSYNC_ALWAYS = "always"
FSYNC_NEVER = "never"
FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_NEVER)

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"


class WalError(StorageError):
    """The write-ahead log is unusable (not: torn — torn tails are normal)."""


@dataclass(frozen=True)
class WalRecord:
    """One committed log entry."""

    seq: int
    kind: str
    body: dict


def _frame(record: WalRecord) -> bytes:
    payload = json.dumps(
        {"seq": record.seq, "kind": record.kind, "body": record.body},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%08x " % crc + payload + b"\n"


def _unframe(line: bytes) -> WalRecord | None:
    """Decode one framed line; ``None`` for anything torn or corrupt."""
    if len(line) < 10 or line[8:9] != b" " or not line.endswith(b"\n"):
        return None
    payload = line[9:-1]
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        document = json.loads(payload)
    except ValueError:  # pragma: no cover - crc already guards this
        return None
    if (
        not isinstance(document, dict)
        or not isinstance(document.get("seq"), int)
        or not isinstance(document.get("kind"), str)
        or not isinstance(document.get("body"), dict)
    ):
        return None
    return WalRecord(document["seq"], document["kind"], document["body"])


def _segment_index(path: Path) -> int | None:
    name = path.name
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    digits = name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def read_segment(path: Path) -> list[WalRecord]:
    """All intact records of one segment, stopping at the first bad frame.

    Stopping (rather than skipping) is deliberate: a bad frame mid-file
    would mean records *after* a hole, and replaying past a hole could
    reorder effects.  In practice the only bad frame is the torn tail.
    """
    records: list[WalRecord] = []
    with open(path, "rb") as handle:
        for line in handle:
            record = _unframe(line)
            if record is None:
                break
            records.append(record)
    return records


def _wal_samples(wal: "WriteAheadLog"):
    """Metrics collector: append/fsync counters of one live WAL."""
    sample = _metrics.Sample
    kind = _metrics.KIND_COUNTER
    yield sample("repro_wal_appends_total", kind, "", (), wal.appended)
    yield sample("repro_wal_fsyncs_total", kind, "", (), wal.fsyncs)


class WriteAheadLog:
    """An append-only, segmented redo log in ``directory``."""

    def __init__(self, directory: str | Path, fsync: str = FSYNC_ALWAYS) -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{FSYNC_POLICIES}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.appended = 0
        self.fsyncs = 0
        _metrics.REGISTRY.register(self, _wal_samples)
        existing = self.segments()
        last_index = 0
        self._last_seq = 0
        for path in existing:
            last_index = _segment_index(path) or last_index
            records = read_segment(path)
            if records:
                self._last_seq = max(self._last_seq, records[-1].seq)
        # Appends always go to a fresh segment: a pre-existing torn tail
        # stays where it is and can never swallow a new record.
        self._segment_index = last_index + 1
        self._handle = None

    # -- reading -----------------------------------------------------------

    def segments(self) -> list[Path]:
        """Segment paths, oldest first."""
        found = [
            (index, path)
            for path in self.directory.iterdir()
            if (index := _segment_index(path)) is not None
        ]
        return [path for _, path in sorted(found)]

    def records(self, after_seq: int = 0) -> Iterator[WalRecord]:
        """Intact records with ``seq > after_seq``, in append order."""
        for path in self.segments():
            for record in read_segment(path):
                if record.seq > after_seq:
                    yield record

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record (0 when empty)."""
        return self._last_seq

    # -- appending ---------------------------------------------------------

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"

    def _open_handle(self):
        if self._handle is None:
            self._handle = open(
                self._segment_path(self._segment_index), "ab"
            )
        return self._handle

    def append(self, kind: str, body: dict) -> int:
        """Durably append one record; returns its sequence number.

        The record is on disk (per the fsync policy) when this returns —
        callers apply the logged effect to in-memory state only *after*
        this returns, which is the whole redo-log contract.
        """
        span = (
            _tracing.start("wal-append", kind=kind)
            if _tracing.ENABLED
            else None
        )
        seq = self._last_seq + 1
        handle = self._open_handle()
        handle.write(_frame(WalRecord(seq, kind, body)))
        handle.flush()
        if self.fsync == FSYNC_ALWAYS:
            os.fsync(handle.fileno())
            self.fsyncs += 1
        self._last_seq = seq
        self.appended += 1
        if span is not None:
            _tracing.finish(span)
        return seq

    def sync(self) -> None:
        """Force the current segment to disk regardless of policy."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self.fsyncs += 1

    def rotate(self, retain_after_seq: int) -> int:
        """Start a new segment and prune segments a checkpoint covers.

        Segments whose every record has ``seq <= retain_after_seq`` are
        deleted — replay will never need them again.  Returns the number
        of segments pruned.
        """
        if self._handle is not None:
            self._handle.flush()
            if self.fsync == FSYNC_ALWAYS:
                os.fsync(self._handle.fileno())
                self.fsyncs += 1
            self._handle.close()
            self._handle = None
        self._segment_index += 1
        pruned = 0
        for path in self.segments():
            records = read_segment(path)
            if all(record.seq <= retain_after_seq for record in records):
                path.unlink()
                pruned += 1
            else:
                # Later segments only hold later seqs; stop scanning.
                break
        return pruned

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self.fsync == FSYNC_ALWAYS:
                os.fsync(self._handle.fileno())
                self.fsyncs += 1
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<WriteAheadLog {self.directory} last_seq={self._last_seq} "
            f"fsync={self.fsync}>"
        )
