"""A crash-recoverable CDSS node: checkpoint + write-ahead log.

The paper's system archives updates so a participant can rejoin after
disconnection and catch up *incrementally* (Section 5).  A
:class:`DurableNode` gives the reproduction's in-memory
:class:`~repro.core.cdss.CDSS` that property:

* every staged edit batch and every committed publish is appended to a
  :class:`~repro.durability.wal.WriteAheadLog` before it takes effect;
* periodically (every ``checkpoint_every`` publishes, on demand, and on
  graceful :meth:`close`) the whole database — peer instances, provenance
  relations, pending edit logs, and the change-stream version — is
  checkpointed into a :class:`~repro.storage.sqlite.SQLiteStore` in one
  sqlite transaction, whose COMMIT atomically advances the recovery
  pointer (``last_applied_seq``) stored *inside* the same checkpoint;
* :meth:`open` restores the latest checkpoint and replays only the WAL
  records after that pointer through the normal incremental maintenance
  path (``apply_delta`` with the logged strategy) — never a full
  recompute.

A crash at any instant therefore loses at most the un-fsynced WAL tail:
between checkpoint COMMIT and WAL pruning, replay simply skips records
with ``seq <= last_applied_seq``; mid-checkpoint, sqlite rolls back to
the previous checkpoint and the WAL tail is still there.

On-disk layout of a node directory::

    spec.json       the system configuration (edits stripped — data
                    lives in the checkpoint, not the spec)
    state.sqlite3   the checkpoint store
    wal/            redo-log segments

Change-stream versions recover exactly when publishes happen with a
subscription open (the serving tier's case — it always holds one);
otherwise recovery may advance the version past the pre-crash value,
which is harmless because no client can hold a cursor beyond it.

Route publishes through :meth:`publish` (the serving tier does); a
publish applied behind the node's back (``cdss.update_exchange``)
is invisible to the log and will be lost on recovery.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from ..api.spec import SystemSpec
from ..core.cdss import CDSS
from ..obs import metrics as _metrics
from ..core.editlog import EditLog, PublishDelta, Update
from ..core.editlog import publish as publish_log
from ..core.exchange import ExchangeReport
from ..storage.codec import decode_row, dumps_row, encode_row
from ..storage.instance import StorageError
from ..storage.persistence import CATALOG_BUCKET, checkpoint as checkpoint_db
from ..storage.persistence import restore as restore_db
from ..storage.sqlite import SQLiteStore
from .wal import FSYNC_ALWAYS, WalError, WalRecord, WriteAheadLog

SPEC_FILE = "spec.json"
STATE_FILE = "state.sqlite3"
WAL_DIR = "wal"

EDITLOG_PREFIX = "__editlog__::"
NODE_META_BUCKET = "__node__"

KIND_EDITS = "edits"
KIND_PUBLISH = "publish"

_DELTA_FIELDS = (
    "local_inserts",
    "local_deletes",
    "rejection_inserts",
    "rejection_deletes",
)


def _encode_delta(delta: PublishDelta) -> dict:
    document: dict = {}
    for field in _DELTA_FIELDS:
        bucket = getattr(delta, field)
        if bucket:
            document[field] = {
                relation: [
                    encode_row(row) for row in sorted(rows, key=dumps_row)
                ]
                for relation, rows in sorted(bucket.items())
            }
    return document


def _decode_delta(document: dict) -> PublishDelta:
    delta = PublishDelta()
    for field in _DELTA_FIELDS:
        for relation, rows in document.get(field, {}).items():
            getattr(delta, field)[relation] = {
                decode_row(row) for row in rows
            }
    return delta


def _node_samples(node: "DurableNode"):
    """Metrics collector: checkpoint + recovery counters of one node."""
    sample = _metrics.Sample
    kind = _metrics.KIND_COUNTER
    yield sample(
        "repro_durability_checkpoints_total", kind, "", (), node.checkpoints
    )
    yield sample(
        "repro_durability_replayed_records_total",
        kind,
        "",
        (("kind", "edit"),),
        node.replayed_edit_records,
    )
    yield sample(
        "repro_durability_replayed_records_total",
        kind,
        "",
        (("kind", "publish"),),
        node.replayed_publish_records,
    )


class DurableNode:
    """A CDSS whose state survives process death.

    Construct with :meth:`create` (fresh directory from a spec),
    :meth:`open` (recover an existing directory), or :meth:`launch`
    (whichever of the two applies).
    """

    def __init__(
        self,
        cdss: CDSS,
        data_dir: Path,
        store: SQLiteStore,
        wal: WriteAheadLog,
        checkpoint_every: int,
    ) -> None:
        self.cdss = cdss
        self.data_dir = data_dir
        self.store = store
        self.wal = wal
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoints = 0
        self.recovered = False
        self.replayed_edit_records = 0
        self.replayed_publish_records = 0
        self._publishes_since_checkpoint = 0
        self._observed: list[EditLog] = []
        self._closed = False
        _metrics.REGISTRY.register(self, _node_samples)

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        spec: SystemSpec,
        data_dir: str | Path,
        fsync: str = FSYNC_ALWAYS,
        checkpoint_every: int = 0,
    ) -> "DurableNode":
        """Initialize a fresh node directory from a spec.

        Spec edits are staged into the peers' edit logs and captured by
        the initial checkpoint; the spec file written to disk is stripped
        of them (the checkpoint, not the spec, is the source of data truth
        from here on).
        """
        data_dir = Path(data_dir)
        spec_path = data_dir / SPEC_FILE
        if spec_path.exists():
            raise StorageError(
                f"{data_dir} already holds a durable node; use open()"
            )
        data_dir.mkdir(parents=True, exist_ok=True)
        cdss = spec.build()
        spec.without_edits().save(spec_path)
        store = SQLiteStore(str(data_dir / STATE_FILE))
        wal = WriteAheadLog(data_dir / WAL_DIR, fsync=fsync)
        node = cls(cdss, data_dir, store, wal, checkpoint_every)
        node.checkpoint()
        node._attach_observers()
        return node

    @classmethod
    def open(
        cls,
        data_dir: str | Path,
        fsync: str = FSYNC_ALWAYS,
        checkpoint_every: int = 0,
    ) -> "DurableNode":
        """Recover a node from disk: latest checkpoint + WAL-tail replay."""
        data_dir = Path(data_dir)
        spec_path = data_dir / SPEC_FILE
        if not spec_path.exists():
            raise StorageError(
                f"{data_dir} is not a durable node directory "
                f"(no {SPEC_FILE}); use create()"
            )
        cdss = SystemSpec.load(spec_path).build()
        store = SQLiteStore(str(data_dir / STATE_FILE))
        wal = WriteAheadLog(data_dir / WAL_DIR, fsync=fsync)
        node = cls(cdss, data_dir, store, wal, checkpoint_every)
        node._recover()
        node._attach_observers()
        return node

    @classmethod
    def launch(
        cls,
        spec: SystemSpec,
        data_dir: str | Path,
        fsync: str = FSYNC_ALWAYS,
        checkpoint_every: int = 0,
    ) -> "DurableNode":
        """Open ``data_dir`` if it holds a node already, else create one."""
        if (Path(data_dir) / SPEC_FILE).exists():
            return cls.open(
                data_dir, fsync=fsync, checkpoint_every=checkpoint_every
            )
        return cls.create(
            spec, data_dir, fsync=fsync, checkpoint_every=checkpoint_every
        )

    # -- recovery ----------------------------------------------------------

    def _recover(self) -> None:
        system = self.cdss.system()
        last_applied = 0
        if self.store.size(CATALOG_BUCKET):
            restore_db(self.store, into=system.db)
            self._restore_edit_logs()
            last_applied = int(
                self.store.get(NODE_META_BUCKET, "last_applied_seq", 0)  # type: ignore[arg-type]
            )
            system.restore_version(
                int(self.store.get(NODE_META_BUCKET, "version", 0))  # type: ignore[arg-type]
            )
        # Replay with a subscription open so replayed publishes tick the
        # change-stream version and repopulate the recent change log.
        subscription = system.subscribe()
        try:
            for record in self.wal.records(after_seq=last_applied):
                self._replay(record)
        finally:
            subscription.close()
        self._publishes_since_checkpoint = self.replayed_publish_records
        self.recovered = True

    def _restore_edit_logs(self) -> None:
        for bucket in self.store.bucket_names():
            if not bucket.startswith(EDITLOG_PREFIX):
                continue
            peer = bucket[len(EDITLOG_PREFIX) :]
            entries = [
                Update(str(relation), tuple(row), is_insert=bool(flag))
                for relation, row, flag in self.store.values(bucket)  # type: ignore[misc]
            ]
            self.cdss._peer(peer).edit_log.extend(entries)

    def _replay(self, record: WalRecord) -> None:
        system = self.cdss.system()
        if record.kind == KIND_EDITS:
            log = self.cdss._peer(str(record.body["peer"])).edit_log
            log.extend(
                Update(
                    str(relation), decode_row(row), is_insert=bool(flag)
                )
                for relation, row, flag in record.body["entries"]
            )
            self.replayed_edit_records += 1
        elif record.kind == KIND_PUBLISH:
            # The staged edits this publish consumed were replayed from
            # "edits" records; drain them and apply the *logged* net delta
            # so recovery is byte-exact rather than re-derived.
            for name in record.body["peers"]:
                self.cdss._peer(str(name)).edit_log.drain()
            recorded = int(record.body.get("version", 0))
            if recorded > system.version:
                system.restore_version(recorded)
            report = system.apply_delta(
                _decode_delta(record.body["delta"]),
                str(record.body["strategy"]),
            )
            self.cdss.exchange_reports.append(report)
            self.replayed_publish_records += 1
        else:
            raise WalError(
                f"unknown WAL record kind {record.kind!r} at seq {record.seq}"
            )

    # -- the write path ----------------------------------------------------

    def _attach_observers(self) -> None:
        for name in self.cdss.peers():
            log = self.cdss._peer(name).edit_log
            log.observe(self._on_edits)
            self._observed.append(log)

    def _on_edits(self, log: EditLog, entries: tuple[Update, ...]) -> None:
        self.wal.append(
            KIND_EDITS,
            {
                "peer": log.peer,
                "entries": [
                    [u.relation, encode_row(u.row), u.is_insert]
                    for u in entries
                ],
            },
        )

    def publish(
        self,
        peers: Iterable[str] | None = None,
        strategy: str | None = None,
    ) -> ExchangeReport:
        """Durable :meth:`~repro.core.cdss.CDSS.update_exchange`.

        The net delta is WAL-logged (and fsynced, per policy) *before*
        the exchange engine applies it — the redo-log ordering that makes
        recovery exact.  Auto-checkpoints on the configured cadence.
        """
        system = self.cdss.system()
        names = tuple(peers) if peers is not None else self.cdss.peers()
        delta = PublishDelta()
        for name in names:
            delta.merge(publish_log(self.cdss._peer(name).edit_log, system.db))
        used = strategy or self.cdss.strategy
        self.wal.append(
            KIND_PUBLISH,
            {
                "peers": list(names),
                "strategy": used,
                "delta": _encode_delta(delta),
                "version": system.version,
            },
        )
        report = system.apply_delta(delta, used)
        self.cdss.exchange_reports.append(report)
        self._publishes_since_checkpoint += 1
        if (
            self.checkpoint_every
            and self._publishes_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()
        return report

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> int:
        """Checkpoint the full node state; returns the covered WAL seq.

        One sqlite transaction writes the database, the pending edit
        logs, the change-stream version, and ``last_applied_seq``; its
        COMMIT is the atomic recovery-pointer flip.  The WAL then rotates
        and prunes segments the checkpoint covers.
        """
        system = self.cdss.system()
        covered = self.wal.last_seq
        with self.store.transaction():
            checkpoint_db(system.db, self.store)
            for bucket in self.store.bucket_names():
                if bucket.startswith(EDITLOG_PREFIX):
                    self.store.drop(bucket)
            for name in self.cdss.peers():
                log = self.cdss._peer(name).edit_log
                if len(log) == 0:
                    continue
                bucket = EDITLOG_PREFIX + name
                for index, update in enumerate(log):
                    self.store.put(
                        bucket,
                        f"{index:08d}",
                        (update.relation, update.row, update.is_insert),
                    )
            self.store.put(NODE_META_BUCKET, "last_applied_seq", covered)
            self.store.put(NODE_META_BUCKET, "version", system.version)
        self.wal.rotate(retain_after_seq=covered)
        self.checkpoints += 1
        self._publishes_since_checkpoint = 0
        return covered

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, checkpoint: bool = True) -> None:
        """Graceful shutdown: final checkpoint, then release resources."""
        if self._closed:
            return
        if checkpoint:
            self.checkpoint()
        for log in self._observed:
            log.unobserve(self._on_edits)
        self._observed.clear()
        self._closed = True
        self.wal.close()
        self.store.close()

    def __enter__(self) -> "DurableNode":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<DurableNode {self.data_dir} wal_seq={self.wal.last_seq} "
            f"checkpoints={self.checkpoints}>"
        )
