"""Durability: write-ahead logging, checkpoints, crash recovery.

The subsystem that lets a CDSS node be killed and restarted without
recomputing the world — DESIGN.md's "Durability" section has the full
picture.  :class:`WriteAheadLog` is the framed, checksummed redo log;
:class:`DurableNode` ties it to the SQLite checkpoint store and the
exchange engine's incremental maintenance path.
"""

from .node import (
    EDITLOG_PREFIX,
    KIND_EDITS,
    KIND_PUBLISH,
    NODE_META_BUCKET,
    SPEC_FILE,
    STATE_FILE,
    WAL_DIR,
    DurableNode,
)
from .wal import (
    FSYNC_ALWAYS,
    FSYNC_NEVER,
    FSYNC_POLICIES,
    WalError,
    WalRecord,
    WriteAheadLog,
    read_segment,
)

__all__ = [
    "DurableNode",
    "EDITLOG_PREFIX",
    "FSYNC_ALWAYS",
    "FSYNC_NEVER",
    "FSYNC_POLICIES",
    "KIND_EDITS",
    "KIND_PUBLISH",
    "NODE_META_BUCKET",
    "SPEC_FILE",
    "STATE_FILE",
    "WAL_DIR",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "read_segment",
]
