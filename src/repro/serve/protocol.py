"""The serving tier's wire protocol: values, statements, the registry.

The protocol is deliberately small — JSON requests and responses over
HTTP/1.1 (see :mod:`repro.serve.server` for the routes).  The pieces that
are independent of asyncio live here so tests and the benchmark can use
them directly:

* value encoding (:func:`encode_value` / :func:`decode_value`): JSON
  scalars pass through; anything else (labeled nulls, Skolem values)
  round-trips as ``{"!": repr(value)}`` — readable, order-stable, and
  honest about being opaque on the wire;
* :class:`Statement` — one prepared query or program plus the logic to
  run it against a pinned snapshot (or the live system) with answer
  mode, ordering, and pagination applied;
* :class:`StatementRegistry` — deduplicating id → statement map: the
  session state that makes ``POST /execute`` a zero-replanning re-execute.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Mapping, Sequence

from ..api.query import _OrderKey, apply_row_order
from ..core.query import QueryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.cdss import CDSS
    from ..storage.snapshot import DatabaseSnapshot

KIND_QUERY = "query"
KIND_PROGRAM = "program"

MODE_CERTAIN = "certain"
MODE_WITH_NULLS = "with_nulls"
MODE_ANNOTATED = "annotated"
ANSWER_MODES = (MODE_CERTAIN, MODE_WITH_NULLS, MODE_ANNOTATED)


class ServeError(Exception):
    """A protocol-level error carrying an HTTP status and error code."""

    def __init__(self, message: str, status: int = 400, code: str = "bad_request") -> None:
        super().__init__(message)
        self.status = status
        self.code = code

    def payload(self) -> dict:
        return {"error": self.code, "message": str(self)}


def encode_value(value: object) -> object:
    """Encode one column value for JSON transport.

    JSON scalars pass through; everything else (labeled nulls, Skolem
    values, tuples) becomes ``{"!": repr(value)}`` — clients can display
    and compare such values but not re-submit them as bindings.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return {"!": repr(value)}


def decode_value(value: object) -> object:
    """Decode one client-supplied binding value.

    Only JSON scalars are accepted as parameter bindings — opaque
    ``{"!": ...}`` values cannot be reconstructed server-side.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ServeError(
        f"parameter values must be JSON scalars, got {value!r}",
        status=400,
        code="bad_binding",
    )


def encode_row(row: Sequence[object]) -> list:
    return [encode_value(value) for value in row]


def _decode_bindings(bindings: object) -> dict[str, object]:
    if bindings is None:
        return {}
    if not isinstance(bindings, Mapping):
        raise ServeError(
            "bindings must be an object mapping parameter names to scalars"
        )
    return {str(name): decode_value(value) for name, value in bindings.items()}


def _check_page(value: object, what: str) -> int | None:
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ServeError(f"{what} must be a non-negative integer")
    return value


class Statement:
    """One prepared statement (query or program) in the registry.

    ``run`` is the reader-thread entry point: it executes against a
    pinned snapshot (``snapshot`` given) or the live system, applies the
    answer mode / ordering / pagination, and returns a JSON-ready dict.
    """

    __slots__ = ("id", "kind", "text", "params", "answer", "prepared", "executions")

    def __init__(
        self,
        statement_id: str,
        kind: str,
        text: str,
        params: tuple[str, ...],
        answer: str,
        prepared: object,
    ) -> None:
        self.id = statement_id
        self.kind = kind
        self.text = text
        self.params = params
        self.answer = answer
        self.prepared = prepared
        self.executions = 0

    def describe(self) -> dict:
        info = {
            "statement": self.id,
            "kind": self.kind,
            "params": list(self.params),
            "executions": self.executions,
        }
        if self.kind == KIND_QUERY:
            info["columns"] = list(self.prepared.columns)
        else:
            info["answer"] = self.answer
        return info

    def run(
        self,
        bindings: Mapping[str, object],
        snapshot: "DatabaseSnapshot | None" = None,
        mode: str = MODE_CERTAIN,
        order: Sequence[object] = (),
        limit: int | None = None,
        offset: int | None = None,
    ) -> dict:
        started = time.perf_counter()
        if mode not in ANSWER_MODES:
            raise ServeError(
                f"unknown answer mode {mode!r}; expected one of {ANSWER_MODES}"
            )
        try:
            if self.kind == KIND_QUERY:
                payload = self._run_query(
                    bindings, snapshot, mode, order, limit, offset
                )
            else:
                payload = self._run_program(
                    bindings, snapshot, mode, order, limit, offset
                )
        except QueryError as exc:
            raise ServeError(str(exc), status=400, code="query_error") from exc
        self.executions += 1
        payload["statement"] = self.id
        payload["mode"] = mode
        payload["pinned_version"] = (
            None if snapshot is None else snapshot.version
        )
        payload["elapsed"] = time.perf_counter() - started
        return payload

    def _run_query(
        self, bindings, snapshot, mode, order, limit, offset
    ) -> dict:
        prepared = self.prepared
        if snapshot is not None:
            answers = prepared.execute_at(snapshot, **bindings)
        else:
            answers = prepared.execute(**bindings)
        if mode == MODE_WITH_NULLS:
            answers = answers.with_nulls()
        if order:
            answers = answers.order_by(*order)
        if limit is not None:
            answers = answers.limit(limit)
        if offset:
            answers = answers.offset(offset)
        if mode == MODE_ANNOTATED:
            annotated = answers.annotated()
            rows = [
                {"row": encode_row(row), "provenance": str(expression)}
                for row, expression in annotated.items()
            ]
            return {"rows": rows, "count": len(rows)}
        rows = [encode_row(row) for row in answers]
        return {"rows": rows, "count": len(rows)}

    def _run_program(
        self, bindings, snapshot, mode, order, limit, offset
    ) -> dict:
        prepared = self.prepared
        if mode == MODE_ANNOTATED:
            raise ServeError(
                "annotated answers are not available for programs",
                status=400,
                code="bad_mode",
            )
        if snapshot is not None:
            result = prepared.execute_at(snapshot, **bindings)
        else:
            result = prepared.execute(**bindings)
        raw = result.with_nulls() if mode == MODE_WITH_NULLS else result.certain()
        # Programs have no output column names: a deterministic total
        # order first, then optional positional ORDER BY and slicing.
        rows = sorted(
            raw, key=lambda row: tuple(_OrderKey(value) for value in row)
        )
        if order or limit is not None or offset:
            spec = []
            for key in order:
                desc = False
                if isinstance(key, str) and key.startswith("-"):
                    desc, key = True, key[1:]
                    if key.isdigit():
                        key = int(key)
                if not isinstance(key, int) or isinstance(key, bool):
                    raise ServeError(
                        "program ORDER BY accepts 0-based positions only"
                    )
                spec.append((key, desc))
            rows = list(
                apply_row_order(rows, tuple(spec), limit, offset or 0)
            )
        return {"rows": [encode_row(row) for row in rows], "count": len(rows)}


class StatementRegistry:
    """A deduplicating registry of prepared statements.

    ``prepare`` is idempotent on ``(kind, text, params, answer)`` — a
    client (or a hundred clients) preparing the same query gets the same
    statement id, and the underlying plan is compiled exactly once.
    """

    def __init__(self, cdss: "CDSS") -> None:
        self._cdss = cdss
        self._lock = threading.Lock()
        self._by_key: dict[tuple, Statement] = {}
        self._by_id: dict[str, Statement] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._by_id)

    def prepare(
        self,
        kind: str,
        text: str,
        params: Sequence[str] = (),
        answer: str = "ans",
    ) -> Statement:
        if kind not in (KIND_QUERY, KIND_PROGRAM):
            raise ServeError(
                f"unknown statement kind {kind!r}; expected "
                f"{KIND_QUERY!r} or {KIND_PROGRAM!r}"
            )
        if not isinstance(text, str) or not text.strip():
            raise ServeError("statement text must be a non-empty string")
        names = tuple(str(p) for p in params)
        key = (kind, text, names, answer)
        with self._lock:
            statement = self._by_key.get(key)
            if statement is not None:
                return statement
            try:
                if kind == KIND_QUERY:
                    prepared = self._cdss.prepare(text, params=names)
                else:
                    prepared = self._cdss.prepare_program(
                        text, answer=answer, params=names
                    )
            except QueryError as exc:
                raise ServeError(
                    str(exc), status=400, code="prepare_error"
                ) from exc
            self._counter += 1
            statement = Statement(
                f"stmt-{self._counter}", kind, text, names, answer, prepared
            )
            self._by_key[key] = statement
            self._by_id[statement.id] = statement
            return statement

    def get(self, statement_id: object) -> Statement:
        statement = (
            self._by_id.get(statement_id)
            if isinstance(statement_id, str)
            else None
        )
        if statement is None:
            raise ServeError(
                f"unknown statement {statement_id!r}",
                status=404,
                code="unknown_statement",
            )
        return statement

    def describe(self) -> list[dict]:
        with self._lock:
            return [s.describe() for s in self._by_id.values()]


def parse_execute_args(body: Mapping[str, object]) -> dict:
    """Validate/normalize the shared execute-request fields."""
    mode = body.get("mode", MODE_CERTAIN)
    if mode not in ANSWER_MODES:
        raise ServeError(
            f"unknown answer mode {mode!r}; expected one of {ANSWER_MODES}"
        )
    order = body.get("order", ())
    if order is None:
        order = ()
    if isinstance(order, (str, int)):
        order = (order,)
    elif not isinstance(order, Sequence):
        raise ServeError("order must be a column, a list of columns, or null")
    return {
        "bindings": _decode_bindings(body.get("bindings")),
        "mode": mode,
        "order": tuple(order),
        "limit": _check_page(body.get("limit"), "limit"),
        "offset": _check_page(body.get("offset"), "offset"),
    }
