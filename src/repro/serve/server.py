"""The asyncio front door: HTTP+JSON serving over a live CDSS node.

``python -m repro serve spec.json --port N`` boots one of these.  The
concurrency architecture (the whole point of the tier) in four rules:

1. **Reads never block on writes.**  Query/program executions run in a
   reader thread pool against the :class:`~repro.serve.snapshots.
   SnapshotManager`'s current pinned snapshot — the last consistent
   fixpoint.  They take the admission semaphore, never the exchange lock.
2. **Writes serialize behind the exchange lock.**  Edits, publishes, and
   statement preparation run on a single writer thread under an
   :class:`asyncio.Lock`; a publish pins a fresh snapshot *before*
   releasing the lock (copy-on-publish), so the next read — even one
   admitted mid-publish — sees either the old fixpoint or the new one,
   never anything in between.
3. **Degradation is graceful.**  Beyond ``max_inflight`` executions +
   ``max_queue`` waiters a request is rejected immediately with 503;
   per-request timeouts return 504.  Counters for all of it live under
   ``GET /stats``.
4. **Annotated answers are writes.**  Provenance expressions read the
   live provenance tables, so ``mode=annotated`` executes on the write
   path (exchange lock held) rather than against a snapshot.

Wire protocol (all bodies JSON):

========  =============  ====================================================
method    path           body / effect
========  =============  ====================================================
GET       /health        liveness + pinned snapshot version
GET       /stats         admission, snapshot, registry, request counters
GET       /statements    registered prepared statements
GET       /changes       ?since=V&wait=S → output-relation change batches
                         with version > V (the update-exchange change
                         stream); wait>0 long-polls until the next publish
POST      /prepare       {kind, text, params?, answer?} → {statement, ...}
POST      /execute       {statement, bindings?, mode?, order?, limit?,
                         offset?} → {rows, count, pinned_version, ...}
POST      /query         /prepare + /execute in one round trip
POST      /edit          {edits: [{op, relation, row}, ...]} → {staged}
POST      /publish       {peers?, strategy?} → exchange report summary
POST      /shutdown      graceful shutdown (drains in-flight work)
========  =============  ====================================================
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import TYPE_CHECKING, Callable, Mapping

from ..obs import bootstrap_default_metrics
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from .admission import AdmissionController
from .protocol import (
    KIND_QUERY,
    MODE_ANNOTATED,
    ServeError,
    StatementRegistry,
    decode_value,
    encode_row,
    parse_execute_args,
)
from .snapshots import SnapshotManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.cdss import CDSS
    from ..durability.node import DurableNode

_MAX_BODY = 8 * 1024 * 1024
_STREAM_LIMIT = 1 * 1024 * 1024

#: Longest honored ``/changes?wait=`` long-poll, seconds.  Clients wanting
#: to wait longer re-issue the request; an unbounded wait would pin a
#: connection (and its handler task) forever.
MAX_CHANGES_WAIT = 60.0

# Ensure every documented metric family renders on /metrics even before
# the layer that feeds it has constructed (see repro.obs).
bootstrap_default_metrics()

#: Known routes for the per-route latency histogram; anything else is
#: recorded under "other" so label cardinality stays fixed.
_ROUTES = frozenset(
    (
        "/health",
        "/stats",
        "/statements",
        "/changes",
        "/metrics",
        "/prepare",
        "/execute",
        "/query",
        "/edit",
        "/publish",
        "/shutdown",
    )
)

#: Cap on distinct per-statement histogram series; later statements
#: aggregate under the "other" label.
_MAX_STATEMENT_SERIES = 64

_REQUEST_SECONDS = _metrics.REGISTRY.histogram(
    "repro_serve_request_seconds",
    "HTTP request latency by route",
    labels=("route",),
)
_STATEMENT_SECONDS = _metrics.REGISTRY.histogram(
    "repro_serve_statement_seconds",
    "Prepared-statement execution latency by statement id",
    labels=("statement",),
)

#: Prometheus text exposition content type.
_METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _PlainText(str):
    """Marker type: ``_respond`` sends these verbatim as text/plain."""


def _server_samples(server: "ReproServer"):
    """Metrics collector: request/error/publish counters of one node."""
    sample = _metrics.Sample
    kind = _metrics.KIND_COUNTER
    yield sample("repro_serve_requests_total", kind, "", (), server.requests)
    yield sample("repro_serve_errors_total", kind, "", (), server.errors)
    yield sample(
        "repro_serve_publishes_total", kind, "", (), server.publishes
    )


class ReproServer:
    """One serving node over one :class:`~repro.core.cdss.CDSS`."""

    def __init__(
        self,
        cdss: "CDSS | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        max_queue: int = 128,
        timeout: float = 30.0,
        readers: int = 4,
        node: "DurableNode | None" = None,
    ) -> None:
        if cdss is None:
            if node is None:
                raise ValueError("ReproServer needs a cdss or a DurableNode")
            cdss = node.cdss
        elif node is not None and node.cdss is not cdss:
            raise ValueError("node and cdss arguments disagree")
        self.cdss = cdss
        #: When set, publishes route through the durable node (write-ahead
        #: logged, auto-checkpointed) and graceful shutdown checkpoints.
        self.node = node
        self.host = host
        self.port = port
        self.registry = StatementRegistry(cdss)
        self.admission = AdmissionController(max_inflight, max_queue, timeout)
        self.snapshots = SnapshotManager(cdss)
        self._readers = ThreadPoolExecutor(
            max_workers=readers, thread_name_prefix="repro-serve-read"
        )
        self._writer = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-write"
        )
        #: Serializes every mutation of the live system.  Readers never
        #: acquire it — that is the no-starvation guarantee.
        self._exchange_lock = asyncio.Lock()
        self._shutdown = asyncio.Event()
        self._server: asyncio.Server | None = None
        # Keep one subscription open for the node's lifetime: change
        # capture is gated on open subscriptions, so this is what makes
        # every publish land in the change log that /changes serves.
        self._subscription = cdss.system().subscribe()
        #: Long-poll parking lot: one future per waiting ``/changes``
        #: request, resolved (all at once) after every publish.
        self._change_waiters: list[asyncio.Future] = []
        self.requests = 0
        self.errors = 0
        self.publishes = 0
        self._started_at = time.time()
        self._statement_series: set[str] = set()
        _metrics.REGISTRY.register(self, _server_samples)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=_STREAM_LIMIT,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        # Wake parked long-polls first: wait_closed() blocks on in-flight
        # handlers, and a /changes waiter would otherwise hold it for its
        # full timeout.
        self._wake_change_waiters()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Drain in-flight executions before tearing the node down.
        self._readers.shutdown(wait=True)
        self._writer.shutdown(wait=True)
        self._subscription.close()
        if self.node is not None:
            # Graceful shutdown = final checkpoint; the next open() replays
            # an empty WAL tail.
            self.node.close()

    async def serve_until_shutdown(self, duration: float | None = None) -> None:
        """Serve until ``POST /shutdown`` (or ``duration`` seconds pass)."""
        try:
            if duration is None:
                await self._shutdown.wait()
            else:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._shutdown.wait(), duration)
        finally:
            await self.stop()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    raw = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    asyncio.LimitOverrunError,
                ):
                    break
                try:
                    method, path, query, headers = self._parse_head(raw)
                    length = int(headers.get("content-length", "0") or "0")
                    if length > _MAX_BODY:
                        raise ServeError(
                            "request body too large", status=413, code="too_large"
                        )
                    body_bytes = (
                        await reader.readexactly(length) if length else b""
                    )
                except ServeError as exc:
                    await self._respond(
                        writer, exc.status, exc.payload(), close=True
                    )
                    break
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                status, payload = await self._handle_request(
                    method, path, query, body_bytes
                )
                try:
                    await self._respond(
                        writer, status, payload, close=not keep_alive
                    )
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not keep_alive:
                    break
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    @staticmethod
    def _parse_head(
        raw: bytes,
    ) -> tuple[str, str, dict[str, str], dict[str, str]]:
        lines = raw.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise ServeError("malformed request line", code="bad_request")
        method, target = parts[0].upper(), parts[1]
        path, _, query_string = target.partition("?")
        query: dict[str, str] = {}
        for pair in query_string.split("&"):
            if pair:
                name, _, value = pair.partition("=")
                query[name] = value
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, path, query, headers

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: object,
        close: bool,
    ) -> None:
        if isinstance(payload, _PlainText):
            body = str(payload).encode()
            content_type = _METRICS_CONTENT_TYPE
        else:
            body = json.dumps(payload, separators=(",", ":")).encode()
            content_type = "application/json"
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Status"
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _handle_request(
        self,
        method: str,
        path: str,
        query: Mapping[str, str],
        body_bytes: bytes,
    ) -> tuple[int, object]:
        self.requests += 1
        started = time.perf_counter()
        try:
            if body_bytes:
                try:
                    body = json.loads(body_bytes)
                except ValueError:
                    raise ServeError(
                        "request body is not valid JSON", code="bad_json"
                    ) from None
                if not isinstance(body, Mapping):
                    raise ServeError(
                        "request body must be a JSON object", code="bad_json"
                    )
            else:
                body = {}
            return 200, await self._dispatch(method, path, query, body)
        except ServeError as exc:
            self.errors += 1
            return exc.status, exc.payload()
        except Exception as exc:  # noqa: BLE001 - the front door must not die
            self.errors += 1
            return 500, {
                "error": "internal",
                "message": f"{type(exc).__name__}: {exc}",
            }
        finally:
            route = path if path in _ROUTES else "other"
            _REQUEST_SECONDS.labels(route).observe(
                time.perf_counter() - started
            )

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self,
        method: str,
        path: str,
        query: Mapping[str, str],
        body: Mapping[str, object],
    ) -> object:
        if method == "GET":
            if path == "/health":
                return {
                    "ok": True,
                    "snapshot_version": self.snapshots.current.version,
                    "statements": len(self.registry),
                }
            if path == "/stats":
                return self._stats()
            if path == "/statements":
                return {"statements": self.registry.describe()}
            if path == "/changes":
                return await self._do_changes(query)
            if path == "/metrics":
                return _PlainText(_metrics.REGISTRY.render())
            raise ServeError(f"unknown path {path!r}", 404, "not_found")
        if method != "POST":
            raise ServeError(
                f"unsupported method {method}", 405, "bad_method"
            )
        if path == "/prepare":
            return await self._do_prepare(body)
        if path == "/execute":
            return await self._do_execute(body, self.registry.get(body.get("statement")))
        if path == "/query":
            prepared = await self._do_prepare(body)
            statement = self.registry.get(prepared["statement"])
            return await self._do_execute(body, statement)
        if path == "/edit":
            return await self._do_edit(body)
        if path == "/publish":
            return await self._do_publish(body)
        if path == "/shutdown":
            self._shutdown.set()
            return {"ok": True, "shutting_down": True}
        raise ServeError(f"unknown path {path!r}", 404, "not_found")

    def _stats(self) -> dict:
        # Legacy top-level request counters are kept as-is; the "server"
        # block is the normalized spelling (see repro.obs.schema).
        stats = {
            "requests": self.requests,
            "errors": self.errors,
            "publishes": self.publishes,
            "pending_edits": self.cdss.pending_edits(),
            "statements": len(self.registry),
            "server": {
                "requests": self.requests,
                "errors": self.errors,
                "publishes": self.publishes,
                "pending_edits": self.cdss.pending_edits(),
                "uptime_seconds": time.time() - self._started_at,
            },
            "admission": self.admission.stats(),
            "snapshot": self.snapshots.stats(),
        }
        system_fn = getattr(self.cdss, "system", None)
        if system_fn is not None:
            system = system_fn()
            parallel_fn = getattr(system, "parallel_stats", None)
            parallel = parallel_fn() if parallel_fn is not None else None
            if parallel is not None:
                stats["parallel"] = parallel
            engine = getattr(system, "engine", None)
            if engine is not None:
                stats["engine"] = engine.stats.counters()
            db = getattr(system, "db", None)
            if db is not None and hasattr(db, "index_stats"):
                stats["indexes"] = db.index_stats()
        if self.node is not None:
            stats["durability"] = {
                "data_dir": str(self.node.data_dir),
                # "wal_seq" is the legacy spelling of "wal_last_seq".
                "wal_seq": self.node.wal.last_seq,
                "wal_last_seq": self.node.wal.last_seq,
                "wal_appends": self.node.wal.appended,
                "wal_fsyncs": self.node.wal.fsyncs,
                "checkpoints": self.node.checkpoints,
                "recovered": self.node.recovered,
                "replayed_edit_records": self.node.replayed_edit_records,
                "replayed_publish_records": (
                    self.node.replayed_publish_records
                ),
            }
        return stats

    async def _do_changes(self, query: Mapping[str, str]) -> dict:
        """Serve the change stream: batches with version > ``since``.

        With ``wait=SECS`` (long poll) an empty result parks the request
        until the next publish lands or the wait elapses — clients get
        sub-second change propagation without hot polling.  The wait is
        capped at ``MAX_CHANGES_WAIT`` and a timed-out poll returns the
        normal (empty) payload, so clients need no special timeout path.
        """
        raw = query.get("since", "0")
        try:
            since = int(raw)
        except ValueError:
            raise ServeError(
                f"since must be an integer version, got {raw!r}",
                code="bad_since",
            ) from None
        raw_wait = query.get("wait", "0")
        try:
            wait = min(float(raw_wait or "0"), MAX_CHANGES_WAIT)
        except ValueError:
            raise ServeError(
                f"wait must be a number of seconds, got {raw_wait!r}",
                code="bad_wait",
            ) from None
        payload = self._changes_payload(since)
        if payload["changes"] or wait <= 0:
            return payload
        loop = asyncio.get_running_loop()
        deadline = loop.time() + wait
        while not payload["changes"] and not self._shutdown.is_set():
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            waiter: asyncio.Future = loop.create_future()
            self._change_waiters.append(waiter)
            try:
                await asyncio.wait_for(waiter, remaining)
            except asyncio.TimeoutError:
                break
            finally:
                if waiter in self._change_waiters:
                    self._change_waiters.remove(waiter)
            payload = self._changes_payload(since)
        return payload

    def _changes_payload(self, since: int) -> dict:
        """One change-stream read: batches with version > ``since``.

        Reads the exchange system's change log without any lock: batches
        are immutable once appended and the log only grows under the
        exchange lock, so a concurrent publish can at worst hide the
        batch it is still writing — the client's next poll gets it.
        """
        version, batches = self.cdss.system().changes_since(since)
        changes = []
        for batch in batches:
            relations = {}
            for relation in sorted(batch.changes):
                zset = batch.changes[relation]
                relations[relation] = {
                    "inserted": [
                        encode_row(row) for row in sorted(zset.positive(), key=repr)
                    ],
                    "deleted": [
                        encode_row(row) for row in sorted(zset.negative(), key=repr)
                    ],
                }
            changes.append({"version": batch.version, "relations": relations})
        return {"version": version, "since": since, "changes": changes}

    def _wake_change_waiters(self) -> None:
        waiters, self._change_waiters = self._change_waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    # -- write path (exchange lock + single writer thread) -----------------

    async def _write(self, fn: Callable[[], object]) -> object:
        loop = asyncio.get_running_loop()
        async with self._exchange_lock:
            return await loop.run_in_executor(self._writer, fn)

    async def _do_prepare(self, body: Mapping[str, object]) -> dict:
        kind = body.get("kind", KIND_QUERY)
        text = body.get("text")
        params = body.get("params", ())
        answer = body.get("answer", "ans")
        if not isinstance(params, (list, tuple)):
            raise ServeError("params must be a list of names")
        if not isinstance(answer, str):
            raise ServeError("answer must be a string")
        # Planning reads live statistics: a write-path operation.
        return await self._write(
            lambda: self.registry.prepare(kind, text, params, answer).describe()
        )

    def _observe_statement(self, statement_id: str, seconds: float) -> None:
        """Record per-statement latency with bounded label cardinality."""
        if statement_id not in self._statement_series:
            if len(self._statement_series) >= _MAX_STATEMENT_SERIES:
                statement_id = "other"
            else:
                self._statement_series.add(statement_id)
        _STATEMENT_SECONDS.labels(statement_id).observe(seconds)

    async def _do_execute(self, body, statement) -> dict:
        started = time.perf_counter()
        try:
            return await self._do_execute_inner(body, statement)
        finally:
            self._observe_statement(
                statement.id, time.perf_counter() - started
            )

    async def _do_execute_inner(self, body, statement) -> dict:
        args = parse_execute_args(body)
        run = partial(
            statement.run,
            args["bindings"],
            mode=args["mode"],
            order=args["order"],
            limit=args["limit"],
            offset=args["offset"],
        )
        if args["mode"] == MODE_ANNOTATED:
            if statement.kind != KIND_QUERY:
                raise ServeError(
                    "annotated answers are not available for programs",
                    code="bad_mode",
                )
            # Live provenance tables: serialize with writes.
            async with self.admission.slot():
                return await self._write(partial(run, snapshot=None))
        loop = asyncio.get_running_loop()
        async with self.admission.slot():
            # The snapshot reference is loaded AFTER admission: a request
            # admitted mid-publish reads the freshest pinned fixpoint.
            snapshot = self.snapshots.current
            future = loop.run_in_executor(
                self._readers, partial(run, snapshot=snapshot)
            )
            try:
                return await asyncio.wait_for(
                    asyncio.shield(future), self.admission.timeout
                )
            except asyncio.TimeoutError:
                self.admission.timed_out()
                # The worker thread cannot be killed; detach the future so
                # its eventual result (or error) is silently discarded.
                future.add_done_callback(lambda f: f.exception())
                raise ServeError(
                    f"execution exceeded {self.admission.timeout}s",
                    status=504,
                    code="timeout",
                ) from None

    async def _do_edit(self, body: Mapping[str, object]) -> dict:
        edits = body.get("edits")
        if not isinstance(edits, list) or not edits:
            raise ServeError("edit requires a non-empty 'edits' list")
        normalized: list[tuple[str, str, tuple]] = []
        for edit in edits:
            if not isinstance(edit, Mapping):
                raise ServeError("each edit must be an object")
            op = edit.get("op")
            relation = edit.get("relation")
            row = edit.get("row")
            if op not in ("insert", "delete"):
                raise ServeError(f"unknown edit op {op!r}")
            if not isinstance(relation, str):
                raise ServeError("edit relation must be a string")
            if not isinstance(row, list):
                raise ServeError("edit row must be a list of values")
            normalized.append(
                (op, relation, tuple(decode_value(v) for v in row))
            )

        def apply() -> dict:
            batch = self.cdss.batch()
            for op, relation, row in normalized:
                if op == "insert":
                    batch.insert(relation, row)
                else:
                    batch.delete(relation, row)
            return {"staged": batch.commit()}

        try:
            return await self._write(apply)  # type: ignore[return-value]
        except ServeError:
            raise
        except Exception as exc:
            raise ServeError(
                f"{type(exc).__name__}: {exc}", code="edit_error"
            ) from exc

    async def _do_publish(self, body: Mapping[str, object]) -> dict:
        peers = body.get("peers")
        strategy = body.get("strategy")
        if peers is not None and not isinstance(peers, list):
            raise ServeError("peers must be a list of peer names")
        if strategy is not None and not isinstance(strategy, str):
            raise ServeError("strategy must be a string")

        def publish() -> dict:
            # Root "publish" span: the nested wal-append / exchange /
            # snapshot-refresh spans all land in one trace.
            span = (
                _tracing.start("publish", durable=self.node is not None)
                if _tracing.ENABLED
                else None
            )
            try:
                if self.node is not None:
                    # Durable path: WAL-logged before applied, and
                    # checkpointed on the node's configured cadence.
                    report = self.node.publish(peers=peers, strategy=strategy)
                else:
                    report = self.cdss.update_exchange(
                        peers=peers, strategy=strategy
                    )
                # Copy-on-publish: pin the new fixpoint while the exchange
                # lock is still held, so no later write can tear the copy.
                snapshot = self.snapshots.refresh()
            except BaseException:
                if span is not None:
                    _tracing.finish(span)
                raise
            if span is not None:
                span.rows = report.inserted + report.deleted
                _tracing.finish(span)
            return {
                "ok": True,
                "strategy": report.strategy,
                "seconds": report.seconds,
                "inserted": report.inserted,
                "deleted": report.deleted,
                "snapshot_version": snapshot.version,
            }

        try:
            result = await self._write(publish)
        except Exception as exc:
            raise ServeError(
                f"{type(exc).__name__}: {exc}", status=500, code="publish_error"
            ) from exc
        self.publishes += 1
        self._wake_change_waiters()
        return result  # type: ignore[return-value]


def run(
    cdss: "CDSS | None" = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    max_inflight: int = 64,
    max_queue: int = 128,
    timeout: float = 30.0,
    readers: int = 4,
    duration: float | None = None,
    node: "DurableNode | None" = None,
) -> None:
    """Boot a server and block until shutdown — the CLI entry point.

    Prints ``repro-serve listening on http://host:port`` once the socket
    is bound (with the *actual* port, so ``--port 0`` is scriptable).
    Pass ``node`` (a :class:`~repro.durability.node.DurableNode`) to serve
    durably: publishes are write-ahead logged and shutdown checkpoints.
    """

    async def main() -> None:
        server = ReproServer(
            cdss,
            host=host,
            port=port,
            max_inflight=max_inflight,
            max_queue=max_queue,
            timeout=timeout,
            readers=readers,
            node=node,
        )
        await server.start()
        print(
            f"repro-serve listening on http://{server.host}:{server.port}",
            flush=True,
        )
        await server.serve_until_shutdown(duration)

    asyncio.run(main())
