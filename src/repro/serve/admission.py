"""Admission control for the serving tier: bounded in-flight, fast reject.

The server is a closed system on a small container (the CI box has one
or two CPUs): letting an unbounded number of requests pile up just turns
latency into timeouts for everyone.  The admission controller applies
the classic recipe instead:

* at most ``max_inflight`` requests hold an execution slot at once
  (an :class:`asyncio.Semaphore`);
* at most ``max_queue`` more may *wait* for a slot — beyond that the
  request is rejected immediately with 503 (graceful degradation: the
  client gets a fast, honest "retry later" instead of a slow timeout);
* every outcome is counted, and ``GET /stats`` exposes the counters the
  serving benchmark records (admitted / rejected / timeouts / peak
  in-flight / queue depth).

Per-request *timeouts* are enforced by the server with
:func:`asyncio.wait_for` around the executor future; the controller only
counts them.  A timed-out execution still runs to completion in its
worker thread (Python threads cannot be killed) and its admission slot
is released at the timeout — the reader *thread pool* is what bounds
actual thread concurrency, the semaphore bounds admitted requests.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager

from ..obs import metrics as _metrics
from .protocol import ServeError


class QueueFullError(ServeError):
    """The wait queue is at capacity: reject immediately (HTTP 503)."""

    def __init__(self, waiting: int, max_queue: int) -> None:
        super().__init__(
            f"server saturated: {waiting} request(s) already queued "
            f"(max_queue={max_queue}); retry later",
            status=503,
            code="saturated",
        )


def _admission_samples(controller: "AdmissionController"):
    """Metrics collector: admission outcome counters + live gauges."""
    sample = _metrics.Sample
    counter = _metrics.KIND_COUNTER
    gauge = _metrics.KIND_GAUGE
    yield sample(
        "repro_admission_admitted_total", counter, "", (), controller.admitted
    )
    yield sample(
        "repro_admission_rejected_total", counter, "", (), controller.rejected
    )
    yield sample(
        "repro_admission_timeouts_total", counter, "", (), controller.timeouts
    )
    yield sample(
        "repro_admission_completed_total",
        counter,
        "",
        (),
        controller.completed,
    )
    yield sample(
        "repro_admission_in_flight", gauge, "", (), controller.in_flight
    )
    yield sample("repro_admission_waiting", gauge, "", (), controller.waiting)


class AdmissionController:
    """Bounded-concurrency admission with rejection + timeout counters.

    All state is touched only from the event loop (single-threaded), so
    plain integers are race-free.
    """

    def __init__(
        self,
        max_inflight: int = 64,
        max_queue: int = 128,
        timeout: float = 30.0,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.timeout = timeout
        self._semaphore = asyncio.Semaphore(max_inflight)
        self.waiting = 0
        self.in_flight = 0
        self.peak_in_flight = 0
        self.peak_waiting = 0
        self.admitted = 0
        self.rejected = 0
        self.timeouts = 0
        self.completed = 0
        _metrics.REGISTRY.register(self, _admission_samples)

    @asynccontextmanager
    async def slot(self):
        """Acquire an execution slot, or raise :class:`QueueFullError`.

        Use as ``async with admission.slot(): ...``; the slot is released
        when the block exits (including on timeout/cancellation *of the
        block*, but note the server keeps the block alive until the
        worker thread finishes — see the module docstring).
        """
        if self._semaphore.locked() and self.waiting >= self.max_queue:
            self.rejected += 1
            raise QueueFullError(self.waiting, self.max_queue)
        self.waiting += 1
        self.peak_waiting = max(self.peak_waiting, self.waiting)
        try:
            await self._semaphore.acquire()
        finally:
            self.waiting -= 1
        self.admitted += 1
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        try:
            yield
        finally:
            self.in_flight -= 1
            self.completed += 1
            self._semaphore.release()

    def timed_out(self) -> None:
        """Record one request that hit its per-request timeout."""
        self.timeouts += 1

    def stats(self) -> dict:
        # ``timeout`` is the legacy spelling of ``timeout_seconds``
        # (kept as a deprecation shim — see repro.obs.schema).
        return {
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "timeout": self.timeout,
            "timeout_seconds": self.timeout,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "completed": self.completed,
            "in_flight": self.in_flight,
            "waiting": self.waiting,
            "peak_in_flight": self.peak_in_flight,
            "peak_waiting": self.peak_waiting,
        }
