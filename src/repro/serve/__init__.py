"""The concurrent serving tier: snapshot-isolated reads, asyncio front door.

This package is the "HTAP front door" of ROADMAP item 4 — the layer that
lets a CDSS node *serve* queries while updates are being exchanged:

* :mod:`repro.serve.protocol` — the HTTP+JSON wire protocol: value
  encoding, the prepared-statement registry (prepare once, re-execute by
  id with zero replanning);
* :mod:`repro.serve.snapshots` — copy-on-publish snapshot management over
  :meth:`Database.pin <repro.storage.database.Database.pin>`: readers
  always see the last consistent fixpoint, never a torn mid-exchange
  state;
* :mod:`repro.serve.admission` — bounded in-flight semaphore, queue-depth
  rejection, and the counters behind ``GET /stats``;
* :mod:`repro.serve.server` — the asyncio server
  (``python -m repro serve spec.json --port N``): reads run in a thread
  pool against pinned snapshots, writes serialize behind an exchange lock
  that readers never take;
* :mod:`repro.serve.client` — a small synchronous client
  (:class:`ServeClient`) used by the examples, the tests, and the
  closed-loop serving benchmark.
"""

from .admission import AdmissionController, QueueFullError
from .client import ServeClient, ServeHTTPError
from .protocol import (
    ServeError,
    Statement,
    StatementRegistry,
    decode_value,
    encode_row,
    encode_value,
)
from .server import ReproServer, run
from .snapshots import SnapshotManager

__all__ = [
    "AdmissionController",
    "QueueFullError",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "ServeHTTPError",
    "SnapshotManager",
    "Statement",
    "StatementRegistry",
    "decode_value",
    "encode_row",
    "encode_value",
    "run",
]
