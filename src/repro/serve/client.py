"""A small synchronous client for the serving tier.

Used by ``examples/serve_client.py``, the serve tests, and the
closed-loop benchmark (each benchmark session thread owns one client
over one keep-alive connection).  Stdlib only (:mod:`http.client`).
"""

from __future__ import annotations

import http.client
import json
from typing import Mapping, Sequence


class ServeHTTPError(Exception):
    """A non-2xx response; carries the status and the decoded payload."""

    def __init__(self, status: int, payload: object) -> None:
        message = (
            payload.get("message", payload.get("error", ""))
            if isinstance(payload, Mapping)
            else str(payload)
        )
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload if isinstance(payload, Mapping) else {}

    @property
    def code(self) -> str:
        return str(self.payload.get("error", "error"))


class ServeClient:
    """One keep-alive connection to a serving node.

    Not thread-safe — use one client per session/thread (that is exactly
    what the closed-loop benchmark does).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    @classmethod
    def from_url(cls, url: str, timeout: float = 60.0) -> "ServeClient":
        """Build a client from ``http://host:port`` (as printed on boot)."""
        stripped = url.strip()
        for prefix in ("http://", "https://"):
            if stripped.startswith(prefix):
                stripped = stripped[len(prefix) :]
        host, _, port = stripped.rstrip("/").partition(":")
        return cls(host, int(port) if port else 80, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- transport ---------------------------------------------------------

    def request(
        self, method: str, path: str, payload: Mapping | None = None
    ) -> dict:
        body = None
        headers = {"Connection": "keep-alive"}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # One transparent retry on a dropped keep-alive connection.
            self._conn.close()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        decoded = json.loads(raw) if raw else {}
        if response.status >= 300:
            raise ServeHTTPError(response.status, decoded)
        return decoded

    def request_text(self, method: str, path: str) -> str:
        """Like :meth:`request` but for text/plain routes (``/metrics``)."""
        headers = {"Connection": "keep-alive"}
        try:
            self._conn.request(method, path, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            self._conn.close()
            self._conn.request(method, path, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        text = raw.decode("utf-8", errors="replace")
        if response.status >= 300:
            try:
                payload: object = json.loads(text)
            except ValueError:
                payload = {"error": "error", "message": text}
            raise ServeHTTPError(response.status, payload)
        return text

    # -- API surface -------------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/health")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def metrics(self) -> str:
        """Prometheus text exposition from ``GET /metrics``, verbatim."""
        return self.request_text("GET", "/metrics")

    def statements(self) -> list[dict]:
        return self.request("GET", "/statements")["statements"]

    def changes(self, since: int = 0, wait: float | None = None) -> dict:
        """Poll the update-exchange change stream.

        Returns ``{"version": V, "since": since, "changes": [...]}`` where
        each change batch carries per-relation inserted/deleted rows.
        Remember ``version`` and pass it back as ``since`` to get only
        what happened after the previous poll.

        ``wait=SECS`` long-polls: an empty result parks server-side until
        the next publish or the wait elapses (the server caps it at its
        ``MAX_CHANGES_WAIT``; a timed-out wait returns an empty batch
        list, not an error).  Make sure the client timeout exceeds the
        wait, or the connection gives up before the server answers.
        """
        path = f"/changes?since={int(since)}"
        if wait is not None:
            path += f"&wait={float(wait)}"
        return self.request("GET", path)

    def prepare(
        self,
        text: str,
        params: Sequence[str] = (),
        kind: str = "query",
        answer: str = "ans",
    ) -> dict:
        return self.request(
            "POST",
            "/prepare",
            {"kind": kind, "text": text, "params": list(params), "answer": answer},
        )

    def execute(
        self,
        statement: str,
        bindings: Mapping[str, object] | None = None,
        mode: str = "certain",
        order: Sequence[object] = (),
        limit: int | None = None,
        offset: int | None = None,
    ) -> dict:
        body: dict = {"statement": statement, "mode": mode}
        if bindings:
            body["bindings"] = dict(bindings)
        if order:
            body["order"] = list(order)
        if limit is not None:
            body["limit"] = limit
        if offset is not None:
            body["offset"] = offset
        return self.request("POST", "/execute", body)

    def query(
        self,
        text: str,
        params: Sequence[str] = (),
        bindings: Mapping[str, object] | None = None,
        mode: str = "certain",
        kind: str = "query",
        answer: str = "ans",
        order: Sequence[object] = (),
        limit: int | None = None,
        offset: int | None = None,
    ) -> dict:
        body: dict = {
            "kind": kind,
            "text": text,
            "params": list(params),
            "answer": answer,
            "mode": mode,
        }
        if bindings:
            body["bindings"] = dict(bindings)
        if order:
            body["order"] = list(order)
        if limit is not None:
            body["limit"] = limit
        if offset is not None:
            body["offset"] = offset
        return self.request("POST", "/query", body)

    def edit(self, edits: Sequence[Mapping[str, object]]) -> dict:
        return self.request("POST", "/edit", {"edits": list(edits)})

    def insert(self, relation: str, *rows: Sequence[object]) -> dict:
        return self.edit(
            [
                {"op": "insert", "relation": relation, "row": list(row)}
                for row in rows
            ]
        )

    def publish(
        self,
        peers: Sequence[str] | None = None,
        strategy: str | None = None,
    ) -> dict:
        body: dict = {}
        if peers is not None:
            body["peers"] = list(peers)
        if strategy is not None:
            body["strategy"] = strategy
        return self.request("POST", "/publish", body)

    def shutdown(self) -> dict:
        return self.request("POST", "/shutdown")

    def __repr__(self) -> str:
        return f"<ServeClient http://{self.host}:{self.port}>"
