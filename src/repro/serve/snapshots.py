"""Copy-on-publish snapshot management: the serving tier's read view.

The snapshot-isolation rule, in one paragraph: **readers never touch the
live database**.  Every read executes against the :class:`~repro.storage.
snapshot.DatabaseSnapshot` that was pinned at the end of the last
publish/exchange — a consistent fixpoint by construction.  When a write
completes, the writer (still holding the exchange lock, still in the
writer thread) pins a *new* snapshot and swaps the ``current`` reference;
in-flight readers keep the old snapshot alive until they finish, new
readers pick up the new one.  Nothing ever blocks a reader, and no reader
can ever observe a torn mid-fixpoint state.

Only the ``R__o`` output tables are pinned — they are the complete read
set of rewritten queries and programs (provenance-annotated answers need
the live provenance tables and are served on the write path instead).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from ..schema.internal import output_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.cdss import CDSS
    from ..storage.snapshot import DatabaseSnapshot


def _snapshot_samples(manager: "SnapshotManager"):
    """Metrics collector: refresh count + current snapshot version."""
    yield _metrics.Sample(
        "repro_snapshot_refreshes_total",
        _metrics.KIND_COUNTER,
        "",
        (),
        manager.refreshes,
    )
    yield _metrics.Sample(
        "repro_snapshot_version",
        _metrics.KIND_GAUGE,
        "Database version of the currently served snapshot",
        (),
        manager.current.version,
    )


class SnapshotManager:
    """Holds the serving tier's current pinned snapshot.

    ``current`` is swapped by one atomic attribute assignment, so readers
    on the event loop (or in reader threads) may load it without any
    lock; :meth:`refresh` is called from the writer thread after every
    completed publish/exchange (copy-on-publish) while the exchange lock
    is still held.
    """

    def __init__(self, cdss: "CDSS") -> None:
        self._cdss = cdss
        self.refreshes = 0
        self.current: "DatabaseSnapshot" = self._pin()
        _metrics.REGISTRY.register(self, _snapshot_samples)

    def _pin(self) -> "DatabaseSnapshot":
        system = self._cdss.system()
        names = tuple(
            output_name(relation)
            for relation in system.internal.relation_names()
        )
        return system.db.pin(names)

    def refresh(self) -> "DatabaseSnapshot":
        """Pin the current fixpoint and publish it to readers."""
        with _tracing.span("snapshot-refresh"):
            snapshot = self._pin()
            self.current = snapshot
            self.refreshes += 1
            return snapshot

    def stats(self) -> dict:
        snapshot = self.current
        return {
            "version": snapshot.version,
            "refreshes": self.refreshes,
            "relations": len(snapshot.names),
            "rows": snapshot.total_rows(),
        }
