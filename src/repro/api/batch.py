"""Transactional edit batches.

A :class:`Batch` stages insertions and deletions without touching any edit
log, then applies them **atomically** when its ``with`` block exits
cleanly::

    with peer.batch() as tx:
        tx.insert("G", (1, 2, 3))
        tx.insert("G", (3, 5, 2))
        tx.delete("B", (3, 5))
    # all three entries are now in the owning peers' edit logs

If the block raises, nothing reaches any edit log — the staged entries are
discarded and the exception propagates.  Edits are validated against the
schema (and, for peer-scoped batches, against relation ownership) at
*staging* time, so a batch that enters :meth:`commit` can no longer fail
half-way.

Besides transactionality this is the hot insert path's bulk entry point:
commit groups staged entries per peer and appends each group with one
:meth:`~repro.core.editlog.EditLog.extend` call instead of one facade call
per row.  The workload generator and the figure benchmarks route their
insertion streams through it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..core.editlog import Update
from ..schema.relation import SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.cdss import CDSS


class BatchError(Exception):
    """Raised on invalid batch usage (re-entry, commit after close, ...)."""


class Batch:
    """A staged, atomically-applied group of edit-log entries.

    ``peer`` restricts the batch to relations owned by that peer (the
    :meth:`PeerHandle.batch` form); a system-wide batch (``cdss.batch()``)
    routes each edit to the owning peer automatically.
    """

    def __init__(self, cdss: "CDSS", peer: str | None = None) -> None:
        self._cdss = cdss
        self._peer = peer
        self._staged: list[Update] = []
        self._closed = False

    # -- staging -----------------------------------------------------------

    def _check_relation(self, relation: str) -> None:
        if self._closed:
            raise BatchError("batch already committed or rolled back")
        owner = self._cdss._owner_peer(relation)
        if self._peer is not None and owner.name != self._peer:
            raise SchemaError(
                f"relation {relation!r} belongs to peer {owner.name!r}, "
                f"not to this batch's peer {self._peer!r}"
            )

    def insert(self, relation: str, row: Iterable[object]) -> "Batch":
        """Stage one insertion.  Returns ``self`` for chaining."""
        self._check_relation(relation)
        self._staged.append(Update(relation, tuple(row), is_insert=True))
        return self

    def delete(self, relation: str, row: Iterable[object]) -> "Batch":
        """Stage one deletion.  Returns ``self`` for chaining."""
        self._check_relation(relation)
        self._staged.append(Update(relation, tuple(row), is_insert=False))
        return self

    def insert_many(
        self, relation: str, rows: Iterable[Iterable[object]]
    ) -> "Batch":
        self._check_relation(relation)
        self._staged.extend(
            Update(relation, tuple(row), is_insert=True) for row in rows
        )
        return self

    def delete_many(
        self, relation: str, rows: Iterable[Iterable[object]]
    ) -> "Batch":
        self._check_relation(relation)
        self._staged.extend(
            Update(relation, tuple(row), is_insert=False) for row in rows
        )
        return self

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._staged)

    @property
    def staged(self) -> tuple[Update, ...]:
        """The staged (not yet applied) entries, in order."""
        return tuple(self._staged)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- terminal operations -----------------------------------------------

    def commit(self) -> int:
        """Apply every staged entry to the owning peers' edit logs.

        Entries were validated when staged, so this cannot fail part-way:
        either the batch was never committed, or all of it is in the logs.
        Returns the number of entries applied.
        """
        if self._closed:
            raise BatchError("batch already committed or rolled back")
        per_peer: dict[str, list[Update]] = {}
        for update in self._staged:
            owner = self._cdss._owner_peer(update.relation)
            per_peer.setdefault(owner.name, []).append(update)
        applied = 0
        for name, updates in per_peer.items():
            applied += self._cdss._peer(name).edit_log.extend(updates)
        self._staged.clear()
        self._closed = True
        return applied

    def rollback(self) -> int:
        """Discard every staged entry.  Returns how many were dropped."""
        if self._closed:
            raise BatchError("batch already committed or rolled back")
        dropped = len(self._staged)
        self._staged.clear()
        self._closed = True
        return dropped

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Batch":
        if self._closed:
            raise BatchError("cannot re-enter a closed batch")
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._closed:
            # The body committed or rolled back explicitly; nothing to do.
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False

    def __repr__(self) -> str:
        scope = self._peer or "system"
        state = "closed" if self._closed else f"{len(self._staged)} staged"
        return f"<Batch {scope}: {state}>"
