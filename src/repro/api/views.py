"""Lazy, composable views over peer relation instances.

A :class:`RelationView` is a *live window* onto one user relation of a
CDSS: it holds no rows itself, and every iteration / length / membership
test reads the current instance through the exchange system.  Views built
before an :meth:`~repro.core.cdss.CDSS.update_exchange` therefore observe
the post-exchange state — there is nothing to refresh.

Views compose: :meth:`~RelationView.where` conjoins a row predicate and
:meth:`~RelationView.certain` drops labeled-null rows, each returning a new
(equally lazy) view.  Predicates come in two flavours:

* **structured predicates** (``view.where(col("nam") == 5)``) — compiled
  once and *pushed down*: equality comparisons against literals probe the
  relation's hash index through the live ``R__o`` table instead of
  scanning and filtering in Python;
* **Python callables** (``view.where(lambda r: r[0] == 5)``) — the
  deprecated slow path: every row crosses the interpreter.  Still
  supported, but emits :class:`DeprecationWarning`.

Views are also the entry point to the query builder:
:meth:`~RelationView.select` / :meth:`~RelationView.join` /
:meth:`~RelationView.project` return a composable
:class:`~repro.api.query.Query` for :meth:`CDSS.prepare
<repro.core.cdss.CDSS.prepare>`.  :meth:`~RelationView.to_rows`
materializes a view as a plain ``frozenset``.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..datalog.ast import tuple_has_labeled_null
from ..provenance.expression import ProvenanceExpression
from ..schema.relation import RelationSchema
from ..storage.instance import Row
from .query import Condition, Query, compile_row_condition

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.cdss import CDSS

RowPredicate = Callable[[Row], bool]

_CompiledCondition = tuple[
    tuple[int, ...], tuple[object, ...], "Callable[[Row], bool] | None"
]


class RelationView:
    """A lazy view of one user relation's local instance.

    Supports iteration, ``len``, ``in``, predicate filtering (structured
    pushdown or deprecated callables), certain-answer restriction,
    provenance lookup, query building, and materialization::

        B = cdss.relation("B")
        len(B)                          # live count
        (3, 2) in B                     # membership
        B.where(col("id") == 3).to_rows()   # indexed pushdown
        B.provenance((3, 2))            # Pv(B(3,2))
        B.select(col("id") == param("i"))   # -> Query, for cdss.prepare
    """

    __slots__ = (
        "_cdss",
        "_relation",
        "_predicate",
        "_condition",
        "_certain_only",
        "_compiled_condition",
    )

    def __init__(
        self,
        cdss: "CDSS",
        relation: str,
        predicate: RowPredicate | None = None,
        certain_only: bool = False,
        condition: Condition | None = None,
    ) -> None:
        self._cdss = cdss
        self._relation = relation
        self._predicate = predicate
        self._condition = condition
        self._certain_only = certain_only
        self._compiled_condition: _CompiledCondition | None = None

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self._relation

    @property
    def schema(self) -> RelationSchema:
        return self._cdss._relation_schema(self._relation)

    @property
    def peer(self) -> str:
        """Name of the peer that owns this relation."""
        return self._cdss._owner_peer(self._relation).name

    # -- row access (always live) ------------------------------------------

    def _base_rows(self) -> frozenset[Row]:
        system = self._cdss.system()
        if self._certain_only:
            return system.certain_instance(self._relation)
        return system.instance(self._relation)

    def _compiled(self) -> _CompiledCondition:
        # Only reached when self._condition is not None.
        if self._compiled_condition is None:
            self._compiled_condition = compile_row_condition(
                self._condition, self.schema
            )
        return self._compiled_condition

    def _iter_live(self) -> Iterator[Row]:
        """Iterate matching rows, probing indexes for pushdown equalities."""
        predicate = self._predicate
        if self._condition is None:
            for row in self._base_rows():
                if predicate is None or predicate(row):
                    yield row
            return
        system = self._cdss.system()
        cols, values, residual = self._compiled()
        table = system.output_table(self._relation)
        if cols:
            # lookup returns a live index bucket view: snapshot it so the
            # caller may mutate the system between yields.
            rows: Iterable[Row] = tuple(table.lookup(cols, values))
        else:
            rows = table.rows()
        certain_only = self._certain_only
        for row in rows:
            if residual is not None and not residual(row):
                continue
            if certain_only and tuple_has_labeled_null(row):
                continue
            if predicate is not None and not predicate(row):
                continue
            yield row

    def to_rows(self) -> frozenset[Row]:
        """Materialize the view as a plain frozenset of rows."""
        return frozenset(self._iter_live())

    def __iter__(self) -> Iterator[Row]:
        return self._iter_live()

    def __len__(self) -> int:
        if self._predicate is None and self._condition is None:
            return len(self._base_rows())
        return sum(1 for _ in self._iter_live())

    def __contains__(self, row: Iterable[object]) -> bool:
        row = tuple(row)
        if self._predicate is not None and not self._predicate(row):
            return False
        if self._condition is not None:
            cols, values, residual = self._compiled()
            if any(row[c] != v for c, v in zip(cols, values)):
                return False
            if residual is not None and not residual(row):
                return False
        return row in self._base_rows()

    def __bool__(self) -> bool:
        return any(True for _ in self._iter_live())

    # -- composition -------------------------------------------------------

    def where(self, predicate: Condition | RowPredicate) -> "RelationView":
        """A narrower view keeping only rows satisfying ``predicate``.

        Structured predicates (``col("nam") == 5``) are pushed down to
        indexed probes.  Python callables still work but are the
        deprecated slow path (full scan through the interpreter).
        """
        if isinstance(predicate, Condition):
            condition = (
                predicate
                if self._condition is None
                else self._condition & predicate
            )
            return RelationView(
                self._cdss,
                self._relation,
                self._predicate,
                self._certain_only,
                condition,
            )
        if not callable(predicate):
            raise TypeError(
                f"where() expects a structured predicate or callable, "
                f"got {predicate!r}"
            )
        warnings.warn(
            "callable row predicates are deprecated (they scan every row "
            "in Python); use structured predicates, e.g. "
            'where(col("attr") == value), which push down to indexed '
            "probes — see DESIGN.md's query-subsystem section",
            DeprecationWarning,
            stacklevel=2,
        )
        previous = self._predicate
        if previous is None:
            combined = predicate
        else:
            def combined(row: Row, _p=previous, _q=predicate) -> bool:
                return _p(row) and _q(row)
        return RelationView(
            self._cdss,
            self._relation,
            combined,
            self._certain_only,
            self._condition,
        )

    def certain(self) -> "RelationView":
        """The view restricted to certain answers (no labeled nulls)."""
        return RelationView(
            self._cdss,
            self._relation,
            self._predicate,
            True,
            self._condition,
        )

    # -- query building ----------------------------------------------------

    def _as_query(self) -> Query:
        if self._predicate is not None:
            from ..core.query import QueryError

            raise QueryError(
                "cannot build a Query from a view filtered with a Python "
                "callable; use structured predicates instead"
            )
        query = Query.scan(self)
        if self._condition is not None:
            query = query.select(self._condition)
        return query

    def select(self, *conditions: Condition) -> Query:
        """A :class:`~repro.api.query.Query` over this relation with the
        given structured predicates conjoined (prepare with
        :meth:`CDSS.prepare <repro.core.cdss.CDSS.prepare>`)."""
        return self._as_query().select(*conditions)

    def join(
        self,
        other: "RelationView | str",
        on: object,
        alias: str | None = None,
    ) -> Query:
        """A :class:`~repro.api.query.Query` joining this relation with
        ``other`` (see :meth:`Query.join <repro.api.query.Query.join>`)."""
        return self._as_query().join(other, on, alias)

    def project(self, *columns: str) -> Query:
        """A :class:`~repro.api.query.Query` projecting this relation onto
        the named columns."""
        return self._as_query().project(*columns)

    # -- provenance --------------------------------------------------------

    def provenance(
        self, row: Iterable[object], max_depth: int = 8
    ) -> ProvenanceExpression:
        """The provenance expression of one row of this relation."""
        return self._cdss.provenance_graph().expression_for(
            self._relation, tuple(row), max_depth=max_depth
        )

    def __repr__(self) -> str:
        # No row count here: len() would (re)build the exchange system,
        # and repr must stay side-effect free for debuggers and logging.
        qualifiers = []
        if self._predicate is not None or self._condition is not None:
            qualifiers.append("filtered")
        if self._certain_only:
            qualifiers.append("certain")
        suffix = f" [{', '.join(qualifiers)}]" if qualifiers else ""
        return f"<RelationView {self._relation}{suffix}>"
