"""Lazy, composable views over peer relation instances.

A :class:`RelationView` is a *live window* onto one user relation of a
CDSS: it holds no rows itself, and every iteration / length / membership
test reads the current instance through the exchange system.  Views built
before an :meth:`~repro.core.cdss.CDSS.update_exchange` therefore observe
the post-exchange state — there is nothing to refresh.

Views compose: :meth:`~RelationView.where` conjoins a row predicate and
:meth:`~RelationView.certain` drops labeled-null rows, each returning a new
(equally lazy) view.  :meth:`~RelationView.to_rows` materializes the view as
a plain ``frozenset`` for callers that want the old bare-set behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..provenance.expression import ProvenanceExpression
from ..schema.relation import RelationSchema
from ..storage.instance import Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.cdss import CDSS

RowPredicate = Callable[[Row], bool]


class RelationView:
    """A lazy view of one user relation's local instance.

    Supports iteration, ``len``, ``in``, predicate filtering, certain-answer
    restriction, provenance lookup, and materialization::

        B = cdss.relation("B")
        len(B)                      # live count
        (3, 2) in B                 # membership
        B.where(lambda r: r[0] == 3).to_rows()
        B.provenance((3, 2))        # Pv(B(3,2))
    """

    __slots__ = ("_cdss", "_relation", "_predicate", "_certain_only")

    def __init__(
        self,
        cdss: "CDSS",
        relation: str,
        predicate: RowPredicate | None = None,
        certain_only: bool = False,
    ) -> None:
        self._cdss = cdss
        self._relation = relation
        self._predicate = predicate
        self._certain_only = certain_only

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self._relation

    @property
    def schema(self) -> RelationSchema:
        return self._cdss._relation_schema(self._relation)

    @property
    def peer(self) -> str:
        """Name of the peer that owns this relation."""
        return self._cdss._owner_peer(self._relation).name

    # -- row access (always live) ------------------------------------------

    def _base_rows(self) -> frozenset[Row]:
        system = self._cdss.system()
        if self._certain_only:
            return system.certain_instance(self._relation)
        return system.instance(self._relation)

    def to_rows(self) -> frozenset[Row]:
        """Materialize the view as a plain frozenset of rows."""
        rows = self._base_rows()
        if self._predicate is not None:
            rows = frozenset(r for r in rows if self._predicate(r))
        return rows

    def __iter__(self) -> Iterator[Row]:
        predicate = self._predicate
        for row in self._base_rows():
            if predicate is None or predicate(row):
                yield row

    def __len__(self) -> int:
        if self._predicate is None:
            return len(self._base_rows())
        return sum(1 for _ in self)

    def __contains__(self, row: Iterable[object]) -> bool:
        row = tuple(row)
        if self._predicate is not None and not self._predicate(row):
            return False
        return row in self._base_rows()

    def __bool__(self) -> bool:
        return any(True for _ in self)

    # -- composition -------------------------------------------------------

    def where(self, predicate: RowPredicate) -> "RelationView":
        """A narrower view keeping only rows satisfying ``predicate``."""
        previous = self._predicate
        if previous is None:
            combined = predicate
        else:
            def combined(row: Row, _p=previous, _q=predicate) -> bool:
                return _p(row) and _q(row)
        return RelationView(
            self._cdss, self._relation, combined, self._certain_only
        )

    def certain(self) -> "RelationView":
        """The view restricted to certain answers (no labeled nulls)."""
        return RelationView(
            self._cdss, self._relation, self._predicate, certain_only=True
        )

    # -- provenance --------------------------------------------------------

    def provenance(
        self, row: Iterable[object], max_depth: int = 8
    ) -> ProvenanceExpression:
        """The provenance expression of one row of this relation."""
        return self._cdss.provenance_graph().expression_for(
            self._relation, tuple(row), max_depth=max_depth
        )

    def __repr__(self) -> str:
        # No row count here: len() would (re)build the exchange system,
        # and repr must stay side-effect free for debuggers and logging.
        qualifiers = []
        if self._predicate is not None:
            qualifiers.append("filtered")
        if self._certain_only:
            qualifiers.append("certain")
        suffix = f" [{', '.join(qualifiers)}]" if qualifiers else ""
        return f"<RelationView {self._relation}{suffix}>"
