"""Prepared recursive query programs: parse + rewrite + plan-cache once.

Recursive datalog programs over the peer instances (Section 2.1's
query-answering surface, extended with auxiliary intensional predicates)
historically bypassed the prepared subsystem: every
``cdss.query_program(...)`` call re-parsed the text, re-validated it
against the internal schema, and — because the engine plan cache is
id-keyed — re-planned every rule from scratch in a throwaway engine.

:class:`PreparedProgram` folds programs into the prepared subsystem:

* the program is parsed, validated, and rewritten to the internal
  ``R__o`` tables **once** (:func:`~repro.core.query.
  rewrite_program_to_internal`), pinning the rule objects;
* a dedicated, persistent :class:`~repro.datalog.engine.SemiNaiveEngine`
  evaluates every execution, so the engine-level plan cache
  (``SemiNaiveEngine.cached_plan`` is the same machinery ``run`` uses
  internally) and the persistent Δ-relation pool stay warm across
  executes — re-running a program re-plans nothing;
* ``params`` names program variables bound at execute time.  Bindings
  substitute as constants into a *variant* program, memoized per value
  tuple, so each distinct binding plans once and repeats are pure cache
  hits;
* evaluation runs in a scratch database that attaches the live ``R__o``
  instances (shared, read-only) and is discarded afterwards — the
  exchanged state is never touched, exactly like the old bypass path.

Like :class:`~repro.api.query.PreparedQuery`, a CDSS-bound prepared
program transparently re-binds after the CDSS is reconfigured.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from ..core.query import (
    QueryError,
    certain_rows,
    rewrite_program_to_internal,
)
from ..datalog.ast import (
    Atom,
    Constant,
    Program,
    Rule,
    SkolemTerm,
    Variable,
)
from ..datalog.engine import SemiNaiveEngine
from ..datalog.parser import parse_program
from ..schema.internal import InternalSchema, output_name
from ..storage.database import Database
from ..storage.instance import Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.cdss import CDSS
    from ..datalog.planner import Planner
    from ..storage.snapshot import DatabaseSnapshot

_VARIANT_CACHE_LIMIT = 256
"""Substituted program variants kept per prepared program."""


def _substitute_term(term: object, mapping: dict[Variable, Constant]):
    if isinstance(term, Variable):
        return mapping.get(term, term)
    if isinstance(term, SkolemTerm):
        return SkolemTerm(
            term.function,
            tuple(_substitute_term(arg, mapping) for arg in term.args),
        )
    return term


def _substitute_program(
    program: Program, mapping: dict[Variable, Constant]
) -> Program:
    rules = []
    for rule in program:
        rules.append(
            Rule(
                Atom(
                    rule.head.predicate,
                    tuple(
                        _substitute_term(t, mapping) for t in rule.head.terms
                    ),
                ),
                tuple(
                    Atom(
                        atom.predicate,
                        tuple(
                            _substitute_term(t, mapping) for t in atom.terms
                        ),
                        negated=atom.negated,
                    )
                    for atom in rule.body
                ),
                label=rule.label,
            )
        )
    return Program(tuple(rules), name=program.name)


class ProgramAnswers:
    """The materialized answers of one program execution.

    Iteration and ``to_rows`` follow certain-answer semantics (labeled
    nulls dropped, Section 2.1); :meth:`with_nulls` returns the superset.
    """

    __slots__ = ("_rows", "_certain")

    def __init__(self, rows: frozenset[Row]) -> None:
        self._rows = rows
        self._certain: frozenset[Row] | None = None

    def certain(self) -> frozenset[Row]:
        """Answers with labeled-null rows dropped (the default view).

        Computed once and cached — the rows are immutable, and membership
        tests / iteration route through this."""
        if self._certain is None:
            self._certain = certain_rows(self._rows)
        return self._certain

    def with_nulls(self) -> frozenset[Row]:
        """The answer superset including labeled-null rows."""
        return self._rows

    def to_rows(self) -> frozenset[Row]:
        return self.certain()

    def __iter__(self) -> Iterator[Row]:
        return iter(self.certain())

    def __len__(self) -> int:
        return len(self.certain())

    def __contains__(self, row: object) -> bool:
        # Frozenset-like semantics: anything that is not a row simply is
        # not a member (a bare scalar or a string must not crash or match
        # its character tuple).
        if not isinstance(row, (tuple, list)):
            return False
        return tuple(row) in self.certain()

    def __repr__(self) -> str:
        return f"<ProgramAnswers: {len(self._rows)} rows (with nulls)>"


class PreparedProgram:
    """A recursive query program validated and plan-cached once.

    Thread-safe like :class:`~repro.api.query.PreparedQuery`: the mutable
    (system, db, internal, rewritten, variants) state lives in one
    ``_state`` tuple swapped under a lock, and executions of the shared
    engine are serialized — the serving tier runs prepared programs from
    reader threads while a writer reconfigures or exchanges.
    """

    __slots__ = (
        "_program",
        "_answer",
        "_param_names",
        "_cdss",
        "_state",
        "_engine",
        "_rebind_lock",
        "_exec_lock",
    )

    def __init__(
        self,
        program: "str | Program",
        db: Database,
        internal: InternalSchema,
        answer: str = "ans",
        params: Sequence[str] = (),
        planner: "Planner | None" = None,
        cdss: "CDSS | None" = None,
        system: object | None = None,
    ) -> None:
        parsed: Program = (
            parse_program(program) if isinstance(program, str) else program
        )
        self._program = parsed
        self._answer = answer
        names = tuple(params)
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate parameter names: {names!r}")
        variables = {
            variable.name for rule in parsed for variable in rule.variables()
        }
        for name in names:
            if name not in variables:
                raise QueryError(
                    f"parameter {name!r} does not occur in the program"
                )
        self._param_names = names
        self._cdss = cdss
        # Dedicated persistent engine: the rewritten rules are pinned
        # below, so every re-execution hits the engine plan cache and
        # reuses the warm Δ-relation pool.
        self._engine = SemiNaiveEngine(planner)
        self._rebind_lock = threading.Lock()
        # The engine's Δ-relation pool and plan cache are not re-entrant;
        # concurrent reader threads take turns.
        self._exec_lock = threading.Lock()
        # (system, db, internal, rewritten, variants): swapped as ONE
        # tuple so a concurrent re-bind can never pair a new rewritten
        # program with an old schema or a stale variant cache.
        self._state: tuple[
            object | None,
            Database,
            InternalSchema,
            Program,
            dict[tuple[object, ...], Program],
        ] = (system, db, internal, self._rewrite(parsed, internal), {})

    def _rewrite(self, parsed: Program, internal: InternalSchema) -> Program:
        rewritten = rewrite_program_to_internal(
            parsed, internal, self._answer
        )
        if self._param_names:
            # Safety must hold with parameters bound; probe-substitute a
            # placeholder constant so unsafe programs fail at prepare time.
            probe = {
                Variable(name): Constant(object()) for name in self._param_names
            }
            _substitute_program(rewritten, probe).check_safety()
        else:
            rewritten.check_safety()
        return rewritten

    # -- introspection -----------------------------------------------------

    @property
    def param_names(self) -> tuple[str, ...]:
        """Names the execute() keyword bindings must supply."""
        return self._param_names

    @property
    def answer_predicate(self) -> str:
        return self._answer

    @property
    def stats(self):
        """The dedicated engine's cumulative :class:`EvaluationResult` —
        ``plan_cache_hit_rate`` approaches 1.0 across re-executions."""
        return self._engine.stats

    # -- execution ---------------------------------------------------------

    def _current(
        self,
    ) -> tuple[
        object | None,
        Database,
        InternalSchema,
        Program,
        dict[tuple[object, ...], Program],
    ]:
        state = self._state
        if self._cdss is not None:
            current = self._cdss.system()
            if current is not state[0]:
                # The CDSS was reconfigured: re-validate and re-pin against
                # the rebuilt system (one-time re-plan, like preparation).
                # Double-checked: racing executes re-bind exactly once.
                with self._rebind_lock:
                    state = self._state
                    if current is not state[0]:
                        rewritten = self._rewrite(
                            self._program, current.internal
                        )
                        with self._exec_lock:
                            self._engine.invalidate_plans()
                        state = (
                            current,
                            current.db,
                            current.internal,
                            rewritten,
                            {},
                        )
                        self._state = state
        return state

    def _variant(
        self,
        rewritten: Program,
        variants: dict[tuple[object, ...], Program],
        values: tuple[object, ...],
    ) -> Program:
        if not self._param_names:
            return rewritten
        variant = variants.get(values)
        if variant is None:
            mapping = {
                Variable(name): Constant(value)
                for name, value in zip(self._param_names, values)
            }
            variant = _substitute_program(rewritten, mapping)
            if len(variants) >= _VARIANT_CACHE_LIMIT:
                variants.clear()
            variants[values] = variant
        return variant

    def _bind_values(
        self, bindings: Mapping[str, object]
    ) -> tuple[object, ...]:
        names = self._param_names
        missing = [n for n in names if n not in bindings]
        extra = [n for n in bindings if n not in names]
        if missing or extra:
            raise QueryError(
                f"parameter mismatch: missing {missing!r}, unexpected {extra!r}"
                if missing
                else f"unexpected parameters {extra!r}"
            )
        return tuple(bindings[n] for n in names)

    def _run(
        self,
        source: Database,
        internal: InternalSchema,
        rewritten: Program,
        variants: dict[tuple[object, ...], Program],
        values: tuple[object, ...],
    ) -> ProgramAnswers:
        program = self._variant(rewritten, variants, values)
        scratch = Database()
        attached: list[str] = []
        for relation in internal.relation_names():
            instance = source.get(output_name(relation))
            if instance is not None:
                scratch.attach(instance)
                attached.append(instance.name)
        try:
            with self._exec_lock:
                self._engine.run(program, scratch)
            answers = scratch[self._answer].rows()
        finally:
            # Detach the shared instances: attach registered the scratch
            # database as a mutation watcher, which must not outlive this
            # call (it would leak the scratch db and slow every write).
            for name in attached:
                scratch.drop(name)
        return ProgramAnswers(frozenset(answers))

    def execute(self, **bindings: object) -> ProgramAnswers:
        """Bind parameters, evaluate to fixpoint, return the answers.

        Evaluation runs in a throwaway scratch database sharing the live
        ``R__o`` instances; the exchanged state is never modified.
        """
        values = self._bind_values(bindings)
        _system, db, internal, rewritten, variants = self._current()
        return self._run(db, internal, rewritten, variants, values)

    def execute_at(
        self, snapshot: "DatabaseSnapshot", **bindings: object
    ) -> ProgramAnswers:
        """Evaluate against a pinned snapshot instead of the live system.

        The scratch database attaches the snapshot's private ``R__o``
        copies, so a concurrently running exchange never tears the
        fixpoint this program reads — the serving tier's snapshot-isolated
        program path.  Runs under the snapshot's lock (it serializes lazy
        index builds across reader threads).
        """
        values = self._bind_values(bindings)
        _system, _db, internal, rewritten, variants = self._current()
        with snapshot.lock:
            return self._run(
                snapshot.db, internal, rewritten, variants, values
            )

    def __repr__(self) -> str:
        suffix = f" params={list(self._param_names)}" if self._param_names else ""
        return (
            f"<PreparedProgram {len(self._state[3])} rules -> "
            f"{self._answer!r}{suffix}>"
        )


def prepare_program(
    program: "str | Program",
    db: Database,
    internal: InternalSchema,
    answer: str = "ans",
    params: Sequence[str] = (),
    planner: "Planner | None" = None,
    cdss: "CDSS | None" = None,
    system: object | None = None,
) -> PreparedProgram:
    """Validate + rewrite a program once; the low-level entry point.

    :meth:`CDSS.prepare_program <repro.core.cdss.CDSS.prepare_program>`
    calls this with the live system (and keeps a per-text cache so
    ``query_program`` re-executions share one prepared program).
    """
    return PreparedProgram(
        program,
        db,
        internal,
        answer=answer,
        params=params,
        planner=planner,
        cdss=cdss,
        system=system,
    )
