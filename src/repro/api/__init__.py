"""The v2 public API layer: handles, batches, relation views, specs.

This package is the peer-centric, transactional surface the rest of the
library is wired through.  The layering (documented in DESIGN.md) is::

    repro.api      handles / batches / views / declarative specs   (you)
    repro.core     CDSS state machine, edit logs, update exchange
    repro.datalog  engine + planners          repro.provenance  semirings
    repro.schema   tgds + internal schema     repro.storage     instances

Entry points:

* :class:`PeerHandle` / :class:`TrustScope` — returned by
  ``CDSS.add_peer`` / ``CDSS.peer``; scoped editing, reading and trust.
* :class:`Batch` — ``with peer.batch() as tx:`` transactional edits,
  applied to the edit logs atomically on clean exit.
* :class:`RelationView` — lazy instance views with filtering (structured
  predicates push down to indexed probes), certain-answer restriction and
  per-row provenance.
* :class:`Query` / :func:`col` / :func:`param` — the composable query
  surface; ``cdss.prepare(query)`` returns a :class:`PreparedQuery`
  (planned + compiled once, parameterized execution through the engine
  plan cache) whose :meth:`~PreparedQuery.execute` yields a lazy
  :class:`AnswerSet` with ``certain`` / ``with_nulls`` / ``annotated``
  answer modes.
* :class:`SystemSpec` (+ :class:`PeerSpec`, :class:`MappingSpec`,
  :class:`RelationSpec`, :class:`EditSpec`) — declarative configuration
  with JSON round-trip; ``python -m repro run spec.json`` executes one,
  ``python -m repro query spec.json 'ans(x) :- R(x)'`` queries one.
"""

from .batch import Batch, BatchError
from .handles import PeerHandle, TrustScope
from .programs import PreparedProgram, ProgramAnswers, prepare_program
from .query import (
    AnswerSet,
    Comparison,
    Condition,
    PreparedQuery,
    Query,
    col,
    param,
)
from .spec import (
    DurabilitySpec,
    EditSpec,
    MappingSpec,
    PeerSpec,
    RelationSpec,
    SpecError,
    SystemSpec,
)
from .views import RelationView

__all__ = [
    "AnswerSet",
    "Batch",
    "BatchError",
    "Comparison",
    "Condition",
    "DurabilitySpec",
    "EditSpec",
    "MappingSpec",
    "PeerHandle",
    "PeerSpec",
    "PreparedProgram",
    "PreparedQuery",
    "ProgramAnswers",
    "Query",
    "RelationSpec",
    "RelationView",
    "SpecError",
    "SystemSpec",
    "TrustScope",
    "col",
    "param",
    "prepare_program",
]
