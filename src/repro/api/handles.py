"""Peer-centric handles: the v2 entry point for editing, reading and trust.

``CDSS.add_peer`` / ``CDSS.peer`` return a :class:`PeerHandle` — a light
object scoped to one participant that replaces the old string-keyed facade
calls::

    pgus = cdss.add_peer("PGUS", {"G": ("id", "can", "nam")})
    pgus.insert("G", (1, 2, 3))            # was: cdss.insert("G", ...)
    with pgus.batch() as tx:               # transactional bulk edits
        tx.insert("G", (3, 5, 2))
    view = pgus.relation("G")              # lazy RelationView
    pgus.trust().distrust_peer("PuBio")    # was: cdss.distrust_peer(...)

Handles hold no state of their own (only the CDSS reference and the peer
name), so they stay valid across reconfiguration and update exchanges.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from ..provenance.trust import TrustCondition
from ..schema.relation import PeerSchema, SchemaError
from ..storage.instance import Row
from .batch import Batch
from .views import RelationView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.cdss import CDSS


class TrustScope:
    """One peer's trust policy, exposed as a fluent builder/evaluator.

    Returned by :meth:`PeerHandle.trust`; every mutator reconfigures the
    CDSS (the exchange system is rebuilt lazily) and returns ``self`` so
    judgments chain.
    """

    __slots__ = ("_cdss", "_peer")

    def __init__(self, cdss: "CDSS", peer: str) -> None:
        self._cdss = cdss
        self._peer = peer

    def condition(
        self,
        mapping: str,
        predicate: TrustCondition | Callable[[Row], bool],
        description: str | None = None,
    ) -> "TrustScope":
        """Attach a trust condition to tuples derived through ``mapping``."""
        self._cdss._set_trust_condition(
            self._peer, mapping, predicate, description
        )
        return self

    def distrust_row(
        self, relation: str, row: Iterable[object]
    ) -> "TrustScope":
        """Assign D to one specific base tuple (Section 3.3)."""
        self._cdss._distrust_token(self._peer, relation, row)
        return self

    def distrust_peer(self, other: str) -> "TrustScope":
        """Distrust all of ``other``'s base contributions."""
        self._cdss._distrust_peer(self._peer, other)
        return self

    def of(self, relation: str, row: Iterable[object]) -> bool:
        """Evaluate this peer's trust of a tuple against stored provenance
        (Example 7's offline calculation)."""
        return self._cdss._trust_of(self._peer, relation, row)

    def __repr__(self) -> str:
        return f"<TrustScope {self._peer}>"


class PeerHandle:
    """A rich handle on one peer: edits, batches, views, and trust."""

    __slots__ = ("_cdss", "_name")

    def __init__(self, cdss: "CDSS", name: str) -> None:
        self._cdss = cdss
        self._name = name

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def schema(self) -> PeerSchema:
        return self._cdss._peer(self._name).schema

    def relations(self) -> tuple[str, ...]:
        """Names of the relations this peer owns, in declaration order."""
        return tuple(r.name for r in self.schema.relations)

    # -- reading -----------------------------------------------------------

    def relation(self, name: str) -> RelationView:
        """A lazy view of one of this peer's relations."""
        self._own(name)
        return RelationView(self._cdss, name)

    # -- querying ----------------------------------------------------------

    def prepare(self, query, params: Iterable[str] = ()) -> "object":
        """Prepare a query posed at this peer (Section 2.1: peers answer
        queries over their local instances).  Delegates to
        :meth:`CDSS.prepare <repro.core.cdss.CDSS.prepare>`; the returned
        :class:`~repro.api.query.PreparedQuery` reads the same exchanged
        local instances every peer queries."""
        return self._cdss.prepare(query, tuple(params))

    def query(self, text: str, certain: bool = True):
        """One-shot conjunctive query posed at this peer."""
        return self._cdss.query(text, certain=certain)

    # -- editing (offline) -------------------------------------------------

    def insert(self, relation: str, row: Iterable[object]) -> None:
        """Record an insertion in this peer's edit log."""
        self._own(relation)
        self._cdss._peer(self._name).edit_log.insert(relation, row)

    def delete(self, relation: str, row: Iterable[object]) -> None:
        """Record a deletion (curation) in this peer's edit log."""
        self._own(relation)
        self._cdss._peer(self._name).edit_log.delete(relation, row)

    def batch(self) -> Batch:
        """A transactional batch scoped to this peer's relations."""
        return Batch(self._cdss, peer=self._name)

    def pending_edits(self) -> int:
        """Entries in this peer's edit log awaiting the next exchange."""
        return len(self._cdss._peer(self._name).edit_log)

    # -- trust -------------------------------------------------------------

    def trust(self) -> TrustScope:
        """This peer's trust policy as a fluent scope."""
        return TrustScope(self._cdss, self._name)

    # -- internals ---------------------------------------------------------

    def _own(self, relation: str) -> None:
        owner = self._cdss._owner_peer(relation)
        if owner.name != self._name:
            raise SchemaError(
                f"relation {relation!r} belongs to peer {owner.name!r}, "
                f"not {self._name!r}"
            )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PeerHandle)
            and other._cdss is self._cdss
            and other._name == self._name
        )

    def __hash__(self) -> int:
        return hash((id(self._cdss), self._name))

    def __repr__(self) -> str:
        return f"<PeerHandle {self._name}: {len(self.relations())} relations>"
