"""Declarative system specifications with JSON round-trip.

A :class:`SystemSpec` is a complete, serializable description of a CDSS:
peers and their relation schemas, named tgd mappings (as parseable text),
engine options (maintenance strategy, provenance encoding, perspective),
and optionally the base data as an ordered list of signed edits.

The spec layer decouples *describing* a confederation from *running* one:

* ``CDSS.from_spec(spec)`` / ``SystemSpec.build()`` construct a configured
  system (edits staged in the peers' edit logs, no exchange run yet);
* ``cdss.to_spec()`` captures a running system back into a spec — local
  contributions become ``+`` edits, persistent rejections become ``-``
  edits, and any unpublished edit-log entries are appended in order;
* ``SystemSpec.to_json`` / ``from_json`` / ``save`` / ``load`` give the
  JSON round-trip that ``python -m repro run <spec.json>`` consumes.

Trust conditions are arbitrary Python predicates and therefore outside the
declarative subset; token-level and peer-level distrust could be added here
without breaking the format (unknown keys are rejected loudly today).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from ..core.exchange import STRATEGIES, STRATEGY_UNIFIED
from ..provenance.relations import ENCODING_STYLES, ENCODING_COMPOSITE
from ..storage.indexes import INDEX_POLICIES, POLICY_DEFERRED
from ..schema.relation import PeerSchema, RelationSchema, SchemaError
from ..schema.tgd import SchemaMapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.cdss import CDSS

SPEC_FORMAT = "repro/system-spec@1"

INSERT = "+"
DELETE = "-"


class SpecError(Exception):
    """Raised for malformed specs or spec documents."""


def _require(document: Mapping[str, object], key: str, context: str) -> object:
    try:
        return document[key]
    except (KeyError, TypeError):
        raise SpecError(f"{context} is missing required key {key!r}") from None


@dataclass(frozen=True)
class RelationSpec:
    """One relation: a name and its attribute names."""

    name: str
    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", tuple(self.attributes))

    @classmethod
    def of(cls, schema: RelationSchema) -> "RelationSpec":
        return cls(schema.name, schema.attributes)

    def to_schema(self) -> RelationSchema:
        return RelationSchema(self.name, self.attributes)

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "attributes": list(self.attributes)}

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "RelationSpec":
        return cls(
            str(_require(document, "name", "relation spec")),
            tuple(
                str(a)
                for a in _require(document, "attributes", "relation spec")  # type: ignore[union-attr]
            ),
        )


@dataclass(frozen=True)
class PeerSpec:
    """One peer: a name and its relations."""

    name: str
    relations: tuple[RelationSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "relations", tuple(self.relations))

    @classmethod
    def of(cls, schema: PeerSchema) -> "PeerSpec":
        return cls(
            schema.peer,
            tuple(RelationSpec.of(r) for r in schema.relations),
        )

    def to_schemas(self) -> tuple[RelationSchema, ...]:
        return tuple(r.to_schema() for r in self.relations)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "relations": [r.to_dict() for r in self.relations],
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "PeerSpec":
        return cls(
            str(_require(document, "name", "peer spec")),
            tuple(
                RelationSpec.from_dict(r)
                for r in _require(document, "relations", "peer spec")  # type: ignore[union-attr]
            ),
        )


@dataclass(frozen=True)
class MappingSpec:
    """One named schema mapping, as parseable tgd text."""

    name: str
    tgd: str

    @classmethod
    def of(cls, mapping: SchemaMapping) -> "MappingSpec":
        return cls(mapping.name, mapping.to_tgd_text())

    def to_mapping(self) -> SchemaMapping:
        return SchemaMapping.parse(self.name, self.tgd)

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "tgd": self.tgd}

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "MappingSpec":
        return cls(
            str(_require(document, "name", "mapping spec")),
            str(_require(document, "tgd", "mapping spec")),
        )


@dataclass(frozen=True)
class EditSpec:
    """One signed edit: ``(op, relation, row)`` with op in {'+', '-'}."""

    relation: str
    row: tuple[object, ...]
    op: str = INSERT

    def __post_init__(self) -> None:
        object.__setattr__(self, "row", tuple(self.row))
        if self.op not in (INSERT, DELETE):
            raise SpecError(
                f"edit op must be {INSERT!r} or {DELETE!r}, got {self.op!r}"
            )

    def to_dict(self) -> dict[str, object]:
        return {"op": self.op, "relation": self.relation, "row": list(self.row)}

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "EditSpec":
        row = _require(document, "row", "edit spec")
        if isinstance(row, str) or not isinstance(row, (list, tuple)):
            raise SpecError(
                f"edit row must be a JSON array of values, got {row!r}"
            )
        return cls(
            str(_require(document, "relation", "edit spec")),
            tuple(row),
            str(document.get("op", INSERT)),
        )


#: Valid write-ahead-log fsync policies (mirrors
#: :data:`repro.durability.wal.FSYNC_POLICIES`; duplicated here because the
#: spec layer must not import the durability package it configures).
_FSYNC_POLICIES = ("always", "never")


@dataclass(frozen=True)
class DurabilitySpec:
    """How a node persists itself (see :mod:`repro.durability`).

    ``path`` is the node's data directory (overridable on the command
    line), ``fsync`` the WAL flush policy, and ``checkpoint_every`` the
    publish cadence at which the serve tier checkpoints automatically
    (0 = only on graceful shutdown).
    """

    path: str | None = None
    fsync: str = "always"
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        if self.fsync not in _FSYNC_POLICIES:
            raise SpecError(
                f"unknown fsync policy {self.fsync!r}; expected one of "
                f"{_FSYNC_POLICIES}"
            )
        if (
            not isinstance(self.checkpoint_every, int)
            or isinstance(self.checkpoint_every, bool)
            or self.checkpoint_every < 0
        ):
            raise SpecError(
                f"checkpoint_every must be an integer >= 0, got "
                f"{self.checkpoint_every!r}"
            )

    def to_dict(self) -> dict[str, object]:
        document: dict[str, object] = {
            "fsync": self.fsync,
            "checkpoint_every": self.checkpoint_every,
        }
        if self.path is not None:
            document["path"] = self.path
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "DurabilitySpec":
        known = {"path", "fsync", "checkpoint_every"}
        unknown = set(document) - known
        if unknown:
            raise SpecError(f"unknown durability keys: {sorted(unknown)}")
        path = document.get("path")
        return cls(
            path=None if path is None else str(path),
            fsync=str(document.get("fsync", "always")),
            checkpoint_every=document.get("checkpoint_every", 0),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class SystemSpec:
    """A complete declarative description of one CDSS."""

    name: str = "cdss"
    peers: tuple[PeerSpec, ...] = ()
    mappings: tuple[MappingSpec, ...] = ()
    edits: tuple[EditSpec, ...] = ()
    strategy: str = STRATEGY_UNIFIED
    encoding_style: str = ENCODING_COMPOSITE
    perspective: str | None = None
    index_policy: str = POLICY_DEFERRED
    workers: int = 1
    durability: DurabilitySpec | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "peers", tuple(self.peers))
        object.__setattr__(self, "mappings", tuple(self.mappings))
        object.__setattr__(self, "edits", tuple(self.edits))
        if self.strategy not in STRATEGIES:
            raise SpecError(
                f"unknown strategy {self.strategy!r}; expected one of "
                f"{STRATEGIES}"
            )
        if self.encoding_style not in ENCODING_STYLES:
            raise SpecError(
                f"unknown encoding style {self.encoding_style!r}; expected "
                f"one of {ENCODING_STYLES}"
            )
        if self.index_policy not in INDEX_POLICIES:
            raise SpecError(
                f"unknown index policy {self.index_policy!r}; expected one "
                f"of {INDEX_POLICIES}"
            )
        if (
            not isinstance(self.workers, int)
            or isinstance(self.workers, bool)
            or self.workers < 1
        ):
            raise SpecError(
                f"workers must be an integer >= 1, got {self.workers!r}"
            )

    # -- construction ------------------------------------------------------

    def without_edits(self) -> "SystemSpec":
        """The configuration alone (schemas + mappings, no data)."""
        return replace(self, edits=())

    def build(self) -> "CDSS":
        """A CDSS configured per this spec, edits staged but unexchanged."""
        from ..core.cdss import CDSS

        return CDSS.from_spec(self)

    # -- JSON round-trip ---------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        document: dict[str, object] = {
            "format": SPEC_FORMAT,
            "name": self.name,
            "strategy": self.strategy,
            "encoding_style": self.encoding_style,
            "index_policy": self.index_policy,
            "workers": self.workers,
            "peers": [p.to_dict() for p in self.peers],
            "mappings": [m.to_dict() for m in self.mappings],
            "edits": [e.to_dict() for e in self.edits],
        }
        if self.perspective is not None:
            document["perspective"] = self.perspective
        if self.durability is not None:
            document["durability"] = self.durability.to_dict()
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "SystemSpec":
        declared = document.get("format", SPEC_FORMAT)
        if declared != SPEC_FORMAT:
            raise SpecError(
                f"unsupported spec format {declared!r}; this build reads "
                f"{SPEC_FORMAT!r}"
            )
        known = {
            "format", "name", "strategy", "encoding_style", "perspective",
            "index_policy", "workers", "peers", "mappings", "edits",
            "durability",
        }
        unknown = set(document) - known
        if unknown:
            raise SpecError(f"unknown spec keys: {sorted(unknown)}")
        perspective = document.get("perspective")
        durability = document.get("durability")
        if durability is not None and not isinstance(durability, Mapping):
            raise SpecError("durability must be a JSON object")
        return cls(
            name=str(document.get("name", "cdss")),
            peers=tuple(
                PeerSpec.from_dict(p) for p in document.get("peers", ())  # type: ignore[union-attr]
            ),
            mappings=tuple(
                MappingSpec.from_dict(m)
                for m in document.get("mappings", ())  # type: ignore[union-attr]
            ),
            edits=tuple(
                EditSpec.from_dict(e) for e in document.get("edits", ())  # type: ignore[union-attr]
            ),
            strategy=str(document.get("strategy", STRATEGY_UNIFIED)),
            encoding_style=str(
                document.get("encoding_style", ENCODING_COMPOSITE)
            ),
            perspective=None if perspective is None else str(perspective),
            index_policy=str(document.get("index_policy", POLICY_DEFERRED)),
            workers=document.get("workers", 1),  # type: ignore[arg-type]
            durability=(
                None
                if durability is None
                else DurabilitySpec.from_dict(durability)
            ),
        )

    def to_json(self, indent: int | None = 2) -> str:
        try:
            return json.dumps(self.to_dict(), indent=indent)
        except TypeError as error:
            raise SpecError(
                f"spec contains non-JSON-serializable values: {error}"
            ) from None

    @classmethod
    def from_json(cls, text: str) -> "SystemSpec":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"invalid spec JSON: {error}") from None
        if not isinstance(document, dict):
            raise SpecError("spec JSON must be an object")
        spec = cls.from_dict(document)
        # JSON has no tuples: normalize rows back through EditSpec already
        # done in from_dict; nothing else to fix up.
        return spec

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SystemSpec":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def __repr__(self) -> str:
        return (
            f"<SystemSpec {self.name}: {len(self.peers)} peers, "
            f"{len(self.mappings)} mappings, {len(self.edits)} edits>"
        )
