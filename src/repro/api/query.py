"""First-class queries: composable, prepared, parameterized, plan-cached.

The paper's peers answer conjunctive queries over their local instances
with certain-answer semantics (Section 2.1) and provenance annotations
(Section 3.2).  This module is the serving-oriented query surface of the
v2 API — the counterpart of the transactional update path:

* :class:`Query` — an immutable query description, built either from
  datalog text (``Query.parse("ans(x, y) :- U(x, z), U(y, z)")``) or with
  a fluent builder over relations / :class:`~repro.api.views.RelationView`
  (``select`` / ``join`` / ``project`` with structured predicates like
  ``col("city") == param("c")``);
* :meth:`CDSS.prepare <repro.core.cdss.CDSS.prepare>` →
  :class:`PreparedQuery` — rewrites the query to the internal ``R__o``
  relations, plans it through the engine-level plan cache, and compiles it
  through :func:`~repro.datalog.plan.compile_plan` exactly **once**;
  parameters occupy reserved environment slots in the compiled plan, so
  re-executing with new bindings changes only the initial environment —
  zero replanning, zero recompilation;
* :meth:`PreparedQuery.execute` → :class:`AnswerSet` — a lazy answer
  stream with the three answer modes of Section 2.1: ``certain`` (default;
  labeled-null rows dropped), ``with_nulls`` (the superset), and
  ``annotated`` (each row paired with its provenance-semiring expression,
  computed via :mod:`repro.provenance.annotated`).

Structured predicates are also what :meth:`RelationView.where
<repro.api.views.RelationView.where>` pushes down to indexed probes; the
compilation helper for that single-relation case
(:func:`compile_row_condition`) lives here too.
"""

from __future__ import annotations

import operator
import threading
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping, Sequence

from ..core.query import QueryError, _rewrite_to_internal
from ..datalog.ast import (
    Atom,
    Constant,
    Rule,
    Variable,
    tuple_has_labeled_null,
)
from ..datalog.parser import parse_rule
from ..datalog.plan import CompiledPlan, RulePlan, compile_plan, execute_plan
from ..schema.internal import InternalSchema
from ..schema.relation import RelationSchema
from ..storage.database import Database
from ..storage.instance import Instance, Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.cdss import CDSS
    from ..datalog.engine import SemiNaiveEngine
    from ..storage.snapshot import DatabaseSnapshot

_OPS: dict[str, Callable[[object, object], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

ANSWER_PREDICATE = "ans"


# ---------------------------------------------------------------------------
# The structured-predicate DSL: col / param / comparisons / conjunction
# ---------------------------------------------------------------------------


class Parameter:
    """A named query parameter, bound at :meth:`PreparedQuery.execute`."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise QueryError(f"parameter name must be a non-empty string, got {name!r}")
        self.name = name

    def __repr__(self) -> str:
        return f"param({self.name!r})"


class ColumnRef:
    """A reference to a column, by attribute name or ``Relation.attribute``.

    Comparison operators build :class:`Comparison` conditions instead of
    booleans — this is a tiny expression DSL, not a value.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"col({self.name!r})"

    def __hash__(self) -> int:  # identity: comparisons are not equality
        return object.__hash__(self)

    def __eq__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison("==", self, other)

    def __ne__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison("!=", self, other)

    def __lt__(self, other: object) -> "Comparison":
        return Comparison("<", self, other)

    def __le__(self, other: object) -> "Comparison":
        return Comparison("<=", self, other)

    def __gt__(self, other: object) -> "Comparison":
        return Comparison(">", self, other)

    def __ge__(self, other: object) -> "Comparison":
        return Comparison(">=", self, other)


def col(name: str) -> ColumnRef:
    """A column reference for structured predicates: ``col("city")``."""
    return ColumnRef(name)


def param(name: str) -> Parameter:
    """A named parameter placeholder: ``col("city") == param("c")``."""
    return Parameter(name)


class Condition:
    """Base class of structured predicates; ``&`` conjoins conditions."""

    __slots__ = ()

    def __and__(self, other: "Condition") -> "Condition":
        if not isinstance(other, Condition):
            return NotImplemented
        return And(self.conjuncts() + other.conjuncts())

    def __bool__(self) -> bool:
        # Catch `cond1 and cond2` (which short-circuits through bool and
        # silently drops conditions) for comparisons AND conjunctions.
        raise QueryError(
            f"{self!r} is a structured predicate, not a boolean; combine "
            "with & and pass it to .where()/.select() instead of using "
            "'and'/'or' or evaluating it"
        )

    def conjuncts(self) -> tuple["Comparison", ...]:
        raise NotImplementedError


class Comparison(Condition):
    """One comparison between a column and a value / parameter / column."""

    __slots__ = ("op", "column", "value")

    def __init__(self, op: str, column: ColumnRef, value: object) -> None:
        self.op = op
        self.column = column
        self.value = value

    def conjuncts(self) -> tuple["Comparison", ...]:
        return (self,)

    def __repr__(self) -> str:
        return f"({self.column!r} {self.op} {self.value!r})"


class And(Condition):
    """A conjunction of comparisons."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[Comparison]) -> None:
        self.parts = tuple(parts)

    def conjuncts(self) -> tuple[Comparison, ...]:
        return self.parts

    def __repr__(self) -> str:
        return " & ".join(repr(p) for p in self.parts)


# ---------------------------------------------------------------------------
# Single-relation condition compilation (the RelationView.where pushdown)
# ---------------------------------------------------------------------------


def compile_row_condition(
    condition: Condition, schema: RelationSchema
) -> tuple[tuple[int, ...], tuple[object, ...], Callable[[Row], bool] | None]:
    """Compile a condition against one relation's rows.

    Returns ``(probe_columns, probe_values, residual)``: equality
    comparisons against literals become an indexed probe template
    (column positions + values for :meth:`Instance.lookup`); everything
    else becomes a residual row predicate.  Parameters are rejected —
    they only make sense under :meth:`CDSS.prepare`.
    """
    probes: dict[int, object] = {}
    residuals: list[Callable[[Row], bool]] = []
    for comparison in condition.conjuncts():
        position = schema.position_of(_bare_attribute(comparison.column, schema))
        value = comparison.value
        if isinstance(value, Parameter):
            raise QueryError(
                f"parameter {value.name!r} in a view predicate; parameters "
                "require a prepared query (cdss.prepare)"
            )
        if isinstance(value, ColumnRef):
            other = schema.position_of(_bare_attribute(value, schema))
            fn = _OPS[comparison.op]
            residuals.append(
                lambda row, fn=fn, i=position, j=other: fn(row[i], row[j])
            )
        elif comparison.op == "==":
            if position in probes and probes[position] != value:
                # Contradictory equalities: nothing can match.
                return ((), (), lambda row: False)
            probes[position] = value
        else:
            fn = _OPS[comparison.op]
            residuals.append(
                lambda row, fn=fn, i=position, v=value: fn(row[i], v)
            )
    cols = tuple(sorted(probes))
    values = tuple(probes[c] for c in cols)
    if not residuals:
        return (cols, values, None)
    if len(residuals) == 1:
        return (cols, values, residuals[0])
    return (
        cols,
        values,
        lambda row, checks=tuple(residuals): all(c(row) for c in checks),
    )


def _bare_attribute(column: ColumnRef, schema: RelationSchema) -> str:
    name = column.name
    if "." in name:
        relation, _, attribute = name.partition(".")
        if relation != schema.name:
            raise QueryError(
                f"column {name!r} does not belong to relation {schema.name!r}"
            )
        return attribute
    return name


# ---------------------------------------------------------------------------
# Ordering and pagination (ORDER BY / LIMIT / OFFSET)
# ---------------------------------------------------------------------------


class _OrderKey:
    """A totally ordered wrapper for heterogeneous column values.

    Same-type values compare natively; across types (or when a native
    comparison is unsupported, e.g. labeled nulls) the fallback orders by
    ``(type name, repr)`` — arbitrary but *stable and total*, which is
    what pagination needs.
    """

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def __lt__(self, other: "_OrderKey") -> bool:
        a, b = self.value, other.value
        try:
            return bool(a < b)  # type: ignore[operator]
        except TypeError:
            return (type(a).__name__, repr(a)) < (type(b).__name__, repr(b))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderKey) and self.value == other.value


OrderSpec = tuple[tuple[int, bool], ...]
"""Resolved ordering: ``((column position, descending), ...)``."""


def _parse_order_column(column: object) -> tuple[object, bool]:
    """Normalize one ``order_by`` argument to ``(name_or_position, desc)``.

    Strings may carry a leading ``-`` for descending (``"-city"``);
    integers are 0-based output column positions; :func:`col` references
    are accepted too.
    """
    if isinstance(column, ColumnRef):
        return (column.name, False)
    if isinstance(column, int) and not isinstance(column, bool):
        return (column, False)
    if isinstance(column, str):
        if column.startswith("-"):
            return (column[1:], True)
        return (column, False)
    raise QueryError(
        f"order_by expects column names, positions, or col(...), "
        f"got {column!r}"
    )


def resolve_order_spec(
    columns: Sequence[tuple[object, bool]], names: Sequence[str]
) -> OrderSpec:
    """Resolve ``(name_or_position, desc)`` pairs against output columns.

    Bare names match an output column exactly, or — for qualified
    ``Alias.attr`` outputs — match the attribute part when unambiguous.
    """
    resolved: list[tuple[int, bool]] = []
    for key, desc in columns:
        if isinstance(key, int) and not isinstance(key, bool):
            if not 0 <= key < len(names):
                raise QueryError(
                    f"order_by position {key} out of range for "
                    f"{len(names)} output column(s)"
                )
            resolved.append((key, desc))
            continue
        matches = [i for i, name in enumerate(names) if name == key]
        if not matches:
            matches = [
                i
                for i, name in enumerate(names)
                if "." in name and name.partition(".")[2] == key
            ]
        if not matches:
            raise QueryError(
                f"order_by column {key!r} is not an output column of "
                f"{tuple(names)!r}"
            )
        if len(matches) > 1:
            raise QueryError(
                f"order_by column {key!r} is ambiguous; qualify it as "
                "'Alias.attr'"
            )
        resolved.append((matches[0], desc))
    return tuple(resolved)


def apply_row_order(
    rows: Sequence[Row],
    order: OrderSpec,
    limit: int | None,
    offset: int,
) -> tuple[Row, ...]:
    """Stable sort + slice, applied *below* the dedup step.

    Rows arrive deduplicated (set semantics) in first-derivation order;
    sorting is a stable multi-key sort (later keys applied first), then
    ``offset``/``limit`` slice the sorted sequence — so a limit counts
    distinct answers, exactly what pagination wants.
    """
    ordered: Sequence[Row] = rows
    for position, desc in reversed(order):
        ordered = sorted(
            ordered,
            key=lambda row, _p=position: _OrderKey(row[_p]),
            reverse=desc,
        )
    if offset:
        ordered = ordered[offset:]
    if limit is not None:
        ordered = ordered[:limit]
    return tuple(ordered)


def _check_page_arg(value: object, what: str, minimum: int = 0) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise QueryError(
            f"{what} must be an integer >= {minimum}, got {value!r}"
        )
    return value


# ---------------------------------------------------------------------------
# Query: an immutable description (datalog text or fluent builder)
# ---------------------------------------------------------------------------


class _Scan:
    """One builder scan: a relation occurrence under an alias."""

    __slots__ = ("relation", "alias", "schema")

    def __init__(
        self, relation: str, alias: str, schema: RelationSchema | None
    ) -> None:
        self.relation = relation
        self.alias = alias
        self.schema = schema


def _scan_of(source: object, alias: str | None) -> _Scan:
    """Normalize a relation name / RelationView / handle-ish into a scan."""
    schema = None
    if isinstance(source, str):
        name = source
    elif hasattr(source, "name") and hasattr(source, "schema"):
        name = source.name  # a RelationView (duck-typed: no import cycle)
        schema = source.schema
    else:
        raise QueryError(
            f"cannot scan {source!r}: expected a relation name or RelationView"
        )
    return _Scan(name, alias or name, schema)


class _Resolved:
    """A builder/text query lowered to a user-level rule + metadata."""

    __slots__ = (
        "rule",
        "params",
        "param_names",
        "residuals",
        "unsat",
        "columns",
        "order",
        "limit",
        "offset",
    )

    def __init__(
        self,
        rule: Rule,
        params: tuple[Variable, ...],
        param_names: tuple[str, ...],
        residuals: tuple[tuple[str, object, object], ...],
        unsat: bool = False,
        columns: tuple[str, ...] = (),
        order: OrderSpec = (),
        limit: int | None = None,
        offset: int = 0,
    ) -> None:
        self.rule = rule
        self.params = params
        self.param_names = param_names
        self.residuals = residuals
        self.unsat = unsat
        self.columns = columns
        self.order = order
        self.limit = limit
        self.offset = offset


class Query:
    """An immutable, composable query over user relations.

    Build one from datalog text::

        Query.parse("ans(x, y) :- U(x, z), U(y, z)")
        Query.parse("ans(n) :- U(n, c)", params=("c",))   # c bound at execute

    or fluently over relations / views (each method returns a new query)::

        (Query.scan(B)
              .join(U, on=(("nam", "can"),))   # B.nam == U.can
              .select(col("id") == param("i"))
              .project("id", "U.nam"))

    Queries hold no system reference; :meth:`CDSS.prepare
    <repro.core.cdss.CDSS.prepare>` binds them to a system, plans and
    compiles them once, and returns a :class:`PreparedQuery`.
    """

    __slots__ = (
        "_rule",
        "_text_params",
        "_scans",
        "_conditions",
        "_projection",
        "_order",
        "_limit",
        "_offset",
    )

    def __init__(self) -> None:
        self._rule: Rule | None = None
        self._text_params: tuple[str, ...] = ()
        self._scans: tuple[_Scan, ...] = ()
        # (comparison, visible): bare column names in the comparison's left
        # side resolve among the first ``visible`` scans (None = all) — this
        # keeps natural-join names like on="nam" unambiguous after the
        # joined relation introduces the same attribute again.
        self._conditions: tuple[tuple[Comparison, int | None], ...] = ()
        self._projection: tuple[str, ...] | None = None
        # Pagination: (name_or_position, desc) pairs resolved to output
        # column positions at prepare time; applies to text queries too.
        self._order: tuple[tuple[object, bool], ...] = ()
        self._limit: int | None = None
        self._offset: int = 0

    # -- construction ------------------------------------------------------

    @staticmethod
    def parse(text: str | Rule, params: Sequence[str] = ()) -> "Query":
        """A query from datalog text over user relation names.

        ``params`` names body variables to treat as execute-time
        parameters (prepared-statement constant slots).
        """
        rule = parse_rule(text) if isinstance(text, str) else text
        if not rule.body:
            raise QueryError("query must have a non-empty body")
        rule.check_safety()
        names = tuple(params)
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate parameter names: {names!r}")
        rule_vars = {v.name for v in rule.variables()}
        for name in names:
            if name not in rule_vars:
                raise QueryError(
                    f"parameter {name!r} does not occur in the query"
                )
        query = Query()
        query._rule = rule
        query._text_params = names
        return query

    @staticmethod
    def scan(source: object, alias: str | None = None) -> "Query":
        """A builder query scanning one relation (name or view)."""
        query = Query()
        query._scans = (_scan_of(source, alias),)
        return query

    def _copy(self) -> "Query":
        query = Query()
        query._rule = self._rule
        query._text_params = self._text_params
        query._scans = self._scans
        query._conditions = self._conditions
        query._projection = self._projection
        query._order = self._order
        query._limit = self._limit
        query._offset = self._offset
        return query

    def _require_builder(self, method: str) -> None:
        if self._rule is not None:
            raise QueryError(
                f"Query.{method} is a builder operation; this query was "
                "constructed from datalog text"
            )
        if not self._scans:
            raise QueryError("empty query: start with Query.scan(relation)")

    # -- builder operations ------------------------------------------------

    def select(self, *conditions: Condition) -> "Query":
        """Conjoin structured predicates (``col(...) == param(...)``)."""
        self._require_builder("select")
        # Bare column names resolve among the scans present *now*: a later
        # join introducing the same attribute must not retroactively make
        # an already-written select ambiguous.
        visible = len(self._scans)
        extra: list[tuple[Comparison, int | None]] = []
        for condition in conditions:
            if not isinstance(condition, Condition):
                raise QueryError(
                    f"select expects structured predicates, got "
                    f"{condition!r}; Python callables belong to "
                    "RelationView.where's deprecated slow path"
                )
            extra.extend((c, visible) for c in condition.conjuncts())
        query = self._copy()
        query._conditions = self._conditions + tuple(extra)
        return query

    def join(
        self,
        source: object,
        on: object,
        alias: str | None = None,
    ) -> "Query":
        """Join another relation.

        ``on`` is an attribute name (equal in both), an iterable of names
        or of ``(left, right)`` pairs, or a structured condition over
        qualified columns.
        """
        self._require_builder("join")
        scan = _scan_of(source, alias)
        if any(s.alias == scan.alias for s in self._scans):
            raise QueryError(
                f"alias {scan.alias!r} already used; pass alias= for self-joins"
            )
        visible = len(self._scans)  # bare left names resolve pre-join
        conditions: list[tuple[Comparison, int | None]] = []
        if isinstance(on, Condition):
            conditions.extend((c, None) for c in on.conjuncts())
        else:
            pairs: list[tuple[str, str]]
            if isinstance(on, str):
                pairs = [(on, on)]
            else:
                pairs = []
                for item in on:
                    if isinstance(item, str):
                        pairs.append((item, item))
                    else:
                        left, right = item
                        pairs.append((left, right))
            if not pairs:
                raise QueryError("join requires at least one column pair")
            for left, right in pairs:
                right_name = right if "." in right else f"{scan.alias}.{right}"
                conditions.append(
                    (
                        Comparison("==", ColumnRef(left), ColumnRef(right_name)),
                        visible,
                    )
                )
        query = self._copy()
        query._scans = self._scans + (scan,)
        query._conditions = self._conditions + tuple(conditions)
        return query

    def project(self, *columns: str | ColumnRef) -> "Query":
        """Choose and order the output columns (default: every column)."""
        self._require_builder("project")
        if not columns:
            raise QueryError("project requires at least one column")
        names = tuple(
            c.name if isinstance(c, ColumnRef) else c for c in columns
        )
        query = self._copy()
        query._projection = names
        return query

    # -- pagination (applies to text *and* builder queries) ----------------

    def order_by(self, *columns: object) -> "Query":
        """Order answers by output columns (stable sort, below dedup).

        Columns are output column names (head variables for text queries,
        projection entries for builder queries — a leading ``-`` sorts
        descending, as in ``order_by("city", "-id")``) or 0-based output
        positions.  Replaces any previous ordering.
        """
        if not columns:
            raise QueryError("order_by requires at least one column")
        query = self._copy()
        query._order = tuple(_parse_order_column(c) for c in columns)
        return query

    def limit(self, count: int | None) -> "Query":
        """Keep at most ``count`` answers (after dedup, sort, offset)."""
        query = self._copy()
        query._limit = (
            None if count is None else _check_page_arg(count, "limit")
        )
        return query

    def offset(self, count: int) -> "Query":
        """Skip the first ``count`` answers (after dedup and sort)."""
        query = self._copy()
        query._offset = _check_page_arg(count, "offset")
        return query

    # -- lowering ----------------------------------------------------------

    def _resolve(self, catalog: Mapping[str, RelationSchema]) -> _Resolved:
        """Lower to a user-level rule + params + residual comparisons."""
        if self._rule is not None:
            params = tuple(Variable(name) for name in self._text_params)
            columns = tuple(
                term.name if isinstance(term, Variable) else f"${position}"
                for position, term in enumerate(self._rule.head.terms)
            )
            return _Resolved(
                self._rule,
                params,
                self._text_params,
                (),
                columns=columns,
                order=resolve_order_spec(self._order, columns),
                limit=self._limit,
                offset=self._offset,
            )
        return self._resolve_builder(catalog)

    def _resolve_builder(
        self, catalog: Mapping[str, RelationSchema]
    ) -> _Resolved:
        scans = list(self._scans)
        schemas: list[RelationSchema] = []
        for scan in scans:
            schema = scan.schema or catalog.get(scan.relation)
            if schema is None:
                raise QueryError(
                    f"query references unknown relation {scan.relation!r}"
                )
            schemas.append(schema)

        def locate(name: str, visible: int | None = None) -> tuple[int, int]:
            """(scan index, position) for a column name.

            Qualified names (``Alias.attr``) resolve globally; bare names
            resolve among the first ``visible`` scans (all by default) and
            must be unambiguous there.
            """
            if "." in name:
                alias, _, attribute = name.partition(".")
                for index, scan in enumerate(scans):
                    if scan.alias == alias:
                        if attribute not in schemas[index].attributes:
                            raise QueryError(
                                f"relation {scan.relation!r} (alias "
                                f"{alias!r}) has no attribute {attribute!r}"
                            )
                        return (
                            index,
                            schemas[index].attributes.index(attribute),
                        )
                raise QueryError(f"unknown relation alias in column {name!r}")
            limit = len(scans) if visible is None else visible
            matches = [
                (index, schemas[index].attributes.index(name))
                for index in range(limit)
                if name in schemas[index].attributes
            ]
            if not matches:
                raise QueryError(f"unknown column {name!r}")
            if len(matches) > 1:
                raise QueryError(
                    f"column {name!r} is ambiguous; qualify it as 'Alias.attr'"
                )
            return matches[0]

        # One variable per column position, then unify through the
        # equality conditions (union-find over term assignments).
        variables = [
            [
                Variable(f"{scan.alias}.{attribute}")
                for attribute in schema.attributes
            ]
            for scan, schema in zip(scans, schemas)
        ]
        assign: dict[Variable, object] = {}

        def resolve_term(term: object) -> object:
            while isinstance(term, Variable) and term in assign:
                term = assign[term]
            return term

        param_vars: dict[str, Variable] = {}

        def term_for_value(value: object, visible: int | None) -> object:
            if isinstance(value, Parameter):
                var = param_vars.get(value.name)
                if var is None:
                    var = Variable(f"${value.name}")
                    param_vars[value.name] = var
                return var
            if isinstance(value, ColumnRef):
                index, position = locate(value.name, visible)
                return variables[index][position]
            return Constant(value)

        def is_param(term: object) -> bool:
            return isinstance(term, Variable) and term.name.startswith("$")

        residuals: list[tuple[str, object, object]] = []
        unsat = False
        for comparison, visible in self._conditions:
            index, position = locate(comparison.column.name, visible)
            left = resolve_term(variables[index][position])
            right = resolve_term(term_for_value(comparison.value, visible))
            if comparison.op != "==":
                residuals.append((comparison.op, left, right))
                continue
            if left == right:
                continue
            # Parameter variables stay roots: binding them to a constant or
            # each other must remain a runtime check, not a rewrite, or a
            # later execute() binding would be silently ignored.
            if isinstance(left, Variable) and not is_param(left):
                assign[left] = right
            elif isinstance(right, Variable) and not is_param(right):
                assign[right] = left
            elif isinstance(left, Constant) and isinstance(right, Constant):
                if left.value != right.value:
                    unsat = True
            else:
                # parameter vs. constant, or two parameters: runtime check.
                residuals.append(("==", left, right))

        body = tuple(
            Atom(
                scan.relation,
                tuple(
                    resolve_term(variables[index][position])
                    for position in range(schemas[index].arity)
                ),
            )
            for index, scan in enumerate(scans)
        )
        if self._projection is None:
            projection = tuple(
                f"{scan.alias}.{attribute}"
                for scan, schema in zip(scans, schemas)
                for attribute in schema.attributes
            )
        else:
            projection = self._projection
        head_terms = []
        for name in projection:
            index, position = locate(name)
            head_terms.append(resolve_term(variables[index][position]))
        rule = Rule(Atom(ANSWER_PREDICATE, tuple(head_terms)), body)
        # Residual terms must survive resolution too (a later equality may
        # have re-rooted them).
        final_residuals = tuple(
            (op, resolve_term(left), resolve_term(right))
            for op, left, right in residuals
        )
        names = tuple(param_vars)
        params = tuple(param_vars[name] for name in names)
        return _Resolved(
            rule,
            params,
            names,
            final_residuals,
            unsat,
            columns=projection,
            order=resolve_order_spec(self._order, projection),
            limit=self._limit,
            offset=self._offset,
        )

    def __repr__(self) -> str:
        if self._rule is not None:
            suffix = f" params={list(self._text_params)}" if self._text_params else ""
            return f"<Query {self._rule!r}{suffix}>"
        parts = ", ".join(
            s.relation if s.alias == s.relation else f"{s.relation} as {s.alias}"
            for s in self._scans
        )
        return (
            f"<Query scan[{parts}] "
            f"where {len(self._conditions)} condition(s)>"
        )


# ---------------------------------------------------------------------------
# Preparation and execution
# ---------------------------------------------------------------------------


def _residual_closure(
    specs: Sequence[tuple[str, object, object]],
    slot_of: Mapping[Variable, int],
) -> Callable[[tuple], bool] | None:
    """Compile residual comparisons into one environment predicate."""
    if not specs:
        return None

    def getter(spec: object) -> Callable[[tuple], object]:
        if isinstance(spec, Variable):
            slot = slot_of[spec]
            return lambda env, _s=slot: env[_s]
        if isinstance(spec, Constant):
            return lambda env, _v=spec.value: _v
        raise QueryError(f"cannot compile residual term {spec!r}")

    checks = tuple(
        (_OPS[op], getter(left), getter(right)) for op, left, right in specs
    )
    if len(checks) == 1:
        fn, lf, rf = checks[0]
        return lambda env: fn(lf(env), rf(env))
    return lambda env: all(fn(lf(env), rf(env)) for fn, lf, rf in checks)


class _Binding:
    """Everything a prepared query needs against one concrete system."""

    __slots__ = (
        "db",
        "engine",
        "internal",
        "internal_rule",
        "params",
        "residual_specs",
        "use_engine_cache",
        "_exec",
    )

    def __init__(
        self,
        resolved: _Resolved,
        db: Database,
        internal: InternalSchema,
        engine: "SemiNaiveEngine",
        use_engine_cache: bool = True,
    ) -> None:
        self.db = db
        self.engine = engine
        self.internal = internal
        self.internal_rule = _rewrite_to_internal(resolved.rule, internal)
        self.params = resolved.params
        self.residual_specs = resolved.residuals
        self.use_engine_cache = use_engine_cache
        self._set_plan(self._plan())
        self._check_safety(resolved)

    # The (plan, compiled, residual) triple is always swapped as ONE tuple
    # (``_exec``): the residual closure indexes the compiled plan's
    # environment slots, so a concurrent reader must never observe a new
    # plan paired with an old residual (or vice versa).
    @property
    def plan(self) -> RulePlan:
        return self._exec[0]

    @property
    def compiled(self) -> CompiledPlan:
        return self._exec[1]

    @property
    def residual(self) -> Callable[[tuple], bool] | None:
        return self._exec[2]

    def _plan(self) -> RulePlan:
        """Plan through the engine cache, or straight through the planner.

        One-shot queries (``CDSS.query``) bypass the engine-level cache:
        its id-keyed entries would never hit for freshly built rules and
        would crowd out the exchange program's warm plans.  The planner's
        own value-keyed cache still deduplicates repeated identical text.
        """
        if self.use_engine_cache:
            return self.engine.cached_plan(
                self.internal_rule, self.db, None, self.params
            )
        if self.params:
            return self.engine.planner.plan(
                self.internal_rule, self.db, None, self.params
            )
        return self.engine.planner.plan(self.internal_rule, self.db, None)

    def _set_plan(self, plan: RulePlan) -> None:
        """Compile ``plan`` and swap the execution triple atomically.

        The residual closure indexes the compiled plan's environment
        slots, so it must be rebuilt whenever the plan changes (e.g. a
        cost-based planner re-planning after a data change) — and the
        three pieces land in one attribute assignment.
        """
        compiled = compile_plan(plan)
        residual = _residual_closure(self.residual_specs, compiled.slot_of)
        self._exec: tuple[
            RulePlan, CompiledPlan, Callable[[tuple], bool] | None
        ] = (plan, compiled, residual)

    def _check_safety(self, resolved: _Resolved) -> None:
        # Builder rules bypass Rule.check_safety (parameters count as
        # bound); everything they mention must have landed in a slot.
        for op, left, right in resolved.residuals:
            for spec in (left, right):
                if isinstance(spec, Variable) and spec not in self.compiled.slot_of:
                    raise QueryError(
                        f"residual comparison references unbound {spec!r}"
                    )

    def refresh_plan(self) -> None:
        """Re-probe the plan cache (a hit unless invalidated/re-planned)."""
        plan = self._plan()
        if plan is not self._exec[0]:
            self._set_plan(plan)

    def resolver(
        self, db: Database | None = None
    ) -> Callable[[int, Atom], object]:
        """An atom resolver over ``db`` (default: the bound live database).

        Passing a pinned snapshot's database executes the compiled plan
        against the snapshot instead — relations absent from the snapshot
        (e.g. provenance tables a query never reads) resolve empty.
        """
        if db is None:
            db = self.db

        def resolve(_index: int, atom: Atom) -> object:
            instance = db.get(atom.predicate)
            if instance is not None:
                return instance
            return Instance(atom.predicate, atom.arity)

        return resolve


_RESULT_CACHE_LIMIT = 1024
"""Result-cache entries per prepared query before wholesale clearing."""


def _binding_derivations(
    binding: "_Binding",
    values: tuple[object, ...],
    db: Database | None = None,
) -> Iterator[tuple[Row, Mapping[Variable, object]]]:
    """(row, substitution) pairs from one binding's compiled pipeline,
    with its residual comparisons applied as the head filter — the single
    execution path shared by the result cache, the annotated-answers
    stream, and snapshot-pinned executions (``db`` overrides the source).

    The execution triple is read **once**: a concurrent
    :meth:`_Binding.refresh_plan` can swap ``_exec`` mid-call, but this
    iterator keeps using the consistent (plan, compiled, residual) it
    started with.
    """
    plan, _compiled, residual = binding._exec
    head_filter = (
        None
        if residual is None
        else (lambda _row, subst: residual(subst._env))
    )
    return execute_plan(
        plan,
        binding.resolver(db),
        head_filter=head_filter,
        params=values,
    )


class PreparedQuery:
    """A query planned and compiled once, executable with new bindings.

    Created by :meth:`CDSS.prepare <repro.core.cdss.CDSS.prepare>`.  The
    compiled plan is registered in the engine-level plan cache; every
    :meth:`execute` probes that cache (a hit — zero replanning) and swaps
    only the parameter values in the initial environment.  If the CDSS is
    reconfigured, the prepared query transparently re-binds against the
    rebuilt system on the next execute.

    Materialized answers are additionally cached per ``(bindings, answer
    mode)`` with :attr:`Database.version <repro.storage.database.Database.
    version>` as the invalidation token (the O(1) dirty-bit counter): while
    no relation changes, re-executing with identical bindings serves the
    previous rows without touching the pipeline at all.  Any mutation moves
    the version and the entry silently misses — invalidation is free.

    Prepared queries are safe to execute from multiple threads: the
    (system, binding) pair lives in one ``_bound`` tuple swapped under a
    lock (a single check-and-swap), so a concurrent re-bind after CDSS
    reconfiguration can never pair an old binding with a new system.
    """

    __slots__ = (
        "_query",
        "_resolved",
        "_cdss",
        "_bound",
        "_rebind_lock",
        "_result_cache",
        "result_cache_hits",
        "result_cache_misses",
    )

    def __init__(
        self,
        query: Query,
        resolved: _Resolved,
        binding: _Binding,
        cdss: "CDSS | None" = None,
        system: object | None = None,
    ) -> None:
        self._query = query
        self._resolved = resolved
        self._cdss = cdss
        # The (system, binding) pair is one atomically-swapped tuple; the
        # lock makes the reconfiguration re-bind a single check-and-swap.
        self._bound: tuple[object | None, _Binding] = (system, binding)
        self._rebind_lock = threading.Lock()
        # (values, mode) -> (database, version, rows); the database is
        # compared by identity so a re-bind after CDSS reconfiguration can
        # never collide with a stale entry from the previous system.
        self._result_cache: dict[
            tuple[tuple[object, ...], str],
            tuple[Database, int, tuple[Row, ...]],
        ] = {}
        #: Result-cache statistics (hits are O(1) serves).
        self.result_cache_hits = 0
        self.result_cache_misses = 0

    # -- introspection -----------------------------------------------------

    @property
    def param_names(self) -> tuple[str, ...]:
        """Names the execute() keyword bindings must supply, in order."""
        return self._resolved.param_names

    @property
    def columns(self) -> tuple[str, ...]:
        """Output column names (head variables / projection entries)."""
        return self._resolved.columns

    @property
    def plan(self) -> RulePlan:
        return self._bound[1].plan

    def explain(self) -> str:
        """Render the bind-join pipeline this query runs (EXPLAIN)."""
        from ..datalog.explain import explain_plan

        _system, binding = self._bound
        return explain_plan(binding.plan, binding.db)

    # -- execution ---------------------------------------------------------

    def _current_binding(self) -> _Binding:
        system, binding = self._bound
        if self._cdss is not None:
            current = self._cdss.system()
            if current is not system:
                # The CDSS was reconfigured and rebuilt: re-prepare against
                # the new system (a one-time plan-cache miss, like prepare).
                # Double-checked: racing executes re-bind exactly once.
                with self._rebind_lock:
                    system, binding = self._bound
                    if current is not system:
                        binding = _Binding(
                            self._resolved,
                            current.db,
                            current.internal,
                            current.engine,
                            binding.use_engine_cache,
                        )
                        # A *fresh* dict, not clear(): old entries pinned
                        # the superseded database (by identity) and can
                        # never hit again; readers mid-flight may still
                        # write to the old dict harmlessly.
                        self._result_cache = {}
                        self._bound = (current, binding)
        binding.refresh_plan()
        return binding

    def _materialize(
        self,
        binding: _Binding,
        values: tuple[object, ...],
        mode: str,
        db: Database | None = None,
    ) -> tuple[Row, ...]:
        """Run the compiled pipeline to deduplicated, mode-filtered rows.

        Rows keep their first-derivation order; ``db`` overrides the atom
        source (a pinned snapshot's database).
        """
        drop_nulls = mode == AnswerSet.MODE_CERTAIN
        seen: set[Row] = set()
        answers: list[Row] = []
        for row, _subst in _binding_derivations(binding, values, db):
            if row in seen:
                continue
            seen.add(row)
            if drop_nulls and tuple_has_labeled_null(row):
                continue
            answers.append(row)
        return tuple(answers)

    def _cached_answers(
        self, values: tuple[object, ...], mode: str
    ) -> tuple[Row, ...]:
        """The materialized answer rows for one (bindings, mode) pair.

        Served from the result cache while ``Database.version`` is
        unchanged; recomputed (and re-cached) otherwise.
        """
        binding = self._current_binding()
        db = binding.db
        version = db.version
        # Read the cache reference once: a concurrent re-bind swaps in a
        # fresh dict, and writing a stale entry into the *old* dict must
        # stay harmless.
        cache = self._result_cache
        key: tuple[tuple[object, ...], str] | None = (values, mode)
        try:
            entry = cache.get(key)  # type: ignore[arg-type]
        except TypeError:
            # Unhashable binding values: execute uncached.
            key = None
            entry = None
        if (
            entry is not None
            and entry[0] is db
            and entry[1] == version
        ):
            self.result_cache_hits += 1
            return entry[2]
        self.result_cache_misses += 1
        rows = self._materialize(binding, values, mode)
        if key is not None:
            if len(cache) >= _RESULT_CACHE_LIMIT:
                cache.clear()
            cache[key] = (db, version, rows)
        return rows

    def _pinned_answers(
        self, snapshot: "DatabaseSnapshot", values: tuple[object, ...], mode: str
    ) -> tuple[Row, ...]:
        """Answers computed against (and cached on) a pinned snapshot.

        The snapshot's contents never change, so its result cache needs no
        version token; the compute runs under the snapshot's lock, which
        also serializes lazy index builds across reader threads.
        """
        binding = self._current_binding()
        return snapshot.cached(  # type: ignore[return-value]
            (self, values, mode),
            lambda: self._materialize(binding, values, mode, db=snapshot.db),
        )

    def _bind_values(self, bindings: Mapping[str, object]) -> tuple[object, ...]:
        names = self._resolved.param_names
        missing = [n for n in names if n not in bindings]
        extra = [n for n in bindings if n not in names]
        if missing or extra:
            raise QueryError(
                f"parameter mismatch: missing {missing!r}, unexpected {extra!r}"
                if missing
                else f"unexpected parameters {extra!r}"
            )
        return tuple(bindings[n] for n in names)

    def execute(self, **bindings: object) -> "AnswerSet":
        """Bind parameters and return an :class:`AnswerSet`.

        Every parameter named at preparation must be bound by keyword;
        unknown keywords are rejected.  No planning or compilation happens
        here; the first *consumption* of the answer set runs the compiled
        plan against the then-current system state and materializes the
        rows into the result cache — repeated consumptions with the same
        bindings and mode are O(1) serves until any relation changes.
        """
        values = self._bind_values(bindings)
        return AnswerSet(self, values, empty=self._resolved.unsat)

    def execute_at(
        self, snapshot: "DatabaseSnapshot", **bindings: object
    ) -> "AnswerSet":
        """Execute against a pinned snapshot instead of the live system.

        The answer set resolves every relation from the snapshot's private
        copies: a concurrently running exchange can mutate the live
        database freely without this execution observing it — the serving
        tier's snapshot-isolated read path.  Annotated answers are not
        available (provenance tables live only in the live system).
        """
        values = self._bind_values(bindings)
        return AnswerSet(
            self, values, empty=self._resolved.unsat, pinned=snapshot
        )

    def __repr__(self) -> str:
        return f"<PreparedQuery {self._bound[1].internal_rule!r}>"


class AnswerSet:
    """A stream of query answers with selectable answer mode.

    An answer set observes the current state each time it is consumed —
    like :class:`~repro.api.views.RelationView`.  Consumption goes through
    the prepared query's version-keyed result cache: the first iteration
    after a data change runs the compiled plan and materializes the rows,
    repeated consumptions with the same bindings and mode are O(1) serves
    of the cached tuple (``Database.version`` is the invalidation token,
    so "current state" semantics are preserved exactly).  Rows are
    deduplicated (set semantics).  Modes:

    * :meth:`certain` (default) — labeled-null rows dropped (§2.1);
    * :meth:`with_nulls` — the superset including labeled nulls;
    * :meth:`annotated` — materialized ``{row: provenance}`` computed
      through :mod:`repro.provenance.annotated`.

    An answer set created by :meth:`PreparedQuery.execute_at` is *pinned*
    to a :class:`~repro.storage.snapshot.DatabaseSnapshot` instead: it
    always serves the pinned fixpoint, regardless of live mutations.
    :meth:`order_by` / :meth:`limit` / :meth:`offset` refine (or override)
    the ordering declared on the :class:`Query`.
    """

    MODE_CERTAIN = "certain"
    MODE_WITH_NULLS = "with_nulls"

    __slots__ = (
        "_prepared",
        "_values",
        "_mode",
        "_empty",
        "_pinned",
        "_order",
        "_limit",
        "_offset",
    )

    def __init__(
        self,
        prepared: PreparedQuery,
        values: tuple[object, ...],
        mode: str = MODE_CERTAIN,
        empty: bool = False,
        pinned: "DatabaseSnapshot | None" = None,
    ) -> None:
        self._prepared = prepared
        self._values = values
        self._mode = mode
        self._empty = empty
        self._pinned = pinned
        # Ordering/pagination start from what the Query declared.
        resolved = prepared._resolved
        self._order: OrderSpec = resolved.order
        self._limit: int | None = resolved.limit
        self._offset: int = resolved.offset

    def _clone(self, **overrides: object) -> "AnswerSet":
        clone = AnswerSet.__new__(AnswerSet)
        for slot in AnswerSet.__slots__:
            setattr(clone, slot, overrides.get(slot, getattr(self, slot)))
        return clone

    # -- modes -------------------------------------------------------------

    def certain(self) -> "AnswerSet":
        """Answers with labeled-null rows dropped (the default)."""
        return self._clone(_mode=self.MODE_CERTAIN)

    def with_nulls(self) -> "AnswerSet":
        """The answer superset including labeled-null rows."""
        return self._clone(_mode=self.MODE_WITH_NULLS)

    # -- ordering and pagination -------------------------------------------

    def order_by(self, *columns: object) -> "AnswerSet":
        """Order answers by output columns (stable sort, below dedup).

        Accepts the same column forms as :meth:`Query.order_by` (names,
        ``-name`` for descending, 0-based positions, :func:`col` refs);
        replaces any ordering declared on the query.
        """
        if not columns:
            raise QueryError("order_by requires at least one column")
        parsed = tuple(_parse_order_column(c) for c in columns)
        spec = resolve_order_spec(parsed, self._prepared.columns)
        return self._clone(_order=spec)

    def limit(self, count: int | None) -> "AnswerSet":
        """Keep at most ``count`` answers (after dedup, sort, offset)."""
        return self._clone(
            _limit=None if count is None else _check_page_arg(count, "limit")
        )

    def offset(self, count: int) -> "AnswerSet":
        """Skip the first ``count`` answers (after dedup and sort)."""
        return self._clone(_offset=_check_page_arg(count, "offset"))

    # -- streaming ---------------------------------------------------------

    def _derivations(self):
        """(row, substitution) pairs from the compiled pipeline.

        The binding is fetched through the prepared query so every
        consumption sees the current system — including after a CDSS
        reconfiguration rebuilds it (the prepared query re-binds; this is
        a plan-cache hit otherwise).
        """
        binding = self._prepared._current_binding()
        return binding, _binding_derivations(binding, self._values)

    def __iter__(self) -> Iterator[Row]:
        if self._empty:
            return iter(())
        if self._pinned is not None:
            rows = self._prepared._pinned_answers(
                self._pinned, self._values, self._mode
            )
        else:
            rows = self._prepared._cached_answers(self._values, self._mode)
        if self._order or self._limit is not None or self._offset:
            rows = apply_row_order(
                rows, self._order, self._limit, self._offset
            )
        return iter(rows)

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __contains__(self, row: Iterable[object]) -> bool:
        row = tuple(row)
        return any(answer == row for answer in self)

    def __bool__(self) -> bool:
        return any(True for _ in self)

    def to_rows(self) -> frozenset[Row]:
        """Materialize the current answers as a plain frozenset."""
        return frozenset(self)

    # -- provenance-annotated answers --------------------------------------

    def annotated(
        self, semiring=None, max_depth: int = 8
    ) -> dict[Row, object]:
        """Each answer row paired with its provenance annotation.

        The annotation of an answer is the sum over its derivations of the
        product of the body tuples' annotations — evaluated through
        :class:`~repro.provenance.annotated.AnnotatedDatabase`.  With the
        default (expression) semiring each row maps to a
        :class:`~repro.provenance.expression.ProvenanceExpression` built
        from the body tuples' stored provenance (cycles unfolded to
        ``max_depth``); pass any other semiring to get values in it.
        """
        cdss = self._prepared._cdss
        if cdss is None:
            raise QueryError(
                "annotated answers need a CDSS-bound prepared query "
                "(use cdss.prepare)"
            )
        if self._pinned is not None:
            raise QueryError(
                "annotated answers read the live provenance tables and "
                "cannot be served from a pinned snapshot; execute() "
                "against the live system instead"
            )
        if self._empty:
            return {}
        from ..datalog.ast import instantiate_atom
        from ..provenance.annotated import AnnotatedDatabase, ExpressionSemiring
        from ..schema.internal import OUTPUT_SUFFIX

        graph = cdss.provenance_graph()
        if semiring is None:
            semiring = ExpressionSemiring()
            cache: dict[tuple[str, Row], object] = {}

            def base_value(relation: str, row: Row) -> object:
                key = (relation, row)
                value = cache.get(key)
                if value is None:
                    value = graph.expression_for(
                        relation, row, max_depth=max_depth
                    )
                    cache[key] = value
                return value

        else:
            solved = graph.evaluate(semiring)

            def base_value(relation: str, row: Row) -> object:
                return solved.get((relation, row), semiring.zero)

        drop_nulls = self._mode == self.MODE_CERTAIN
        accumulator = AnnotatedDatabase(semiring)
        binding, derivations = self._derivations()
        rule = binding.internal_rule
        for row, subst in derivations:
            if drop_nulls and tuple_has_labeled_null(row):
                continue
            contribution = semiring.one
            for atom in rule.body:
                if atom.negated:
                    continue
                body_row = instantiate_atom(atom, subst)
                user_relation = atom.predicate[: -len(OUTPUT_SUFFIX)]
                contribution = semiring.times(
                    contribution, base_value(user_relation, body_row)
                )
            accumulator.annotate(ANSWER_PREDICATE, row, contribution)
        # AnnotatedDatabase preserves first-seen row order (dict-backed).
        result = accumulator.rows(ANSWER_PREDICATE)
        if self._order or self._limit is not None or self._offset:
            kept = apply_row_order(
                tuple(result), self._order, self._limit, self._offset
            )
            result = {row: result[row] for row in kept}
        return result

    def __repr__(self) -> str:
        return f"<AnswerSet [{self._mode}] of {self._prepared!r}>"


# ---------------------------------------------------------------------------
# Preparation entry points
# ---------------------------------------------------------------------------


def as_query(query: "str | Rule | Query", params: Sequence[str] = ()) -> Query:
    """Coerce datalog text / a Rule / a Query into a :class:`Query`."""
    if isinstance(query, Query):
        if params:
            raise QueryError(
                "params= applies to datalog text; builder queries declare "
                "parameters with param(name)"
            )
        return query
    return Query.parse(query, params)


def prepare(
    query: "str | Rule | Query",
    db: Database,
    internal: InternalSchema,
    engine: "SemiNaiveEngine | None" = None,
    params: Sequence[str] = (),
    cdss: "CDSS | None" = None,
    system: object | None = None,
    use_engine_cache: bool = True,
) -> PreparedQuery:
    """Plan + compile ``query`` once against ``db``; the low-level entry.

    :meth:`CDSS.prepare <repro.core.cdss.CDSS.prepare>` calls this with
    the exchange system's engine (sharing its plan cache); standalone
    callers may pass their own engine or none (a private engine is made).
    ``use_engine_cache=False`` plans through the planner only — for
    one-shot queries whose fresh rule objects would pollute the engine's
    id-keyed cache.
    """
    if engine is None:
        from ..datalog.engine import SemiNaiveEngine

        engine = SemiNaiveEngine()
    query_obj = as_query(query, params)
    resolved = query_obj._resolve(internal.catalog)
    binding = _Binding(resolved, db, internal, engine, use_engine_cache)
    return PreparedQuery(query_obj, resolved, binding, cdss=cdss, system=system)
