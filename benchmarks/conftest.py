"""Shared configuration for the figure-reproduction benchmarks.

Scales are laptop-sized (the paper ran on a 2007 Xeon server against DB2 /
Tukwila at 2000-10000 SWISS-PROT entries per peer).  Set the environment
variable ``REPRO_BENCH_SCALE`` to a float to scale the workloads up or down,
e.g. ``REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 1) -> int:
    return max(minimum, int(n * SCALE))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return SCALE
