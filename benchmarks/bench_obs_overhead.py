"""Observability overhead micro-benchmark: tracing must be ~free when off.

The telemetry subsystem (``repro.obs``) instruments every hot path of the
update exchange — rule evaluation, semi-naive rounds, index settling, WAL
appends — behind a module-level ``tracing.ENABLED`` flag, and the metrics
registry reads per-instance plain-int counters only at scrape time.  The
design claim is that a process which never enables tracing and never
scrapes ``/metrics`` pays (almost) nothing for any of it.

This bench puts a number on that claim with the perf trajectory's own
10-peer publish phase (the ``BENCH_update_exchange.json`` workload:
integer dataset, chain topology, 400 base entries per peer, eager
indexes, sequential evaluation):

* **disabled** — tracing off (the default); the measured seconds are
  compared against the committed pre-observability baseline in
  ``BENCH_update_exchange.json`` (recorded at PR 9, before any span
  gating existed on these paths).  The acceptance bar is ≤ 2% overhead.
* **enabled** — in-memory tracing on, for the price of full span export
  (not part of the bar; recorded so the cost of *opting in* is visible).

Run directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick

Writes ``BENCH_obs_overhead.json`` and exits non-zero when the disabled
overhead exceeds the bar (plus slack for machine drift — the committed
baseline was measured on a different day's load).
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.harness import efficiency_snapshot  # noqa: E402
from repro.obs import tracing  # noqa: E402
from repro.workload import CDSSWorkloadGenerator, WorkloadConfig  # noqa: E402

RESULT_FORMAT = "repro/bench-obs-overhead@1"
OVERHEAD_BAR = 0.02

PEERS = 10
BASE_PER_PEER = 400
SEED = 0


def publish_once() -> float:
    """One cold 10-peer publish: build, load, exchange; wall seconds."""
    generator = CDSSWorkloadGenerator(
        WorkloadConfig(peers=PEERS, dataset="integer", seed=SEED)
    )
    cdss = generator.build_cdss(index_policy="eager", workers=1)
    generator.record_insertions(cdss, generator.insertions(BASE_PER_PEER))
    gc.collect()
    gc.disable()
    start = time.perf_counter()
    try:
        cdss.update_exchange()
    finally:
        seconds = time.perf_counter() - start
        gc.enable()
    return seconds


def measure(samples: int, enable_tracing: bool) -> dict[str, object]:
    if enable_tracing:
        tracing.enable()  # in-memory only: the cheapest enabled mode
    else:
        tracing.disable()
    try:
        times = [publish_once() for _ in range(samples)]
    finally:
        tracing.disable()
        tracing.clear()
    return {
        "samples": samples,
        "publish_seconds": statistics.median(times),
        "publish_seconds_all": sorted(times),
    }


def committed_baseline() -> float | None:
    """The 10-peer eager publish seconds from the committed trajectory."""
    path = REPO_ROOT / "BENCH_update_exchange.json"
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    for cell in data.get("policies", {}).get("eager", {}).get("cells", ()):
        if cell.get("peers") == PEERS:
            return float(cell["publish"]["seconds"])
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="3 samples")
    parser.add_argument("--samples", type=int, default=None)
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_obs_overhead.json"
    )
    args = parser.parse_args(argv)
    samples = args.samples or (3 if args.quick else 7)

    print(
        f"obs-overhead benchmark: {PEERS}-peer publish, "
        f"{BASE_PER_PEER} base/peer, {samples} samples/mode"
    )
    disabled = measure(samples, enable_tracing=False)
    print(f"  tracing disabled: {disabled['publish_seconds']:.4f}s median")
    enabled = measure(samples, enable_tracing=True)
    print(f"  tracing enabled:  {enabled['publish_seconds']:.4f}s median")

    enabled_overhead = (
        enabled["publish_seconds"] / disabled["publish_seconds"] - 1.0
    )
    baseline = committed_baseline()
    result: dict[str, object] = {
        "format": RESULT_FORMAT,
        "workload": {
            "peers": PEERS,
            "base_per_peer": BASE_PER_PEER,
            "dataset": "integer",
            "topology": "chain",
            "index_policy": "eager",
            "workers": 1,
            "seed": SEED,
        },
        "overhead_bar": OVERHEAD_BAR,
        "disabled": disabled,
        "enabled": enabled,
        "enabled_overhead": enabled_overhead,
        "efficiency": efficiency_snapshot(),
    }
    print(f"  enabled-vs-disabled overhead: {enabled_overhead:+.1%}")

    ok = True
    if baseline is not None:
        overhead = disabled["publish_seconds"] / baseline - 1.0
        result["baseline_publish_seconds"] = baseline
        result["disabled_overhead_vs_committed_baseline"] = overhead
        result["passed"] = ok = overhead <= OVERHEAD_BAR
        print(
            f"  disabled-vs-committed-baseline ({baseline:.4f}s): "
            f"{overhead:+.1%} (bar: <= {OVERHEAD_BAR:.0%})"
        )
    else:
        print("  no committed BENCH_update_exchange.json baseline found")

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not ok:
        print("OBS OVERHEAD REGRESSION: disabled tracing exceeds the bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
