"""Update-exchange + query-serving benchmarks: the perf-trajectory baseline.

Drives multi-peer publish / update-exchange workloads from the synthetic
workload generator (Section 6.1) and writes ``BENCH_update_exchange.json``
so the repository has a measured perf trajectory:

* **publish** — base entries at every peer, one full exchange (Figure 5's
  "time to join" shape);
* **incremental insertion** — a small batch of fresh entries per peer
  propagated with the insertion delta rules (Figures 7/8's common case,
  and the workload the evaluation hot path is tuned for).

A second series exercises the serving-side query subsystem and writes
``BENCH_query.json``:

* **prepared** — one ``PreparedQuery`` with a parameter on the key
  column, re-executed with a new binding per repetition (zero replanning:
  the recorded plan-cache hit rate must be 1.0);
* **adhoc** — the same lookups as one-shot ``cdss.query`` text queries
  (parse + rewrite + plan every time);
* **where_pushdown** vs **where_callable** — the same selection through
  ``RelationView.where`` with a structured predicate (indexed probe)
  vs. the deprecated Python-callable slow path (full scan).

Per cell the JSON records wall seconds, semi-naive rounds, rule
applications, and the engine's plan-cache hit rate.  Run directly::

    PYTHONPATH=src python benchmarks/bench_update_exchange_scale.py
    PYTHONPATH=src python benchmarks/bench_update_exchange_scale.py --quick
    PYTHONPATH=src python benchmarks/bench_update_exchange_scale.py --only query

``--baseline FILE`` embeds a previously saved run (e.g. from the commit
before an optimization) under ``"baseline"`` and prints the speedups
(exchange series only).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.workload import CDSSWorkloadGenerator, WorkloadConfig  # noqa: E402

RESULT_FORMAT = "repro/bench-update-exchange@1"
QUERY_RESULT_FORMAT = "repro/bench-query@1"


def _engine_stats(cdss) -> dict[str, float] | None:
    """Cumulative evaluation stats, when the engine exposes them.

    Uses ``EvaluationResult.counters()`` where present; the getattr
    fallback lets the same script measure older trees (for baselines).
    """
    engine = cdss.system().engine
    stats = getattr(engine, "stats", None)
    if stats is None:
        return None
    if hasattr(stats, "counters"):
        return stats.counters()
    return {
        "rounds": stats.rounds,
        "rule_applications": stats.rule_applications,
        "plan_cache_hits": getattr(stats, "plan_cache_hits", 0),
        "plan_cache_misses": getattr(stats, "plan_cache_misses", 0),
    }


def _stats_delta(
    after: dict[str, float] | None, before: dict[str, float] | None
) -> dict[str, float]:
    # Mirrors EvaluationResult.counters_delta; kept local so the script
    # also runs against trees that predate that helper.
    if after is None:
        return {}
    before = before or {k: 0 for k in after}
    delta = {key: after[key] - before.get(key, 0) for key in after}
    probes = delta["plan_cache_hits"] + delta["plan_cache_misses"]
    delta["plan_cache_hit_rate"] = (
        delta["plan_cache_hits"] / probes if probes else 0.0
    )
    return delta


def run_cell(
    peers: int, base_per_peer: int, insert_per_peer: int, seed: int
) -> dict[str, object]:
    """One benchmark cell: publish a base load, then time an incremental
    insertion exchange on top of it."""
    generator = CDSSWorkloadGenerator(
        WorkloadConfig(peers=peers, dataset="integer", seed=seed)
    )
    cdss = generator.build_cdss()

    generator.record_insertions(cdss, generator.insertions(base_per_peer))
    before = _engine_stats(cdss)
    start = time.perf_counter()
    cdss.update_exchange()
    publish_seconds = time.perf_counter() - start
    publish_stats = _stats_delta(_engine_stats(cdss), before)

    generator.record_insertions(cdss, generator.insertions(insert_per_peer))
    before = _engine_stats(cdss)
    start = time.perf_counter()
    cdss.update_exchange()
    incremental_seconds = time.perf_counter() - start
    incremental_stats = _stats_delta(_engine_stats(cdss), before)

    return {
        "peers": peers,
        "base_per_peer": base_per_peer,
        "insert_per_peer": insert_per_peer,
        "total_tuples": cdss.system().total_tuples(),
        "publish": {"seconds": publish_seconds, **publish_stats},
        "incremental_insertion": {
            "seconds": incremental_seconds,
            **incremental_stats,
        },
    }


def _median_cell(samples: list[dict[str, object]]) -> dict[str, object]:
    """The sampled cell whose incremental wall time is the median one —
    keeping seconds and engine counters from the same run."""
    ordered = sorted(
        samples,
        key=lambda c: c["incremental_insertion"]["seconds"],
    )
    cell = ordered[len(ordered) // 2]
    cell["samples"] = len(samples)
    cell["incremental_insertion"]["seconds_all"] = sorted(
        c["incremental_insertion"]["seconds"] for c in samples
    )
    return cell


def run_benchmark(
    peer_counts: tuple[int, ...],
    base_per_peer: int,
    insert_per_peer: int,
    seed: int = 0,
    repeat: int = 1,
) -> dict[str, object]:
    cells = []
    for peers in peer_counts:
        samples = [
            run_cell(peers, base_per_peer, insert_per_peer, seed)
            for _ in range(max(1, repeat))
        ]
        cell = _median_cell(samples)
        cells.append(cell)
        print(
            f"  peers={peers:3d}  publish={cell['publish']['seconds']:.3f}s"
            f"  incremental={cell['incremental_insertion']['seconds']:.3f}s"
            f"  hit_rate="
            f"{cell['incremental_insertion'].get('plan_cache_hit_rate', 0.0):.2f}"
        )
    return {
        "format": RESULT_FORMAT,
        "workload": {
            "dataset": "integer",
            "topology": "chain",
            "base_per_peer": base_per_peer,
            "insert_per_peer": insert_per_peer,
            "seed": seed,
            "repeat": repeat,
        },
        "cells": cells,
    }


# ---------------------------------------------------------------------------
# Query-serving series (BENCH_query.json)
# ---------------------------------------------------------------------------


def run_query_cell(
    peers: int, base_per_peer: int, repeats: int, seed: int
) -> dict[str, object]:
    """One query-benchmark cell over a populated workload CDSS.

    Repeats the same key lookup with a fresh binding each time, through
    four routes: prepared+parameterized, ad-hoc text, pushdown ``where``,
    and the callable-``where`` slow path.
    """
    from repro.api.query import Query, col, param

    generator = CDSSWorkloadGenerator(
        WorkloadConfig(peers=peers, dataset="integer", seed=seed)
    )
    cdss = generator.build_cdss()
    generator.populate(cdss, base_per_peer)

    relation = generator.layouts[0].relation_name(0)
    view = cdss.relation(relation)
    schema = view.schema
    key_attr = schema.attributes[0]
    keys = sorted(row[0] for row in view.to_rows())
    chosen = [keys[i % len(keys)] for i in range(repeats)]

    # Prepared + parameterized: plan/compile once, re-bind per execute.
    prepared = cdss.prepare(
        Query.scan(view).select(col(key_attr) == param("k"))
    )
    matched = 0
    before = _engine_stats(cdss)
    start = time.perf_counter()
    for key in chosen:
        matched += len(prepared.execute(k=key).to_rows())
    prepared_seconds = time.perf_counter() - start
    prepared_stats = _stats_delta(_engine_stats(cdss), before)

    # Ad hoc: the same lookups as one-shot text queries (plan every time).
    head_vars = ", ".join(f"v{i}" for i in range(1, schema.arity))
    adhoc_matched = 0
    start = time.perf_counter()
    for key in chosen:
        text = f"ans({head_vars}) :- {relation}({key}, {head_vars})"
        adhoc_matched += len(cdss.query(text))
    adhoc_seconds = time.perf_counter() - start

    # Pushdown where: structured predicate -> indexed probe.
    pushdown_matched = 0
    start = time.perf_counter()
    for key in chosen:
        pushdown_matched += len(view.where(col(key_attr) == key).to_rows())
    pushdown_seconds = time.perf_counter() - start

    # Callable where: the deprecated full-scan slow path.
    callable_matched = 0
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        start = time.perf_counter()
        for key in chosen:
            callable_matched += len(
                view.where(lambda row, _k=key: row[0] == _k).to_rows()
            )
        callable_seconds = time.perf_counter() - start

    if not (matched == adhoc_matched == pushdown_matched == callable_matched):
        raise AssertionError(
            "query routes disagree: "
            f"{matched}/{adhoc_matched}/{pushdown_matched}/{callable_matched}"
        )
    return {
        "peers": peers,
        "base_per_peer": base_per_peer,
        "repeats": repeats,
        "relation": relation,
        "distinct_keys": len(keys),
        "rows_matched": matched,
        "prepared": {"seconds": prepared_seconds, **prepared_stats},
        "adhoc": {"seconds": adhoc_seconds},
        "where_pushdown": {"seconds": pushdown_seconds},
        "where_callable": {"seconds": callable_seconds},
        "speedups": {
            "prepared_vs_adhoc": (
                adhoc_seconds / prepared_seconds if prepared_seconds > 0 else 0.0
            ),
            "pushdown_vs_callable": (
                callable_seconds / pushdown_seconds
                if pushdown_seconds > 0
                else 0.0
            ),
        },
    }


def run_query_benchmark(
    peer_counts: tuple[int, ...],
    base_per_peer: int,
    repeats: int,
    seed: int = 0,
) -> dict[str, object]:
    cells = []
    for peers in peer_counts:
        cell = run_query_cell(peers, base_per_peer, repeats, seed)
        cells.append(cell)
        print(
            f"  peers={peers:3d}  prepared={cell['prepared']['seconds']:.3f}s"
            f"  adhoc={cell['adhoc']['seconds']:.3f}s"
            f"  pushdown={cell['where_pushdown']['seconds']:.3f}s"
            f"  callable={cell['where_callable']['seconds']:.3f}s"
            f"  hit_rate="
            f"{cell['prepared'].get('plan_cache_hit_rate', 0.0):.2f}"
        )
    return {
        "format": QUERY_RESULT_FORMAT,
        "workload": {
            "dataset": "integer",
            "topology": "chain",
            "base_per_peer": base_per_peer,
            "repeats": repeats,
            "seed": seed,
        },
        "cells": cells,
    }


def _speedups(
    baseline: dict[str, object], current: dict[str, object]
) -> dict[str, dict[str, float]]:
    """Per-peer-count baseline/current wall-time ratios, keyed by phase."""
    by_peers = {
        cell["peers"]: cell for cell in baseline.get("cells", ())
    }
    out: dict[str, dict[str, float]] = {}
    for cell in current["cells"]:
        base = by_peers.get(cell["peers"])
        if base is None:
            continue
        for phase in ("publish", "incremental_insertion"):
            current_seconds = cell[phase]["seconds"]
            if current_seconds <= 0:
                continue
            out.setdefault(phase, {})[str(cell["peers"])] = (
                base[phase]["seconds"] / current_seconds
            )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny sizes for CI smoke runs",
    )
    parser.add_argument("--peers", type=int, nargs="*", default=None)
    parser.add_argument("--base", type=int, default=None)
    parser.add_argument("--insert", type=int, default=None)
    parser.add_argument(
        "--repeat",
        type=int,
        default=None,
        help="samples per cell, median reported (default: 3, or 1 with --quick)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="embed a previously saved result file and report speedups",
    )
    parser.add_argument(
        "--only",
        choices=("all", "exchange", "query"),
        default="all",
        help="which series to run (default: both)",
    )
    parser.add_argument(
        "--query-repeats",
        type=int,
        default=None,
        help="parameter bindings per query cell (default: 200, or 20 with --quick)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=(
            "exchange-series result path (default: BENCH_update_exchange.json "
            "at the repo root; --quick writes BENCH_update_exchange_quick.json "
            "so smoke runs never clobber the committed perf trajectory; the "
            "query series always writes BENCH_query[_quick].json alongside)"
        ),
    )
    args = parser.parse_args(argv)
    suffix = "_quick" if args.quick else ""
    if args.out is None:
        args.out = REPO_ROOT / f"BENCH_update_exchange{suffix}.json"
    query_out = REPO_ROOT / f"BENCH_query{suffix}.json"

    if args.quick:
        peer_counts = tuple(args.peers or (2, 3))
        base = args.base if args.base is not None else 20
        insert = args.insert if args.insert is not None else 2
        repeat = args.repeat if args.repeat is not None else 1
        query_repeats = (
            args.query_repeats if args.query_repeats is not None else 20
        )
    else:
        peer_counts = tuple(args.peers or (2, 5, 10))
        base = args.base if args.base is not None else 400
        insert = args.insert if args.insert is not None else 20
        repeat = args.repeat if args.repeat is not None else 3
        query_repeats = (
            args.query_repeats if args.query_repeats is not None else 200
        )

    if args.only in ("all", "exchange"):
        print(
            f"update-exchange scale benchmark: peers={peer_counts} "
            f"base={base}/peer insert={insert}/peer repeat={repeat}"
        )
        result = run_benchmark(
            peer_counts, base, insert, seed=args.seed, repeat=repeat
        )

        if args.baseline is not None and args.baseline.exists():
            baseline = json.loads(args.baseline.read_text())
            result["baseline"] = baseline
            result["speedup_vs_baseline"] = _speedups(baseline, result)
            for phase, ratios in result["speedup_vs_baseline"].items():
                rendered = ", ".join(
                    f"{peers} peers: {ratio:.2f}x"
                    for peers, ratio in ratios.items()
                )
                print(f"  speedup[{phase}]: {rendered}")

        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.out}")

    if args.only in ("all", "query"):
        print(
            f"repeated-parameterized-query benchmark: peers={peer_counts} "
            f"base={base}/peer repeats={query_repeats}"
        )
        query_result = run_query_benchmark(
            peer_counts, base, query_repeats, seed=args.seed
        )
        query_out.write_text(json.dumps(query_result, indent=2) + "\n")
        print(f"wrote {query_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
